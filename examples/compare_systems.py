#!/usr/bin/env python3
"""Compare overload-control systems on a reproduced real-world case.

Runs one of the paper's 16 cases (default: c1, the MySQL backup-lock
convoy) under every controller -- uncontrolled, ATROPOS, Protego, pBox,
DARC, PARTIES, SEDA, Breakwater, DAGOR, Autothrottle -- and prints the
Figure 9-style comparison (see docs/CONTROLLERS.md for the catalog).

Usage::

    python examples/compare_systems.py [case_id]
"""

import sys

from repro.baselines import controller_factory
from repro.cases import all_case_ids, get_case

SYSTEMS = [
    "overload", "atropos", "protego", "pbox", "darc", "parties",
    "seda", "breakwater", "dagor", "autothrottle",
]


def main():
    case_id = sys.argv[1] if len(sys.argv) > 1 else "c1"
    if case_id not in all_case_ids():
        raise SystemExit(
            f"unknown case {case_id!r}; choose one of {all_case_ids()}"
        )
    case = get_case(case_id)
    print(f"Case {case.case_id} ({case.app_name}): {case.trigger}")
    print(f"Culprit operations: {sorted(case.culprit_ops)}\n")

    baseline = case.run_baseline()
    print(
        f"{'system':<10} {'tput(norm)':>10} {'p99(norm)':>10} "
        f"{'drop rate':>10} {'cancels':>8}"
    )
    for system in SYSTEMS:
        result = case.run(
            controller_factory=controller_factory(
                system,
                case.slo_latency,
                atropos_overrides=case.atropos_overrides,
            )
        )
        print(
            f"{system:<10} "
            f"{result.throughput / baseline.throughput:>10.2f} "
            f"{result.p99_latency / baseline.p99_latency:>10.1f} "
            f"{result.drop_rate:>10.4f} "
            f"{result.controller.cancels_issued:>8}"
        )
    print(
        "\n(normalized against the non-overloaded baseline: "
        f"{baseline.throughput:.0f} req/s, "
        f"p99 {baseline.p99_latency * 1000:.1f} ms)"
    )


if __name__ == "__main__":
    main()
