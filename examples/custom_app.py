#!/usr/bin/env python3
"""Integrating ATROPOS into your own application.

This example builds a small bespoke application -- a job server with one
worker pool and one shared index lock -- and walks through the full
integration surface from the paper's Figure 6:

* ``register_resource``      declare application resources,
* ``create_cancel``/``free_cancel``   delimit cancellable tasks,
* ``set_cancel_action``      register a custom cancellation initiator,
* ``get/free/slow_by``       trace resource usage at the natural points
  (here via the ``acquire_lock``/``acquire_slot`` helpers).

Usage::

    python examples/custom_app.py
"""

from repro.apps.base import Application, Operation
from repro.core import Atropos, AtroposConfig, ResourceType
from repro.core.progress import GetNextProgress
from repro.core.task import default_initiator
from repro.experiments import run_simulation
from repro.sim.resources import SyncLock, ThreadPool
from repro.workloads import MixEntry, OpenLoopSource, ScheduledOp, Workload


class JobServer(Application):
    """A minimal application with two ATROPOS-traced resources."""

    name = "jobserver"

    def __init__(self, env, controller, rng):
        super().__init__(env, controller, rng)
        # Internal resources (simulation primitives).
        self.pool = ThreadPool(env, "jobserver.pool", workers=8)
        self.index_lock = SyncLock(env, "jobserver.index")
        # Declare them to the overload controller.
        self.r_pool = self.register_resource("worker_pool", ResourceType.QUEUE)
        self.r_index = self.register_resource("index_lock", ResourceType.LOCK)
        self.register_handler("small_job", self.small_job)
        self.register_handler("reindex", self.reindex)

    def small_job(self, task):
        """A short job: worker slot + brief shared index access."""
        slot = yield from self.acquire_slot(task, self.pool, self.r_pool)
        try:
            grant = yield from self.acquire_lock(
                task, self.index_lock, self.r_index, exclusive=False
            )
            try:
                yield self.env.timeout(0.004)
            finally:
                self.release_lock(task, grant, self.r_index)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, slot, self.r_pool)

    def reindex(self, task, units=400):
        """A long maintenance job holding the index lock exclusively."""
        progress = GetNextProgress(total_rows=units)
        task.progress_model = progress  # GetNext progress (§3.4)
        slot = yield from self.acquire_slot(task, self.pool, self.r_pool)
        try:
            grant = yield from self.acquire_lock(
                task, self.index_lock, self.r_index, exclusive=True
            )
            try:
                for _ in range(units):
                    yield self.env.timeout(0.02)
                    progress.advance(1)
                    yield from self.checkpoint(task)  # cancellation point
            finally:
                self.release_lock(task, grant, self.r_index)
        finally:
            self.release_lock(task, slot, self.r_pool)


def build_controller(env):
    controller = Atropos(env, AtroposConfig(slo_latency=0.02))

    # A custom cancellation initiator, like MySQL's sql_kill: log the
    # decision, then delegate to the default (interrupt at the task's
    # next checkpoint, where try/finally releases the lock and slot).
    def my_initiator(task, signal):
        print(
            f"  [initiator] t={task.env.now:.2f}s cancelling "
            f"{task.op_name!r} (reason: {signal.reason}, "
            f"resource: {signal.resource})"
        )
        default_initiator(task, signal)

    controller.set_cancel_action(my_initiator)
    return controller


def workload(app, rng):
    return Workload(
        [
            OpenLoopSource(
                rate=250.0,
                mix=[
                    MixEntry(
                        factory=lambda: Operation("small_job", {}),
                        weight=1.0,
                    )
                ],
            ),
            ScheduledOp(
                at=2.0,
                factory=lambda: Operation("reindex", {"units": 400}),
                client_id="maintenance",
            ),
        ]
    )


def main():
    print("Job server: 250 small jobs/s; a reindex grabs the index lock "
          "at t=2s\n")
    result = run_simulation(
        lambda env, c, rng: JobServer(env, c, rng),
        workload,
        controller_factory=build_controller,
        duration=10.0,
        warmup=1.0,
    )
    s = result.summary
    print(
        f"\nthroughput={s.throughput:.1f} req/s  "
        f"p99={s.p99_latency * 1000:.1f} ms  drop_rate={s.drop_rate:.4f}"
    )
    print(f"cancellations issued: {result.controller.cancels_issued}")


if __name__ == "__main__":
    main()
