#!/usr/bin/env python3
"""Distributed cancellation: the paper's §4 extension sketch, running.

A scatter-gather request fans out to three simulated nodes. When the
coordinator decides to cancel the root request, the task tree propagates
the signal to every child; a partitioned node misses it, and a retry
after the partition heals completes the cancellation.

Usage::

    python examples/distributed_cancellation.py
"""

from repro.core import BaseController, CancelSignal
from repro.core.distributed import Node, TaskTree
from repro.sim import Environment, Interrupt


def main():
    env = Environment()
    controller = BaseController(env)
    nodes = [Node("node-1"), Node("node-2"), Node("node-3")]

    def shard_worker(env, name, tree, node):
        task = controller.create_cancel(op_name=f"shard@{name}")
        tree.add_child(task, node)
        try:
            yield env.timeout(100.0)  # long shard scan
            print(f"  [{env.now:5.3f}s] {name}: completed (not cancelled)")
        except Interrupt as exc:
            print(f"  [{env.now:5.3f}s] {name}: cancelled "
                  f"({exc.cause.reason})")
        finally:
            controller.free_cancel(task)
            tree.remove_child(task)

    def coordinator(env):
        root = controller.create_cancel(op_name="scatter-gather-root")
        tree = TaskTree(env, root, propagation_delay=0.005)
        for node in nodes:
            env.process(shard_worker(env, node.name, tree, node))
        yield env.timeout(0.05)  # let the fan-out start

        print(f"[{env.now:5.3f}s] node-3 partitions away")
        nodes[2].partition()

        print(f"[{env.now:5.3f}s] coordinator cancels the root request")
        try:
            deliveries = yield from tree.cancel_all(
                CancelSignal(reason="client-disconnected")
            )
        except Interrupt:
            deliveries = tree.deliveries  # root's own interrupt
        for d in deliveries:
            status = "ok" if d.delivered else f"FAILED ({d.reason})"
            print(f"  delivery to {d.task.op_name} on {d.node}: {status}")

        print(f"[{env.now:5.3f}s] fully cancelled? {tree.fully_cancelled()}")
        yield env.timeout(0.5)
        print(f"[{env.now:5.3f}s] partition heals; retrying undelivered")
        nodes[2].heal()
        yield from tree.retry_undelivered()
        controller.free_cancel(root)
        yield env.timeout(0.01)  # let the retried interrupt land
        print(f"[{env.now:5.3f}s] fully cancelled? {tree.fully_cancelled()}")

    # The coordinator must survive the root's interrupt: run it as a
    # separate supervisor process.
    def supervisor(env):
        root_proc = env.process(coordinator(env))
        try:
            yield root_proc
        except Interrupt:
            pass

    env.process(supervisor(env))
    env.run()


if __name__ == "__main__":
    main()
