#!/usr/bin/env python3
"""Why the multi-objective policy beats its ablations (paper §3.4-3.5).

Constructs the paper's own thought experiments directly against the
estimator and the policy engine:

1. *Future gain vs current usage* -- Query A (90% done, holds 60 pages)
   versus Query B (10% done, holds 30 pages).  Current usage picks A;
   future gain correctly picks B.
2. *Multi-objective vs greedy* -- Task X (gain 3 on resource A only)
   versus Task Y (gain 2.9 on A and 5 on B).  The greedy heuristic looks
   only at the hottest resource and picks X; scalarization picks Y.

Usage::

    python examples/policy_ablation.py
"""

from repro.core import (
    AtroposConfig,
    BaseController,
    CurrentUsagePolicy,
    Estimator,
    GetNextProgress,
    GreedyHeuristicPolicy,
    MultiObjectivePolicy,
    ResourceType,
    RuntimeManager,
)
from repro.core.estimator import (
    OverloadAssessment,
    ResourceReport,
    TaskReport,
)
from repro.sim import Environment


def spawn_task(env, controller, name, progress=None):
    holder = {}

    def body(env):
        holder["task"] = controller.create_cancel(
            op_name=name, progress=progress
        )
        yield env.timeout(1000.0)

    env.process(body(env))
    env.run(until=env.now + 1e-6)
    return holder["task"]


def demo_future_gain():
    print("=" * 64)
    print("1. Future gain vs current usage (paper §3.4)")
    print("=" * 64)
    env = Environment()
    controller = BaseController(env)
    config = AtroposConfig()
    runtime = RuntimeManager(env, config)
    estimator = Estimator(env, runtime, config)
    pool = controller.register_resource("buffer_pool", ResourceType.MEMORY)

    prog_a = GetNextProgress(100)
    prog_a.advance(90)
    query_a = spawn_task(env, controller, "query_A_90pct", prog_a)
    runtime.record_get(query_a, pool, 60)

    prog_b = GetNextProgress(100)
    prog_b.advance(10)
    query_b = spawn_task(env, controller, "query_B_10pct", prog_b)
    runtime.record_get(query_b, pool, 30)

    print(f"  Query A: 90% done, holds 60 pages")
    print(f"    current usage = {estimator.current_usage(query_a, pool):.0f}")
    print(f"    future gain   = {estimator.resource_gain(query_a, pool):.1f}")
    print(f"  Query B: 10% done, holds 30 pages")
    print(f"    current usage = {estimator.current_usage(query_b, pool):.0f}")
    print(f"    future gain   = {estimator.resource_gain(query_b, pool):.1f}")
    print(
        "  -> current usage would cancel the nearly-finished A; "
        "future gain correctly targets B.\n"
    )


def demo_multi_objective():
    print("=" * 64)
    print("2. Multi-objective vs greedy heuristic (paper §3.5)")
    print("=" * 64)
    env = Environment()
    controller = BaseController(env)
    res_a = controller.register_resource("resA", ResourceType.MEMORY)
    res_b = controller.register_resource("resB", ResourceType.LOCK)
    task_x = spawn_task(env, controller, "task_X")
    task_y = spawn_task(env, controller, "task_Y")

    assessment = OverloadAssessment(
        resources=[
            ResourceReport(res_a, 0.6, 0.6, True),
            ResourceReport(res_b, 0.55, 0.55, True),
        ],
        tasks=[
            TaskReport(task_x, 0.5, {res_a: 3.0}),
            TaskReport(task_y, 0.5, {res_a: 2.9, res_b: 5.0}),
        ],
    )
    print("  Resource A contention 0.60; resource B contention 0.55")
    print("  Task X: gain 3.0 on A only")
    print("  Task Y: gain 2.9 on A, 5.0 on B")
    for policy in (GreedyHeuristicPolicy(), MultiObjectivePolicy()):
        task, score = policy.select(assessment)
        print(f"  {policy.name:<18} -> cancels {task.op_name}"
              f" (score {score:.2f})")
    print(
        "  -> greedy converges on the locally optimal X; the "
        "multi-objective policy sees Y's combined gain.\n"
    )


def main():
    demo_future_gain()
    demo_multi_objective()


if __name__ == "__main__":
    main()
