#!/usr/bin/env python3
"""Fault injection from code: the same case, clean vs under a fault plan.

Runs case c1 (the MySQL backup-lock convoy) under ATROPOS twice -- once
clean, once with a mid-run fault plan that drops most cancel signals
while an arrival burst hits -- then prints both summaries, the
injector's fault log, and what the controller managed to do anyway.

Usage::

    python examples/chaos_demo.py
"""

from repro.campaign.spec import load_all_families
from repro.experiments.harness import resolve_sim, run_simulation
from repro.faults import FaultPlan, burst, cancel_drop

CASE_ID = "c1"
SEED = 0

PLAN = FaultPlan.of(
    cancel_drop(0.75, at=4.0, duration=4.0),
    burst(1.5, at=4.0, duration=2.0),
)


def run_case(plan):
    load_all_families()
    build = resolve_sim("case")({"case_id": CASE_ID, "system": "atropos"})
    return run_simulation(
        build.app_factory,
        build.workload_factory,
        build.controller_factory,
        duration=build.duration,
        seed=SEED,
        warmup=build.warmup,
        fault_plan=plan,
    )


def describe(name, result):
    s = result.summary
    print(
        f"{name:<18} throughput={s.throughput:7.1f} req/s   "
        f"p99={s.p99_latency * 1000:8.2f} ms   "
        f"drop_rate={s.drop_rate:.4f}   "
        f"cancels={result.controller.cancels_issued}"
    )


def main():
    print(f"Case {CASE_ID} under ATROPOS, seed {SEED}\n")
    print("Fault plan:")
    for fault in PLAN:
        print(f"  {fault.describe()}")
    print()

    clean = run_case(None)
    faulted = run_case(PLAN)
    describe("clean", clean)
    describe("faulted", faulted)

    print("\nFault log (from the injector):")
    for event in faulted.faults.events:
        status = "applied" if event.applied else "no-op"
        print(
            f"  t={event.time:6.2f}s  {event.phase:<7} {event.kind:<12} "
            f"[{status}] {event.detail}"
        )

    manager = faulted.controller.cancellation
    print(
        f"\nDuring the fault window the initiator silently dropped "
        f"{manager.dropped_signals} cancel signal(s)."
    )
    delivered = [e for e in manager.log if getattr(e, "delivered", True)]
    if delivered:
        print("Cancellations that still landed:")
        for event in delivered:
            print(f"  t={event.time:6.2f}s  cancelled {event.op_name!r}")
    else:
        print("No cancellation landed inside the run.")

    ratio = faulted.p99_latency / clean.p99_latency
    print(
        f"\np99 under faults is {ratio:.1f}x the clean run -- degraded, "
        f"but the controller kept running and recovered after the window."
    )


if __name__ == "__main__":
    main()
