#!/usr/bin/env python3
"""Cross-node culprit attribution: why the fleet needs a coordinator.

Three app nodes (MySQL + PostgreSQL models) sit behind a load balancer.
Two background offenders run: a *decoy* ``heavy_report`` that pins big
single-node resources, and a recurring ``fanout_scan`` that fans one
modest shard out to *every* node.  Each node's local ATROPOS pipeline
sees only its slice of the scan next to a huge local decoy -- so local-
only control cancels the wrong op, while the global coordinator's
cross-node breadth test attributes the scan, cancels its live shards
fleet-wide, and quarantines it at the balancer.

Usage::

    python examples/cluster_demo.py
"""

from collections import Counter

from repro.cluster import demo_fleet, run_fleet


def main():
    spec = demo_fleet(n_nodes=3, duration=16.0, warmup=4.0)
    print("scenario: 3 nodes (mysql/postgres/mysql) behind a "
          f"{spec.policy} balancer")
    print(f"  decoy   heavy_report: {spec.report_pages} pages pinned on "
          "one node at a time")
    print(f"  culprit fanout_scan:  {spec.scan_rows:,.0f} rows/shard on "
          f"every node, every {spec.scan_period:.0f}s")
    print()

    results = {}
    for mode in ("none", "local", "coordinated"):
        results[mode] = run_fleet(spec.with_mode(mode), jobs=1)

    print(f"{'mode':<13} {'victim p99':>11} {'goodput':>9} "
          f"{'cancels':>8} {'wrong':>6}")
    for mode, result in results.items():
        print(f"{mode:<13} {result.victim_p99 * 1000:>9.1f}ms "
              f"{result.goodput:>7.1f}/s {result.cancels_total:>8} "
              f"{result.wrong_cancels:>6}")
    print()

    local = results["local"]
    victims = Counter(
        op
        for report in local.node_reports
        for op in report["local_cancelled_ops"]
        if op not in spec.expected_culprits
    )
    print("local-only pipelines cancelled the wrong ops "
          f"{local.wrong_culprit_rate:.0%} of the time: {dict(victims)}")

    coordinated = results["coordinated"]
    first = coordinated.directives[0]
    print("the coordinator attributed the cross-node culprit instead:")
    print(f"  first directive at t={first['issued_at']:.1f}s: "
          f"{first['kind']} {first['op']!r} ({first['reason']})")
    print(f"  quarantined at the balancer: {coordinated.quarantined}")
    print(f"  wrong-culprit rate: {coordinated.wrong_culprit_rate:.0%}, "
          f"victim p99 {coordinated.victim_p99 * 1000:.1f}ms vs "
          f"{local.victim_p99 * 1000:.1f}ms local-only")


if __name__ == "__main__":
    main()
