#!/usr/bin/env python3
"""Quickstart: watch ATROPOS cancel a culprit query.

Runs the simulated MySQL server under a lightweight workload, injects a
buffer-pool-hogging dump query, and compares three runs:

1. no overload (baseline),
2. overload with no controller, and
3. overload with ATROPOS, which cancels the dump.

Usage::

    python examples/quickstart.py
"""

from repro.apps.base import Operation
from repro.apps.mysql import MySQL, light_mix
from repro.core import Atropos, AtroposConfig
from repro.experiments import run_simulation
from repro.workloads import OpenLoopSource, ScheduledOp, Workload


def mysql_app(env, controller, rng):
    return MySQL(env, controller, rng)


def workload(with_dump):
    def build(app, rng):
        sources = [OpenLoopSource(rate=300.0, mix=light_mix(rng))]
        if with_dump:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation("dump", {}),
                    client_id="reporting",
                )
            )
        return Workload(sources)

    return build


def atropos(env):
    return Atropos(env, AtroposConfig(slo_latency=0.02))


def describe(name, result):
    s = result.summary
    print(
        f"{name:<22} throughput={s.throughput:7.1f} req/s   "
        f"p99={s.p99_latency * 1000:8.2f} ms   "
        f"drop_rate={s.drop_rate:.4f}"
    )


def main():
    print("Simulating MySQL: 300 req/s point-selects/updates, 10 s runs\n")

    baseline = run_simulation(
        mysql_app, workload(with_dump=False), duration=10.0, warmup=2.0
    )
    describe("baseline (no dump)", baseline)

    overload = run_simulation(
        mysql_app, workload(with_dump=True), duration=10.0, warmup=2.0
    )
    describe("overload (dump)", overload)

    controlled = run_simulation(
        mysql_app,
        workload(with_dump=True),
        controller_factory=atropos,
        duration=10.0,
        warmup=2.0,
    )
    describe("overload + ATROPOS", controlled)

    print("\nATROPOS cancellation log:")
    for event in controlled.controller.cancellation.log:
        print(
            f"  t={event.time:6.2f}s  cancelled {event.op_name!r} "
            f"(contended resource: {event.resource}, "
            f"scalarized gain: {event.score:.1f})"
        )

    speedup = overload.p99_latency / controlled.p99_latency
    print(f"\np99 improvement over the uncontrolled run: {speedup:.1f}x")


if __name__ == "__main__":
    main()
