"""Tests for the CLI (`python -m repro`) and report generation."""

import pytest

from repro.__main__ import build_parser, main
from repro.reporting import DEFAULT_ORDER, render_report, run_experiments


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_flags(self):
        args = build_parser().parse_args(
            ["run", "fig10", "--full", "--seed", "3"]
        )
        assert args.experiment == "fig10"
        assert args.full
        assert args.seed == 3

    def test_case_validates_system_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case", "c1", "--system", "bogus"])

    def test_run_parses_adaptive_flag(self):
        args = build_parser().parse_args(["run", "fig9", "--adaptive"])
        assert args.adaptive
        assert not build_parser().parse_args(["run", "fig9"]).adaptive
        assert build_parser().parse_args(["all", "--adaptive"]).adaptive

    def test_ablate_adaptive_parses(self):
        args = build_parser().parse_args(
            ["ablate-adaptive", "--seed", "1", "--cases", "c2", "c12"]
        )
        assert args.command == "ablate-adaptive"
        assert args.seed == 1
        assert args.cases == ["c2", "c12"]

    def test_run_parses_campaign_flags(self):
        args = build_parser().parse_args(
            ["run", "fig10", "--jobs", "4", "--no-cache",
             "--cache-dir", "/tmp/x"]
        )
        assert args.jobs == 4
        assert args.cache is False
        assert args.cache_dir == "/tmp/x"

    def test_campaign_flags_default_to_ambient(self):
        args = build_parser().parse_args(["run", "fig10"])
        assert args.jobs is None
        assert args.cache is None
        assert args.cache_dir is None

    def test_sweep_parses_seeds(self):
        args = build_parser().parse_args(
            ["sweep", "fig10", "--seeds", "0", "1", "2"]
        )
        assert args.seeds == [0, 1, 2]

    def test_cache_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "bogus"])

    def test_regress_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["regress"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["regress", "bogus"])

    def test_regress_baseline_parses(self):
        args = build_parser().parse_args(
            ["regress", "baseline", "--out", "b.json", "--name", "nightly",
             "--targets", "case", "dag", "--cases", "c1", "c2",
             "--seed", "3", "--jobs", "2"]
        )
        assert args.action == "baseline"
        assert args.out == "b.json"
        assert args.name == "nightly"
        assert args.targets == ["case", "dag"]
        assert args.cases == ["c1", "c2"]
        assert args.seed == 3

    def test_regress_baseline_parses_any_target_name(self):
        # Validation happens in cmd_regress against REGRESS_TARGETS, not
        # in argparse (a hard-coded choices list drifts as families are
        # added); see TestCommands.test_regress_unknown_target_exits_2.
        args = build_parser().parse_args(
            ["regress", "baseline", "--targets", "lever"]
        )
        assert args.targets == ["lever"]

    def test_regress_baseline_parses_telemetry_flags(self):
        args = build_parser().parse_args(
            ["regress", "baseline", "--telemetry",
             "--scrape-interval", "0.5"]
        )
        assert args.telemetry
        assert args.scrape_interval == 0.5
        assert not build_parser().parse_args(
            ["regress", "baseline"]
        ).telemetry

    def test_ablate_parses_levers_flag(self):
        args = build_parser().parse_args(
            ["ablate", "--levers", "--cases", "c17", "c18"]
        )
        assert args.command == "ablate"
        assert args.levers
        assert args.cases == ["c17", "c18"]
        assert not build_parser().parse_args(["ablate"]).levers

    def test_regress_check_parses(self):
        args = build_parser().parse_args(
            ["regress", "check", "--baseline", "b.json",
             "--perturb", "slo_slack=0.8", "--rel-tol", "0.1",
             "--report", "diff.html"]
        )
        assert args.action == "check"
        assert args.baseline == "b.json"
        assert args.perturb == ["slo_slack=0.8"]
        assert args.rel_tol == 0.1
        assert args.report == "diff.html"

    def test_regress_defaults(self):
        args = build_parser().parse_args(["regress", "check"])
        assert args.baseline == "REGRESS_BASELINE.json"
        assert args.perturb is None
        assert args.rel_tol == 0.05
        assert build_parser().parse_args(
            ["regress", "baseline"]
        ).out == "REGRESS_BASELINE.json"

    def test_regress_schedule_parses(self):
        args = build_parser().parse_args(
            ["regress", "schedule", "--case", "case:c1"]
        )
        assert args.action == "schedule"
        assert args.case == "case:c1"

    def test_faults_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])

    def test_faults_run_requires_plan(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "run"])

    def test_faults_matrix_parses_flags(self):
        args = build_parser().parse_args(
            ["faults", "matrix", "--quick", "--kinds", "burst",
             "cancel-drop", "--cases", "c1", "--jobs", "2"]
        )
        assert args.faults_command == "matrix"
        assert args.kinds == ["burst", "cancel-drop"]
        assert args.cases == ["c1"]
        assert not args.full

    def test_run_parses_telemetry_flags(self):
        args = build_parser().parse_args(
            ["run", "fig2", "--telemetry", "out", "--live",
             "--scrape-interval", "0.5"]
        )
        assert args.telemetry == "out"
        assert args.live
        assert args.scrape_interval == 0.5

    def test_telemetry_flags_default_off(self):
        args = build_parser().parse_args(["all"])
        assert args.telemetry is None
        assert not args.live
        assert args.scrape_interval == 0.25

    def test_report_parses(self):
        args = build_parser().parse_args(
            ["report", "fig2", "--out", "r.html", "--seed", "3"]
        )
        assert args.command == "report"
        assert args.experiment == "fig2"
        assert args.out == "r.html"
        assert args.seed == 3

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.command == "cluster"
        assert args.nodes == 3
        assert args.mode == "compare"
        assert args.policy == "least-outstanding"
        assert args.jobs is None
        assert not args.digest

    def test_cluster_parses_flags(self):
        args = build_parser().parse_args(
            ["cluster", "--nodes", "5", "--mode", "coordinated",
             "--policy", "p2c", "--backends", "mysql",
             "--duration", "12", "--warmup", "3", "--epoch", "0.25",
             "--seed", "7", "--jobs", "2", "--digest"]
        )
        assert args.nodes == 5
        assert args.mode == "coordinated"
        assert args.policy == "p2c"
        assert args.backends == ["mysql"]
        assert args.duration == 12.0
        assert args.warmup == 3.0
        assert args.epoch == 0.25
        assert args.seed == 7
        assert args.jobs == 2
        assert args.digest

    def test_cluster_validates_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--mode", "bogus"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--policy", "bogus"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--backends", "oracle"])


class TestCommands:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_run_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_table_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "c16" in out

    def test_case_unknown_exits_2(self):
        assert main(["case", "c99"]) == 2

    def test_case_runs_end_to_end(self, capsys):
        assert main(["case", "c16", "--system", "overload"]) == 0
        out = capsys.readouterr().out
        assert "norm_tput" in out

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:       0" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "removed 0" in out

    @pytest.mark.slow
    def test_regress_baseline_check_report_loop(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        baseline = str(tmp_path / "baseline.json")
        assert main(
            ["regress", "baseline", "--cases", "c1", "--out", baseline,
             "--cache-dir", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "1 capture(s)" in out
        assert "case:c1" in out

        # Unchanged tree: the check replays from cache and passes.
        assert main(
            ["regress", "check", "--baseline", baseline,
             "--cache-dir", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out

        # A seeded detection-threshold perturbation must be flagged
        # with exit code 1 and the drifting series named.
        report_path = str(tmp_path / "diff.html")
        assert main(
            ["regress", "check", "--baseline", baseline,
             "--perturb", "contention_threshold=0.6",
             "--report", report_path, "--cache-dir", cache_dir]
        ) == 1
        out = capsys.readouterr().out
        assert "verdict: DRIFT" in out
        assert "case:c1/" in out
        html_text = open(report_path).read()
        assert "DRIFT" in html_text
        for name in out.split("verdict: DRIFT (", 1)[1] \
                .rsplit(")", 1)[0].split(", "):
            assert name.split("/", 1)[1] in html_text

        # The report action writes HTML and always exits 0.
        assert main(
            ["regress", "report", "--baseline", baseline,
             "--report", str(tmp_path / "report.html"),
             "--cache-dir", cache_dir]
        ) == 0
        assert "PASS" in open(tmp_path / "report.html").read()

    def test_regress_check_missing_baseline_exits_2(self, capsys):
        assert main(
            ["regress", "check", "--baseline", "/no/such/file.json"]
        ) == 2

    def test_regress_unknown_target_exits_2(self, capsys):
        assert main(
            ["regress", "baseline", "--targets", "case", "bogus"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown regress target(s): bogus" in err
        for known in ("case", "dag", "cluster", "lever"):
            assert known in err

    def test_regress_schedule_empty_history(self, tmp_path, capsys):
        from repro.regress.baseline import RegressBaseline

        baseline = tmp_path / "b.json"
        RegressBaseline(name="empty").write(str(baseline))
        assert main(
            ["regress", "schedule", "--baseline", str(baseline)]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "{}"

    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "cancel-drop" in out
        assert "lossy-initiator" in out

    def test_faults_run_unknown_plan_exits_2(self, capsys):
        assert main(["faults", "run", "--plan", "no-such-plan"]) == 2

    def test_faults_run_named_plan(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["faults", "run", "--plan", "lossy-initiator",
             "--cache-dir", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "Fault log" in out
        assert "cancel-drop" in out
        assert "applied" in out

    def test_faults_run_plan_file(self, tmp_path, capsys):
        from repro.faults import FaultPlan, burst

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            FaultPlan.of(burst(2.0, at=4.0, duration=2.0)).to_json()
        )
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["faults", "run", "--plan", str(plan_path),
             "--cache-dir", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "burst" in out

    @pytest.mark.slow
    def test_faults_matrix_cached_rerun_is_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["faults", "matrix", "--quick", "--kinds", "burst",
                "uncancellable", "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "Chaos matrix" in cold.out
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "misses=0" in warm.err

    def test_cluster_single_mode_prints_render_and_digest(self, capsys):
        assert main(
            ["cluster", "--mode", "coordinated", "--duration", "8",
             "--warmup", "2", "--digest"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet: 3 nodes" in out
        assert "mode=coordinated" in out
        assert "digest " in out

    def test_report_unknown_experiment_exits_2(self, capsys):
        assert main(["report", "fig99"]) == 2

    def test_report_on_simulation_free_experiment(self, tmp_path, capsys):
        # Tables regenerate from registries without simulating; the
        # report degrades to a valid empty document.
        out = str(tmp_path / "t.html")
        assert main(["report", "table1", "--out", out]) == 0
        captured = capsys.readouterr()
        assert "telemetry report for 0 run(s)" in captured.err
        text = (tmp_path / "t.html").read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "No telemetry captured" in text

    @pytest.mark.slow
    def test_report_writes_sparkline_html(self, tmp_path, capsys):
        out = str(tmp_path / "fig2.html")
        assert main(["report", "fig2", "--out", out]) == 0
        captured = capsys.readouterr()
        assert "Fig 2" in captured.out
        assert "telemetry report for 18 run(s)" in captured.err
        text = (tmp_path / "fig2.html").read_text()
        assert text.count("<svg") >= 4 * 18
        assert "health timeline" in text

    @pytest.mark.slow
    def test_run_telemetry_writes_exports(self, tmp_path, capsys):
        out_dir = tmp_path / "tel"
        assert main(
            ["run", "fig2", "--telemetry", str(out_dir),
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        captured = capsys.readouterr()
        assert "telemetry for" in captured.err
        # Telemetry bypasses the cache entirely: all misses, serial.
        assert "hits=0" in captured.err
        for name in ("metrics.prom", "series.jsonl", "report.html"):
            assert (out_dir / name).exists(), name
        prom = (out_dir / "metrics.prom").read_text()
        assert "# TYPE repro_scrapes_total counter" in prom

    @pytest.mark.slow
    def test_run_reports_campaign_stats_on_stderr(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["run", "fig10", "--cache-dir", cache_dir, "--jobs", "2"]
        ) == 0
        captured = capsys.readouterr()
        assert "Fig 10a" in captured.out
        assert "[campaign]" in captured.err
        assert "[campaign]" not in captured.out

    @pytest.mark.slow
    def test_run_cached_rerun_is_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig10", "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr()
        assert main(["run", "fig10", "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "misses=0" in warm.err


class TestReporting:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["nope"])

    def test_run_and_render_tables_only(self):
        results = run_experiments(["table1", "table2"], quick=True)
        report = render_report(results)
        assert "151" in report
        assert "c16" in report
        # Order follows the paper's artifact order.
        assert report.index("table1") < report.index("table2")

    def test_progress_callback_invoked(self):
        seen = []
        run_experiments(
            ["table1"], progress=lambda exp, dt: seen.append(exp)
        )
        assert seen == ["table1"]

    def test_default_order_covers_all_paper_artifacts(self):
        assert set(DEFAULT_ORDER) == {
            "fig2", "fig3", "fig4", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "table1", "table2", "table3",
        }
