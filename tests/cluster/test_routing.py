"""Routing-policy unit tests (LB node selection and DAGOR shedding)."""

import pytest

from repro.cluster import (
    DagorAdmission,
    LeastOutstanding,
    NodeView,
    PowerOfTwoChoices,
    RoundRobin,
    make_policy,
    policy_names,
)
from repro.sim.rng import Rng


def views(*outstanding, admit=99):
    return [
        NodeView(index=i, name=f"node-{i}", outstanding=n,
                 admit_priority=admit)
        for i, n in enumerate(outstanding)
    ]


def test_round_robin_cycles_regardless_of_load():
    policy = RoundRobin()
    rng = Rng(0)
    picks = [policy.choose("point", views(9, 0, 5), rng) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_least_outstanding_picks_min_and_breaks_ties_by_index():
    policy = LeastOutstanding()
    rng = Rng(0)
    assert policy.choose("point", views(4, 1, 3), rng) == 1
    assert policy.choose("point", views(2, 2, 5), rng) == 0


def test_p2c_picks_less_loaded_of_two_samples():
    policy = PowerOfTwoChoices()
    rng = Rng(7)
    vs = views(10, 0, 10, 10)
    # Whatever pair the rng samples, the winner is never more loaded
    # than both losers; over many draws the idle node dominates.
    picks = [policy.choose("point", vs, rng) for _ in range(50)]
    assert set(picks) <= {0, 1, 2, 3}
    assert picks.count(1) > 10


def test_p2c_single_node_needs_no_sampling():
    policy = PowerOfTwoChoices()
    assert policy.choose("point", views(5), Rng(0)) == 0


def test_p2c_is_deterministic_per_seed():
    vs = views(3, 1, 4, 1, 5)
    runs = []
    for _ in range(2):
        policy = PowerOfTwoChoices()
        rng = Rng(42)
        runs.append([policy.choose("point", vs, rng) for _ in range(20)])
    assert runs[0] == runs[1]


def test_dagor_routes_critical_ops_to_least_loaded_admitter():
    policy = DagorAdmission()
    rng = Rng(0)
    vs = views(5, 2, 1)
    vs[2].admit_priority = 0  # only admits the most critical op
    assert policy.choose("point", vs, rng) == 2  # priority 0, admitted
    assert policy.choose("fanout_scan", vs, rng) == 1  # node-2 refuses


def test_dagor_sheds_when_no_node_admits():
    policy = DagorAdmission()
    rng = Rng(0)
    assert policy.choose("fanout_scan", views(1, 1, admit=0), rng) is None
    assert policy.choose("point", views(1, 1, admit=0), rng) is not None


def test_make_policy_resolves_all_names_and_rejects_unknown():
    for name in policy_names():
        assert make_policy(name).name == name
    with pytest.raises(ValueError, match="unknown routing policy"):
        make_policy("bogus")


def test_policy_names_are_the_documented_four():
    assert policy_names() == [
        "dagor", "least-outstanding", "p2c", "round-robin",
    ]
