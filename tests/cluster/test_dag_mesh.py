"""Microservice-DAG mesh: parity, contrast, and hash-seed determinism.

``run_dag`` shards per-service simulations across fork-started workers;
the epoch-synchronized execution model promises the *same bytes* as the
serial path.  The contrast tests pin the headline claim of the DAG
tier: cancellation (ATROPOS) beats admission shedding (DAGOR) and
concurrency throttling (Autothrottle) on both victim tail latency and
goodput, because only cancellation reclaims resources already held by
an in-flight storm.
"""

import multiprocessing
import os
import subprocess
import sys

import pytest

from repro.cluster import run_dag
from repro.workloads.dag import dag_storm

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded path requires the fork start method",
)


def small_spec():
    # Two storms land (t=6, t=10); short enough to keep tests quick.
    return dag_storm(n_leaves=2, duration=12.0, warmup=3.0)


@pytest.fixture(scope="module")
def results():
    spec = small_spec()
    return {
        name: run_dag(spec, controller=name, jobs=1)
        for name in ("none", "atropos", "dagor", "autothrottle")
    }


class TestContrast:
    def test_atropos_strictly_best_on_both_axes(self, results):
        atropos = results["atropos"]
        for rival in ("none", "dagor", "autothrottle"):
            assert atropos.victim_p99 < results[rival].victim_p99, rival
            assert atropos.goodput > results[rival].goodput, rival

    def test_each_controller_acts_through_its_own_lever(self, results):
        assert results["atropos"].cancelled_shards > 0
        assert results["dagor"].shed_upstream > 0
        assert results["autothrottle"].tower_moves
        # ... and not through each other's.
        assert results["dagor"].cancelled_shards == 0
        assert results["autothrottle"].cancelled_shards == 0
        assert results["none"].cancelled_shards == 0

    def test_result_accounting_is_consistent(self, results):
        for result in results.values():
            for name, counts in result.classes.items():
                settled = (
                    counts["completed"]
                    + counts["shed_upstream"]
                    + counts["cancelled"]
                    + counts["unfinished"]
                )
                assert settled == counts["offered"], (
                    f"{result.controller}/{name}: {counts}"
                )


@needs_fork
class TestShardParity:
    @pytest.mark.parametrize(
        "controller", ["atropos", "dagor", "autothrottle"]
    )
    def test_sharded_matches_serial_bytes(self, results, controller):
        serial = results[controller]
        spec = small_spec()
        for jobs in (2, 3):
            sharded = run_dag(spec, controller=controller, jobs=jobs)
            assert sharded.digest() == serial.digest(), (
                f"jobs={jobs} diverged from serial for {controller}"
            )


_SCRIPT = """
from repro.cluster import run_dag
from repro.workloads.dag import dag_storm

spec = dag_storm(n_leaves=2, duration=12.0, warmup=3.0)
print(run_dag(spec, controller="atropos", jobs=1).digest())
"""


def _digest(hash_seed):
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    digest = proc.stdout.strip()
    assert len(digest) == 64, proc.stderr
    return digest


def test_dag_digest_identical_across_hash_seeds():
    digests = {_digest(seed) for seed in ("0", "1", "9973")}
    assert len(digests) == 1
