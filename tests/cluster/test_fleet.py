"""End-to-end fleet runs: attribution contrast and partition behavior.

The scenario (see :func:`repro.cluster.demo_fleet`): a decoy
``heavy_report`` holds big single-node resources while a recurring
``fanout_scan`` fans one shard to every node.  Local-only pipelines see
only their slice of the scan next to a huge local decoy and cancel the
wrong op; the coordinator's cross-node breadth test attributes the scan.
"""

import pytest

from repro.cluster import demo_fleet, run_fleet


def quick_spec(**overrides):
    overrides.setdefault("duration", 16.0)
    overrides.setdefault("warmup", 4.0)
    return demo_fleet(n_nodes=3, **overrides)


@pytest.fixture(scope="module")
def contrast():
    """One run per control mode on the standard quick scenario."""
    spec = quick_spec()
    return {
        mode: run_fleet(spec.with_mode(mode), jobs=1)
        for mode in ("none", "local", "coordinated")
    }


def test_uncontrolled_fleet_cancels_nothing(contrast):
    result = contrast["none"]
    assert result.cancels_total == 0
    assert result.directives == []
    assert result.quarantined == []


def test_local_pipelines_flail_on_the_decoy(contrast):
    result = contrast["local"]
    assert result.cancels_total > 0
    assert result.wrong_culprit_rate > 0.5
    # The coordinator runs in shadow (its directives are recorded but
    # never delivered): no node executes a directive cancel.
    assert all(
        r["directive_cancels"] == 0 for r in result.node_reports
    )


def test_coordinator_attributes_the_cross_node_culprit(contrast):
    result = contrast["coordinated"]
    assert result.wrong_culprit_rate == 0.0
    assert result.cancels_total > 0
    assert "fanout_scan" in result.quarantined
    assert result.directives, "coordinator issued no directives"
    assert all(d["op"] == "fanout_scan" for d in result.directives)
    verdicts = {d["verdict"] for d in result.decisions}
    assert "quarantine" in verdicts


def test_coordination_beats_local_and_uncontrolled(contrast):
    none, local, coordinated = (
        contrast["none"], contrast["local"], contrast["coordinated"]
    )
    assert coordinated.victim_p99 < local.victim_p99
    assert coordinated.victim_p99 < none.victim_p99
    assert coordinated.goodput > local.goodput
    assert coordinated.goodput > none.goodput


def test_result_round_trips_to_json_dict(contrast):
    result = contrast["coordinated"]
    payload = result.to_dict()
    assert payload["spec_mode"] == "coordinated"
    assert payload["n_nodes"] == 3
    assert len(payload["node_reports"]) == 3
    assert len(result.digest()) == 64
    text = result.render()
    assert "fleet: 3 nodes" in text
    assert "mode=coordinated" in text


def test_partitioned_node_misses_directives():
    spec = quick_spec(partitions=(("node-1", 6.0, 16.0),))
    result = run_fleet(spec, jobs=1)
    by_node = {r["node"]: r for r in result.node_reports}
    others = [
        by_node[name]["directive_cancels"]
        for name in by_node if name != "node-1"
    ]
    # The healthy nodes deliver coordinator cancels; the partitioned
    # node cannot be reached for the whole directive window.
    assert sum(others) > 0
    assert by_node["node-1"]["directive_cancels"] == 0
