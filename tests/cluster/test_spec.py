"""FleetSpec validation, epoch arithmetic, and serialization."""

import pytest

from repro.cluster import FleetSpec, NodeSpec, demo_fleet


def two_nodes():
    return [NodeSpec("a", "mysql"), NodeSpec("b", "postgres")]


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            NodeSpec("a", backend="oracle")

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="nodes must not be empty"):
            FleetSpec(nodes=[])

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate node names"):
            FleetSpec(nodes=[NodeSpec("a"), NodeSpec("a")])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            FleetSpec(nodes=two_nodes(), mode="bogus")

    def test_warmup_must_precede_duration(self):
        with pytest.raises(ValueError, match="warmup"):
            FleetSpec(nodes=two_nodes(), duration=10.0, warmup=10.0)

    def test_partition_must_name_known_node(self):
        with pytest.raises(ValueError, match="unknown node"):
            FleetSpec(nodes=two_nodes(), partitions=(("ghost", 1.0, 2.0),))

    def test_partition_window_must_be_ordered(self):
        with pytest.raises(ValueError, match="bad partition window"):
            FleetSpec(nodes=two_nodes(), partitions=(("a", 5.0, 2.0),))

    def test_demo_fleet_requires_a_node(self):
        with pytest.raises(ValueError, match="n_nodes"):
            demo_fleet(n_nodes=0)


class TestEpochs:
    def test_epoch_count_covers_duration(self):
        spec = FleetSpec(nodes=two_nodes(), duration=10.0, epoch=0.5)
        assert spec.epoch_count() == 20
        assert spec.epoch_end(0) == 0.5
        assert spec.epoch_end(19) == 10.0

    def test_last_epoch_clamped_to_duration(self):
        spec = FleetSpec(nodes=two_nodes(), duration=10.2, epoch=0.5,
                         warmup=2.0)
        assert spec.epoch_count() == 21
        assert spec.epoch_end(20) == 10.2


class TestSerialization:
    def test_dict_round_trip(self):
        spec = demo_fleet(n_nodes=4, partitions=(("node-1", 1.0, 2.0),))
        clone = FleetSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.nodes[1] == NodeSpec("node-1", "postgres")

    def test_with_mode_replaces_only_mode(self):
        spec = demo_fleet(n_nodes=2)
        local = spec.with_mode("local")
        assert local.mode == "local"
        assert local.nodes == spec.nodes
        assert spec.mode == "coordinated"

    def test_demo_fleet_cycles_backends(self):
        spec = demo_fleet(n_nodes=3, backends=("postgres", "mysql"))
        assert [n.backend for n in spec.nodes] == [
            "postgres", "mysql", "postgres",
        ]
