"""Fleet results must be byte-identical across PYTHONHASHSEEDs.

Same promise the telemetry layer makes (tests/telemetry): nothing on
the assign -> advance -> observe -> summarize path may depend on dict/
set iteration order or ``id()``.  The digest covers the entire
FleetResult payload (latencies, cancels, directives, decisions, health
events, LB stats, per-node reports).
"""

import os
import subprocess
import sys

_SCRIPT = """
from repro.cluster import demo_fleet, run_fleet

spec = demo_fleet(n_nodes=3, duration=8.0, warmup=2.0, mode="coordinated")
print(run_fleet(spec, jobs=1).digest())
"""


def _digest(hash_seed):
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    digest = proc.stdout.strip()
    assert len(digest) == 64, proc.stderr
    return digest


def test_fleet_digest_identical_across_hash_seeds():
    digests = {_digest(seed) for seed in ("0", "1", "9973")}
    assert len(digests) == 1
