"""Serial vs sharded byte parity.

``run_fleet`` shards per-node simulations across fork-started worker
processes; the epoch-synchronized execution model promises the *same
bytes* as the serial path.  Any hidden cross-node coupling outside the
epoch-boundary data (arrivals, statuses, directives) shows up here as a
digest mismatch.
"""

import multiprocessing

import pytest

from repro.cluster import demo_fleet, run_fleet

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded path requires the fork start method",
)


def spec(mode):
    return demo_fleet(n_nodes=3, duration=12.0, warmup=3.0, mode=mode)


@needs_fork
@pytest.mark.parametrize("mode", ["local", "coordinated"])
def test_sharded_matches_serial_bytes(mode):
    serial = run_fleet(spec(mode), jobs=1)
    sharded = {jobs: run_fleet(spec(mode), jobs=jobs) for jobs in (2, 3)}
    for jobs, result in sharded.items():
        assert result.digest() == serial.digest(), (
            f"jobs={jobs} diverged from serial in mode={mode}"
        )
    # The digest covers the full result payload; spot-check the headline
    # numbers anyway so a digest bug cannot mask a real mismatch.
    assert sharded[2].victim_p99 == serial.victim_p99
    assert sharded[2].cancels_total == serial.cancels_total


@needs_fork
def test_jobs_beyond_node_count_clamp_to_node_count():
    serial = run_fleet(spec("coordinated"), jobs=1)
    oversub = run_fleet(spec("coordinated"), jobs=16)
    assert oversub.digest() == serial.digest()
