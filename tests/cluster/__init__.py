"""Tests for the cluster tier (repro.cluster)."""
