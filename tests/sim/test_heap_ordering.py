"""Property tests for the kernel's (time, priority, sequence) ordering.

The packed heap key (``(priority << SEQ_BITS) | seq``) must order events
exactly like the documented contract: ascending time, then URGENT before
NORMAL, then FIFO scheduling order.  These tests drive randomized
same-time URGENT/NORMAL mixes through the real scheduler and compare the
processed order against a reference sort of the scheduling log.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.events import NORMAL, SEQ_BITS, URGENT, Event

#: A scheduled entry for the generators: (time-bucket, priority).  Few
#: distinct times so same-time collisions (the interesting regime) are
#: common.
entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.sampled_from([URGENT, NORMAL]),
    ),
    min_size=1,
    max_size=60,
)


def _processed_order(batch):
    """Schedule ``batch`` and return processed indices in kernel order."""
    env = Environment()
    order = []

    def observe(index):
        def callback(event):
            order.append(index)

        return callback

    for index, (bucket, priority) in enumerate(batch):
        event = Event(env)
        event._value = index  # pre-triggered, like a Timeout
        event.callbacks.append(observe(index))
        env.schedule(event, priority=priority, delay=bucket * 0.25)
    env.run()
    return order


@given(entries)
@settings(max_examples=200, deadline=None)
def test_order_is_time_priority_fifo(batch):
    reference = sorted(
        range(len(batch)),
        key=lambda i: (batch[i][0], batch[i][1], i),
    )
    assert _processed_order(batch) == reference


@given(entries)
@settings(max_examples=100, deadline=None)
def test_urgent_precedes_normal_within_a_time(batch):
    order = _processed_order(batch)
    for bucket in {b for b, _ in batch}:
        at_time = [i for i in order if batch[i][0] == bucket]
        # Within one timestamp: all URGENT events first, each class FIFO.
        urgent = [i for i in at_time if batch[i][1] == URGENT]
        normal = [i for i in at_time if batch[i][1] == NORMAL]
        assert at_time == urgent + normal
        assert urgent == sorted(urgent)
        assert normal == sorted(normal)


@given(st.integers(min_value=0, max_value=2**SEQ_BITS - 1))
@settings(max_examples=200, deadline=None)
def test_packed_key_matches_tuple_order(seq):
    # The packed key must compare exactly like the (priority, seq) tuple
    # for any sequence number the kernel can reach.
    urgent_key = (URGENT << SEQ_BITS) | seq
    normal_key = (NORMAL << SEQ_BITS) | seq
    assert urgent_key < normal_key
    assert (urgent_key < (URGENT << SEQ_BITS) | (seq + 1)) == (
        (URGENT, seq) < (URGENT, seq + 1)
    )


def test_schedule_batch_matches_loop_of_schedules():
    """Preloading via schedule_batch processes in the same order as an
    equivalent sequence of schedule() calls."""

    def build(use_batch):
        env = Environment()
        order = []

        def observe(index):
            return lambda event: order.append(index)

        pairs = []
        times = [0.0, 0.1, 0.1, 0.1, 0.4, 0.4, 1.0]
        for index, at in enumerate(times):
            event = Event(env)
            event._value = index
            event.callbacks.append(observe(index))
            pairs.append((at, event))
        if use_batch:
            env.schedule_batch(pairs)
        else:
            for at, event in pairs:
                env.schedule(event, delay=at)
        env.run()
        return order

    assert build(True) == build(False)
