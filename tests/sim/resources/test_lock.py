"""Tests for the shared/exclusive FIFO lock."""

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.resources import SyncLock


@pytest.fixture
def env():
    return Environment()


def test_uncontended_exclusive_grant_is_immediate(env):
    lock = SyncLock(env, "t")
    log = []

    def proc(env):
        with lock.acquire(owner="a") as g:
            yield g
            log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0.0]


def test_exclusive_excludes_exclusive(env):
    lock = SyncLock(env, "t")
    log = []

    def proc(env, tag, hold):
        with lock.acquire(owner=tag) as g:
            yield g
            log.append((tag, env.now))
            yield env.timeout(hold)

    env.process(proc(env, "a", 5.0))
    env.process(proc(env, "b", 1.0))
    env.run()
    assert log == [("a", 0.0), ("b", 5.0)]


def test_readers_share(env):
    lock = SyncLock(env, "t")
    log = []

    def reader(env, tag):
        with lock.acquire(owner=tag, exclusive=False) as g:
            yield g
            log.append((tag, env.now))
            yield env.timeout(3.0)

    env.process(reader(env, "r1"))
    env.process(reader(env, "r2"))
    env.run()
    assert log == [("r1", 0.0), ("r2", 0.0)]


def test_queued_writer_blocks_later_readers(env):
    """FIFO: a writer in the queue blocks readers that arrive after it.

    This is the convoy behaviour behind the paper's case 1 (backup lock).
    """
    lock = SyncLock(env, "t")
    log = []

    def reader_hold(env):
        with lock.acquire(owner="long-reader", exclusive=False) as g:
            yield g
            yield env.timeout(10.0)

    def writer(env):
        yield env.timeout(1.0)
        with lock.acquire(owner="writer") as g:
            yield g
            log.append(("writer", env.now))
            yield env.timeout(2.0)

    def late_reader(env):
        yield env.timeout(2.0)
        with lock.acquire(owner="late-reader", exclusive=False) as g:
            yield g
            log.append(("late-reader", env.now))

    env.process(reader_hold(env))
    env.process(writer(env))
    env.process(late_reader(env))
    env.run()
    # Writer waits for long reader (until 10), late reader waits for writer.
    assert log == [("writer", 10.0), ("late-reader", 12.0)]


def test_wait_time_accounting(env):
    lock = SyncLock(env, "t")
    waits = {}

    def proc(env, tag, hold):
        with lock.acquire(owner=tag) as g:
            yield g
            waits[tag] = g.wait_time
            yield env.timeout(hold)

    env.process(proc(env, "a", 4.0))
    env.process(proc(env, "b", 1.0))
    env.run()
    assert waits == {"a": 0.0, "b": 4.0}
    assert lock.total_wait_time == 4.0


def test_hold_time_accounting(env):
    lock = SyncLock(env, "t")

    def proc(env):
        with lock.acquire(owner="a") as g:
            yield g
            yield env.timeout(7.0)

    env.process(proc(env))
    env.run()
    assert lock.total_hold_time == 7.0


def test_cancelled_waiter_leaves_queue(env):
    lock = SyncLock(env, "t")
    log = []

    def holder(env):
        with lock.acquire(owner="holder") as g:
            yield g
            yield env.timeout(10.0)

    def waiter(env):
        try:
            with lock.acquire(owner="waiter") as g:
                yield g
                log.append("waiter-got-lock")
        except Interrupt:
            log.append("waiter-cancelled")

    def killer(env, target):
        yield env.timeout(2.0)
        target.interrupt()

    env.process(holder(env))
    w = env.process(waiter(env))
    env.process(killer(env, w))
    env.run()
    assert log == ["waiter-cancelled"]
    assert lock.queue_length == 0
    assert lock.holders == []


def test_cancelling_queued_writer_unblocks_readers(env):
    """Removing a queued writer must re-dispatch readers behind it."""
    lock = SyncLock(env, "t")
    log = []

    def holder(env):
        with lock.acquire(owner="r0", exclusive=False) as g:
            yield g
            yield env.timeout(10.0)

    def writer(env):
        yield env.timeout(1.0)
        try:
            with lock.acquire(owner="w") as g:
                yield g
        except Interrupt:
            log.append(("writer-cancelled", env.now))

    def reader(env):
        yield env.timeout(2.0)
        with lock.acquire(owner="r1", exclusive=False) as g:
            yield g
            log.append(("reader-granted", env.now))

    def killer(env, target):
        yield env.timeout(3.0)
        target.interrupt()

    env.process(holder(env))
    w = env.process(writer(env))
    env.process(reader(env))
    env.process(killer(env, w))
    env.run()
    # Reader shares with r0 as soon as the queued writer is cancelled at t=3.
    assert ("writer-cancelled", 3.0) in log
    assert ("reader-granted", 3.0) in log


def test_interrupt_while_holding_releases_via_context_manager(env):
    lock = SyncLock(env, "t")
    log = []

    def holder(env):
        try:
            with lock.acquire(owner="h") as g:
                yield g
                yield env.timeout(100.0)
        except Interrupt:
            log.append("cancelled")

    def waiter(env):
        yield env.timeout(1.0)
        with lock.acquire(owner="w") as g:
            yield g
            log.append(("granted", env.now))

    def killer(env, target):
        yield env.timeout(5.0)
        target.interrupt()

    h = env.process(holder(env))
    env.process(waiter(env))
    env.process(killer(env, h))
    env.run()
    assert log == ["cancelled", ("granted", 5.0)]
    assert lock.holders == []


def test_close_is_idempotent(env):
    lock = SyncLock(env, "t")

    def proc(env):
        g = lock.acquire(owner="a")
        yield g
        g.close()
        g.close()

    env.process(proc(env))
    env.run()
    assert lock.holders == []


def test_queue_length_and_holder_introspection(env):
    lock = SyncLock(env, "t")
    snapshots = []

    def holder(env):
        with lock.acquire(owner="h") as g:
            yield g
            yield env.timeout(5.0)

    def waiter(env):
        yield env.timeout(1.0)
        with lock.acquire(owner="w") as g:
            yield g

    def observer(env):
        yield env.timeout(2.0)
        snapshots.append((lock.queue_length, lock.holder_owners()))

    env.process(holder(env))
    env.process(waiter(env))
    env.process(observer(env))
    env.run()
    assert snapshots == [(1, ["h"])]
