"""Tests for the time-sliced CPU model."""

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.resources import CPU


@pytest.fixture
def env():
    return Environment()


def test_single_task_runs_at_full_speed(env):
    cpu = CPU(env, "cpu", cores=1, slice_time=0.01)
    done = []

    def task(env):
        yield from cpu.execute("a", 0.1)
        done.append(env.now)

    env.process(task(env))
    env.run()
    assert done[0] == pytest.approx(0.1)
    assert cpu.consumed("a") == pytest.approx(0.1)


def test_two_tasks_share_one_core(env):
    cpu = CPU(env, "cpu", cores=1, slice_time=0.01)
    done = {}

    def task(env, tag, demand):
        yield from cpu.execute(tag, demand)
        done[tag] = env.now

    env.process(task(env, "a", 0.1))
    env.process(task(env, "b", 0.1))
    env.run()
    # Interleaved: both finish around the total demand (0.2), not 0.1.
    assert done["a"] == pytest.approx(0.2, abs=0.02)
    assert done["b"] == pytest.approx(0.2, abs=0.02)


def test_two_cores_run_in_parallel(env):
    cpu = CPU(env, "cpu", cores=2, slice_time=0.01)
    done = {}

    def task(env, tag):
        yield from cpu.execute(tag, 0.1)
        done[tag] = env.now

    env.process(task(env, "a"))
    env.process(task(env, "b"))
    env.run()
    assert done["a"] == pytest.approx(0.1)
    assert done["b"] == pytest.approx(0.1)


def test_short_task_not_starved_by_hog(env):
    """Slicing lets a short task finish long before a CPU hog."""
    cpu = CPU(env, "cpu", cores=1, slice_time=0.01)
    done = {}

    def task(env, tag, demand):
        yield from cpu.execute(tag, demand)
        done[tag] = env.now

    env.process(task(env, "hog", 1.0))
    env.process(task(env, "short", 0.02))
    env.run()
    assert done["short"] < 0.1
    assert done["hog"] == pytest.approx(1.02, abs=0.02)


def test_interrupt_mid_execution_charges_partial_usage(env):
    cpu = CPU(env, "cpu", cores=1, slice_time=0.01)
    outcome = []

    def task(env):
        try:
            yield from cpu.execute("victim", 1.0)
        except Interrupt:
            outcome.append(env.now)

    def killer(env, target):
        yield env.timeout(0.05)
        target.interrupt()

    t = env.process(task(env))
    env.process(killer(env, t))
    env.run()
    assert outcome and outcome[0] == pytest.approx(0.05, abs=0.01)
    assert 0.0 < cpu.consumed("victim") <= 0.06
    # The core is free again.
    assert cpu.busy_cores == 0


def test_zero_time_execution_is_noop(env):
    cpu = CPU(env, "cpu", cores=1)
    done = []

    def task(env):
        yield from cpu.execute("a", 0.0)
        done.append(env.now)
        yield env.timeout(0)

    env.process(task(env))
    env.run()
    assert done == [0.0]


def test_negative_time_rejected(env):
    cpu = CPU(env, "cpu", cores=1)

    def task(env):
        yield from cpu.execute("a", -1.0)

    env.process(task(env))
    with pytest.raises(ValueError):
        env.run()


def test_run_queue_length(env):
    cpu = CPU(env, "cpu", cores=1, slice_time=1.0)
    seen = []

    def task(env, tag):
        yield from cpu.execute(tag, 3.0)

    def observer(env):
        yield env.timeout(0.5)
        seen.append(cpu.run_queue_length)

    env.process(task(env, "a"))
    env.process(task(env, "b"))
    env.process(observer(env))
    env.run()
    assert seen == [1]
