"""Tests for the Grant base class timing semantics."""

import pytest

from repro.sim import Environment
from repro.sim.resources import SyncLock, ThreadPool


@pytest.fixture
def env():
    return Environment()


def test_wait_time_grows_while_pending(env):
    lock = SyncLock(env, "l")

    def holder(env):
        g = lock.acquire(owner="h")
        yield g
        yield env.timeout(10.0)
        g.close()

    def observer(env, out):
        yield env.timeout(1.0)
        pending = lock.acquire(owner="w")
        yield env.timeout(3.0)
        out.append(pending.wait_time)
        pending.close()

    out = []
    env.process(holder(env))
    env.process(observer(env, out))
    env.run()
    assert out == [pytest.approx(3.0)]


def test_hold_time_frozen_after_close(env):
    pool = ThreadPool(env, "p", workers=1)
    grants = []

    def proc(env):
        g = pool.submit(owner="a")
        yield g
        yield env.timeout(2.0)
        g.close()
        grants.append(g)
        yield env.timeout(5.0)

    env.process(proc(env))
    env.run()
    # Hold time reflects the held interval, not time since.
    assert grants[0].hold_time == pytest.approx(2.0)


def test_hold_time_zero_if_never_granted(env):
    lock = SyncLock(env, "l")

    def holder(env):
        g = lock.acquire(owner="h")
        yield g
        yield env.timeout(5.0)
        g.close()

    def waiter(env, out):
        yield env.timeout(0.5)
        pending = lock.acquire(owner="w")
        yield env.timeout(1.0)
        pending.close()  # abandon while still queued
        out.append(pending.hold_time)

    out = []
    env.process(holder(env))
    env.process(waiter(env, out))
    env.run()
    assert out == [0.0]


def test_grant_context_manager_closes_on_normal_exit(env):
    lock = SyncLock(env, "l")

    def proc(env):
        with lock.acquire(owner="a") as g:
            yield g
        assert g.closed

    env.process(proc(env))
    env.run()
    assert lock.holders == []


def test_granted_flag(env):
    lock = SyncLock(env, "l")
    g = lock.acquire(owner="a")
    assert g.granted  # uncontended: granted synchronously
    g2 = lock.acquire(owner="b")
    assert not g2.granted
    g.close()
    assert g2.granted
    g2.close()
