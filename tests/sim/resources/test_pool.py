"""Tests for the LRU memory pool."""

import pytest

from repro.sim import Environment
from repro.sim.resources import MemoryPool


@pytest.fixture
def env():
    return Environment()


def test_acquire_from_free_list(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    outcome = pool.acquire("a", 30)
    assert outcome.acquired == 30
    assert outcome.from_free == 30
    assert outcome.evicted == 0
    assert pool.free_pages == 70
    assert pool.resident_pages("a") == 30


def test_acquire_evicts_lru_owner(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    pool.acquire("old", 60)
    pool.acquire("recent", 40)
    pool.touch("recent")
    outcome = pool.acquire("newcomer", 50)
    assert outcome.acquired == 50
    assert outcome.evicted == 50
    assert outcome.victims == {"old": 50}
    assert pool.resident_pages("old") == 10
    assert pool.resident_pages("recent") == 40


def test_eviction_spans_multiple_victims(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    pool.acquire("a", 30)
    pool.acquire("b", 30)
    pool.acquire("c", 40)
    outcome = pool.acquire("d", 70)
    assert outcome.evicted == 70
    assert outcome.victims == {"a": 30, "b": 30, "c": 10}


def test_protected_owners_not_evicted(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    pool.acquire("pinned", 60)
    pool.acquire("victim", 40)
    outcome = pool.acquire("new", 50, protected=("pinned",))
    assert outcome.victims == {"victim": 40}
    # Only 40 could be evicted, so the grant is clamped to free+evicted.
    assert outcome.acquired == 40
    assert pool.resident_pages("pinned") == 60


def test_requester_own_pages_never_evicted(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    pool.acquire("a", 90)
    outcome = pool.acquire("a", 10)
    assert outcome.evicted == 0
    assert pool.resident_pages("a") == 100


def test_oversized_request_clamped_to_capacity(env):
    pool = MemoryPool(env, "bp", capacity_pages=50)
    outcome = pool.acquire("big", 500)
    assert outcome.acquired == 50
    assert pool.resident_pages("big") == 50


def test_release_partial_and_full(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    pool.acquire("a", 50)
    assert pool.release("a", 20) == 20
    assert pool.resident_pages("a") == 30
    assert pool.release("a") == 30
    assert pool.resident_pages("a") == 0
    assert "a" not in pool.owners()


def test_release_unknown_owner_is_noop(env):
    pool = MemoryPool(env, "bp", capacity_pages=10)
    assert pool.release("ghost") == 0


def test_touch_refreshes_lru_position(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    pool.acquire("a", 50)
    pool.acquire("b", 50)
    pool.touch("a")  # now b is the oldest
    outcome = pool.acquire("c", 30)
    assert outcome.victims == {"b": 30}


def test_counters_accumulate(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    pool.acquire("a", 100)
    pool.acquire("b", 40)
    pool.release("b", 10)
    assert pool.total_acquired == 140
    assert pool.total_evicted == 40
    assert pool.total_released == 10


def test_occupancy(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    pool.acquire("a", 25)
    assert pool.occupancy() == 0.25


def test_invalid_construction(env):
    with pytest.raises(ValueError):
        MemoryPool(env, "bp", capacity_pages=0)


def test_negative_acquire_rejected(env):
    pool = MemoryPool(env, "bp", capacity_pages=10)
    with pytest.raises(ValueError):
        pool.acquire("a", -1)


def test_eviction_ratio(env):
    pool = MemoryPool(env, "bp", capacity_pages=100)
    pool.acquire("a", 100)
    outcome = pool.acquire("b", 50)
    assert outcome.eviction_ratio == 1.0


class TestProportionalEviction:
    def test_spreads_across_owners_by_share(self, env):
        pool = MemoryPool(
            env, "bp", capacity_pages=100, eviction="proportional"
        )
        pool.acquire("a", 75)
        pool.acquire("b", 25)
        outcome = pool.acquire("scan", 40)
        assert outcome.evicted == 40
        # Roughly 3:1 split between a and b.
        assert outcome.victims["a"] == pytest.approx(30, abs=3)
        assert outcome.victims["b"] == pytest.approx(10, abs=3)

    def test_touch_does_not_shield_owner(self, env):
        """Unlike per-owner LRU, a hot owner still loses pages."""
        pool = MemoryPool(
            env, "bp", capacity_pages=100, eviction="proportional"
        )
        pool.acquire("hot", 50)
        pool.acquire("cold", 50)
        pool.touch("hot")
        outcome = pool.acquire("scan", 50)
        assert outcome.victims.get("hot", 0) > 0

    def test_protected_respected(self, env):
        pool = MemoryPool(
            env, "bp", capacity_pages=100, eviction="proportional"
        )
        pool.acquire("pinned", 50)
        pool.acquire("victim", 50)
        outcome = pool.acquire("scan", 60, protected=("pinned",))
        assert "pinned" not in outcome.victims
        assert outcome.acquired == 50  # clamped: only 50 evictable

    def test_unknown_strategy_rejected(self, env):
        with pytest.raises(ValueError):
            MemoryPool(env, "bp", capacity_pages=10, eviction="random")
