"""Tests for the bounded worker pool."""

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.resources import QueueFull, ThreadPool


@pytest.fixture
def env():
    return Environment()


def run_job(env, pool, tag, duration, log, klass="default"):
    with pool.submit(owner=tag, klass=klass) as slot:
        yield slot
        log.append((tag, "start", env.now))
        yield env.timeout(duration)
        log.append((tag, "end", env.now))


def test_jobs_run_concurrently_up_to_workers(env):
    pool = ThreadPool(env, "p", workers=2)
    log = []
    for tag in ("a", "b", "c"):
        env.process(run_job(env, pool, tag, 4.0, log))
    env.run()
    starts = {tag: t for tag, what, t in log if what == "start"}
    assert starts["a"] == 0.0
    assert starts["b"] == 0.0
    assert starts["c"] == 4.0


def test_fifo_ordering(env):
    pool = ThreadPool(env, "p", workers=1)
    log = []
    for tag in ("a", "b", "c"):
        env.process(run_job(env, pool, tag, 1.0, log))
    env.run()
    starts = [tag for tag, what, _ in log if what == "start"]
    assert starts == ["a", "b", "c"]


def test_queue_capacity_rejects_when_full(env):
    pool = ThreadPool(env, "p", workers=1, queue_capacity=1)
    rejected = []

    def spam(env, tag):
        try:
            with pool.submit(owner=tag) as slot:
                yield slot
                yield env.timeout(10.0)
        except QueueFull:
            rejected.append(tag)
            yield env.timeout(0)

    for tag in ("a", "b", "c"):
        env.process(spam(env, tag))
    env.run(until=1.0)
    # a runs, b queues, c is rejected.
    assert rejected == ["c"]


def test_cancelled_waiter_leaves_queue(env):
    pool = ThreadPool(env, "p", workers=1)
    log = []

    def blocker(env):
        with pool.submit(owner="blocker") as slot:
            yield slot
            yield env.timeout(10.0)

    def waiter(env):
        try:
            with pool.submit(owner="w") as slot:
                yield slot
                log.append("ran")
        except Interrupt:
            log.append("cancelled")

    def killer(env, target):
        yield env.timeout(1.0)
        target.interrupt()

    env.process(blocker(env))
    w = env.process(waiter(env))
    env.process(killer(env, w))
    env.run()
    assert log == ["cancelled"]
    assert pool.queue_length == 0


def test_interrupting_runner_frees_worker(env):
    pool = ThreadPool(env, "p", workers=1)
    log = []

    def runner(env):
        try:
            with pool.submit(owner="r") as slot:
                yield slot
                yield env.timeout(100.0)
        except Interrupt:
            log.append(("cancelled", env.now))

    def follower(env):
        yield env.timeout(1.0)
        with pool.submit(owner="f") as slot:
            yield slot
            log.append(("follower-start", env.now))

    def killer(env, target):
        yield env.timeout(5.0)
        target.interrupt()

    r = env.process(runner(env))
    env.process(follower(env))
    env.process(killer(env, r))
    env.run()
    assert ("cancelled", 5.0) in log
    assert ("follower-start", 5.0) in log


def test_reservation_keeps_workers_for_class(env):
    pool = ThreadPool(env, "p", workers=2)
    pool.reserve("short", 1)
    log = []

    # Two long jobs of the unreserved class: only one may run.
    env.process(run_job(env, pool, "long1", 10.0, log, klass="long"))
    env.process(run_job(env, pool, "long2", 10.0, log, klass="long"))

    def short_job(env):
        yield env.timeout(1.0)
        yield from run_job(env, pool, "short1", 1.0, log, klass="short")

    env.process(short_job(env))
    env.run()
    starts = {tag: t for tag, what, t in log if what == "start"}
    assert starts["long1"] == 0.0
    assert starts["short1"] == 1.0  # reserved worker was free
    assert starts["long2"] == 10.0  # had to wait for long1


def test_reserve_more_than_workers_rejected(env):
    pool = ThreadPool(env, "p", workers=2)
    with pytest.raises(ValueError):
        pool.reserve("a", 3)
    pool.reserve("a", 1)
    with pytest.raises(ValueError):
        pool.reserve("b", 2)


def test_clear_reservations(env):
    pool = ThreadPool(env, "p", workers=2)
    pool.reserve("a", 2)
    pool.clear_reservations()
    log = []
    env.process(run_job(env, pool, "x", 1.0, log, klass="other"))
    env.process(run_job(env, pool, "y", 1.0, log, klass="other"))
    env.run()
    starts = [t for _, what, t in log if what == "start"]
    assert starts == [0.0, 0.0]


def test_busy_and_wait_accounting(env):
    pool = ThreadPool(env, "p", workers=1)
    log = []
    env.process(run_job(env, pool, "a", 2.0, log))
    env.process(run_job(env, pool, "b", 3.0, log))
    env.run()
    assert pool.total_busy_time == 5.0
    assert pool.total_wait_time == 2.0


def test_introspection_counts(env):
    pool = ThreadPool(env, "p", workers=2)
    log = []
    snapshots = []

    def observer(env):
        yield env.timeout(0.5)
        snapshots.append((pool.active, pool.queue_length, pool.idle_workers))

    for tag in ("a", "b", "c"):
        env.process(run_job(env, pool, tag, 2.0, log))
    env.process(observer(env))
    env.run()
    assert snapshots == [(2, 1, 0)]


def test_invalid_workers_rejected(env):
    with pytest.raises(ValueError):
        ThreadPool(env, "p", workers=0)
