"""Tests for the disk I/O model."""

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.resources import DiskIO


@pytest.fixture
def env():
    return Environment()


def test_io_takes_latency_plus_transfer_time(env):
    disk = DiskIO(env, "d", bandwidth_bytes_per_sec=100.0, op_latency=0.5)
    done = []

    def task(env):
        yield from disk.io("a", 100.0)
        done.append(env.now)

    env.process(task(env))
    env.run()
    assert done == [pytest.approx(1.5)]  # 0.5 latency + 1.0 transfer
    assert disk.transferred("a") == 100.0


def test_queue_depth_limits_concurrency(env):
    disk = DiskIO(env, "d", bandwidth_bytes_per_sec=100.0, op_latency=0.0, queue_depth=1)
    done = {}

    def task(env, tag):
        yield from disk.io(tag, 100.0)
        done[tag] = env.now

    env.process(task(env, "a"))
    env.process(task(env, "b"))
    env.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(2.0)


def test_parallel_within_queue_depth(env):
    disk = DiskIO(env, "d", bandwidth_bytes_per_sec=100.0, op_latency=0.0, queue_depth=2)
    done = {}

    def task(env, tag):
        yield from disk.io(tag, 100.0)
        done[tag] = env.now

    env.process(task(env, "a"))
    env.process(task(env, "b"))
    env.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.0)


def test_big_io_delays_small_io(env):
    """A vacuum-style bulk writer inflates foreground read latency (case 8)."""
    disk = DiskIO(env, "d", bandwidth_bytes_per_sec=1000.0, op_latency=0.0, queue_depth=1)
    done = {}

    def task(env, tag, nbytes, delay=0.0):
        yield env.timeout(delay)
        yield from disk.io(tag, nbytes)
        done[tag] = env.now

    env.process(task(env, "vacuum", 10_000.0))
    env.process(task(env, "read", 10.0, delay=0.1))
    env.run()
    assert done["read"] == pytest.approx(10.01)


def test_interrupt_while_queued_cleans_up(env):
    disk = DiskIO(env, "d", bandwidth_bytes_per_sec=10.0, op_latency=0.0, queue_depth=1)
    log = []

    def task(env, tag, nbytes):
        try:
            yield from disk.io(tag, nbytes)
            log.append((tag, "done"))
        except Interrupt:
            log.append((tag, "cancelled"))

    def killer(env, target):
        yield env.timeout(1.0)
        target.interrupt()

    env.process(task(env, "big", 100.0))
    victim = env.process(task(env, "victim", 10.0))
    env.process(killer(env, victim))
    env.run()
    assert ("victim", "cancelled") in log
    assert disk.queue_length == 0
    assert disk.transferred("victim") == 0.0


def test_negative_bytes_rejected(env):
    disk = DiskIO(env, "d")

    def task(env):
        yield from disk.io("a", -5.0)

    env.process(task(env))
    with pytest.raises(ValueError):
        env.run()


def test_total_bytes_accumulates(env):
    disk = DiskIO(env, "d", bandwidth_bytes_per_sec=1e9, op_latency=0.0)

    def task(env, tag, nbytes):
        yield from disk.io(tag, nbytes)

    env.process(task(env, "a", 100.0))
    env.process(task(env, "b", 200.0))
    env.run()
    assert disk.total_bytes == 300.0
