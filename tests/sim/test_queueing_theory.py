"""Validation of the simulation substrate against queueing theory.

If the kernel and the worker-pool primitive are correct, an M/M/1 and an
M/M/c system built from them must match the analytic formulas for mean
sojourn time and utilization.  These are the strongest cheap checks that
the substrate the whole reproduction stands on is sound.
"""

import math

import pytest

from repro.sim import Environment, Rng
from repro.sim.resources import ThreadPool


def run_mmc(servers, arrival_rate, service_rate, duration=400.0, seed=7):
    """Simulate an M/M/c queue; returns (mean_sojourn, busy_fraction)."""
    env = Environment()
    rng = Rng(seed)
    arrivals = rng.fork("arrivals")
    services = rng.fork("services")
    pool = ThreadPool(env, "mmc", workers=servers)
    sojourns = []

    def customer(env):
        start = env.now
        with pool.submit(owner=object()) as slot:
            yield slot
            yield env.timeout(services.exponential(1.0 / service_rate))
        sojourns.append(env.now - start)

    def source(env):
        while True:
            yield env.timeout(arrivals.exponential(1.0 / arrival_rate))
            env.process(customer(env))

    env.process(source(env))
    env.run(until=duration)
    # Discard warm-up third.
    steady = sojourns[len(sojourns) // 3:]
    mean_sojourn = sum(steady) / len(steady)
    busy_fraction = pool.total_busy_time / (duration * servers)
    return mean_sojourn, busy_fraction


def erlang_c(c, a):
    """Probability of waiting in an M/M/c queue (a = lambda/mu offered load)."""
    summation = sum(a**k / math.factorial(k) for k in range(c))
    top = a**c / (math.factorial(c) * (1 - a / c))
    return top / (summation + top)


class TestMM1:
    def test_mean_sojourn_matches_formula(self):
        # lambda=60, mu=100 -> W = 1/(mu-lambda) = 25 ms.
        mean, _ = run_mmc(1, arrival_rate=60.0, service_rate=100.0)
        assert mean == pytest.approx(1.0 / 40.0, rel=0.15)

    def test_utilization_matches_rho(self):
        _, busy = run_mmc(1, arrival_rate=60.0, service_rate=100.0)
        assert busy == pytest.approx(0.6, rel=0.1)

    def test_low_load_sojourn_is_service_time(self):
        mean, _ = run_mmc(1, arrival_rate=5.0, service_rate=100.0)
        assert mean == pytest.approx(1.0 / 100.0 / (1 - 0.05), rel=0.15)


class TestMMC:
    def test_mm4_mean_sojourn_matches_erlang_c(self):
        # lambda=300, mu=100, c=4 -> a=3, rho=0.75.
        lam, mu, c = 300.0, 100.0, 4
        a = lam / mu
        wait = erlang_c(c, a) / (c * mu - lam)
        expected = wait + 1.0 / mu
        mean, _ = run_mmc(c, arrival_rate=lam, service_rate=mu)
        assert mean == pytest.approx(expected, rel=0.15)

    def test_mm4_utilization(self):
        _, busy = run_mmc(4, arrival_rate=300.0, service_rate=100.0)
        assert busy == pytest.approx(0.75, rel=0.1)

    def test_heavier_load_waits_longer(self):
        light, _ = run_mmc(2, arrival_rate=80.0, service_rate=100.0)
        heavy, _ = run_mmc(2, arrival_rate=170.0, service_rate=100.0)
        assert heavy > light * 1.5
