"""The disabled-hooks fast path must not change simulation results.

Two invariants, each checked across PYTHONHASHSEEDs via subprocesses:

1. Hooks observe, they never steer: the same seeded run with tracing
   enabled (hooked path) and disabled (fast path) must produce an
   identical Summary and completion timeline.
2. Both paths are deterministic across interpreter hash seeds -- any
   reliance on dict/set iteration order or ``id()`` in the kernel's
   scheduling would show up as a byte diff here.
"""

import hashlib
import os
import subprocess
import sys

_SCRIPT = """
import sys
from repro.apps.mysql import MySQL, light_mix
from repro.core import Atropos, AtroposConfig
from repro.obs import Tracer, tracing
from repro.experiments import run_simulation
from repro.sim.metrics import completion_windows
from repro.workloads import OpenLoopSource, Workload


def one_run():
    return run_simulation(
        lambda env, ctl, rng: MySQL(env, ctl, rng),
        lambda app, rng: Workload(
            [OpenLoopSource(rate=200.0, mix=light_mix(rng))]
        ),
        lambda env: Atropos(env, AtroposConfig(slo_latency=0.05)),
        duration=3.0,
        seed=11,
        label="fastpath",
    )


def render(result):
    summary = result.summary
    lines = [repr(summary)]
    windows = completion_windows(
        result.collector.records, window=0.5, end_time=result.duration
    )
    for end, latencies in windows:
        lines.append(
            f"{end!r} n={len(latencies)} sum={sum(latencies)!r}"
        )
    for record in result.collector.records[:200]:
        lines.append(
            f"{record.request_id} {record.op_name} {record.status.value} "
            f"{record.arrival_time!r} {record.finish_time!r} {record.retries}"
        )
    return "\\n".join(lines)


fast = render(one_run())

tracer = Tracer(max_runs=1)
with tracing(tracer):
    hooked_result = one_run()
hooked = render(hooked_result)
assert hooked_result.driver.env.tracer is tracer
assert tracer.runs and len(tracer.events) > 100, (
    "hooked run emitted no trace data; the hooked path was not exercised"
)

assert fast == hooked, "fast path diverged from hooked path"
sys.stdout.write(fast)
"""


def _digest(hash_seed):
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert proc.stdout, proc.stderr
    return hashlib.sha256(proc.stdout.encode()).hexdigest()


def test_fastpath_and_hooked_path_byte_identical_across_hash_seeds():
    digests = {_digest(seed) for seed in ("0", "1", "9973")}
    assert len(digests) == 1
