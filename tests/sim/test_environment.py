"""Tests for the simulation environment and run loop."""

import pytest

from repro.sim import EmptySchedule, Environment


def test_initial_time_defaults_to_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_can_be_set():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.0)
    env.run()
    assert env.now == 3.0


def test_run_until_time_stops_clock_at_until():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_processes_events_at_boundary():
    env = Environment()
    fired = []
    ev = env.timeout(4.0)
    ev.callbacks.append(lambda e: fired.append(env.now))
    env.run(until=4.0)
    assert fired == [4.0]


def test_run_until_past_events_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"
    assert env.now == 2.0


def test_run_until_already_processed_event_returns_value():
    env = Environment()
    ev = env.timeout(1.0, value="v")
    env.run()
    assert env.run(until=ev) == "v"


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    ev = env.event()
    env.timeout(1.0)
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=ev)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_peek_empty_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3.0, "c"))
    env.process(proc(env, 1.0, "a"))
    env.process(proc(env, 2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_unhandled_process_failure_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(bad(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_handled_process_failure_does_not_propagate():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def watcher(env, proc):
        try:
            yield proc
        except ValueError:
            return "caught"

    proc = env.process(bad(env))
    watcher_proc = env.process(watcher(env, proc))
    assert env.run(until=watcher_proc) == "caught"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="not an Event"):
        env.run()
