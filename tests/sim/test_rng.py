"""Tests for deterministic RNG streams."""

import pytest

from repro.sim import Rng


def test_same_seed_same_stream():
    a, b = Rng(7), Rng(7)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    assert [Rng(1).random() for _ in range(5)] != [
        Rng(2).random() for _ in range(5)
    ]


def test_fork_is_deterministic():
    a = Rng(7).fork("arrivals")
    b = Rng(7).fork("arrivals")
    assert a.random() == b.random()


def test_fork_streams_are_independent():
    parent = Rng(7)
    child = parent.fork("x")
    before = child.random()
    # Draining the parent must not change the child's future draws.
    parent2 = Rng(7)
    for _ in range(100):
        parent2.random()
    child2 = parent2.fork("x")
    assert child2.random() == before


def test_exponential_mean_is_roughly_right():
    rng = Rng(3)
    samples = [rng.exponential(2.0) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert 1.9 < mean < 2.1


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        Rng(0).exponential(0.0)


def test_pareto_respects_minimum_and_cap():
    rng = Rng(5)
    samples = [rng.pareto(1.0, alpha=1.2, cap=50.0) for _ in range(5000)]
    assert all(1.0 <= s <= 50.0 for s in samples)
    assert max(samples) == 50.0  # heavy tail hits the cap


def test_chance_extremes():
    rng = Rng(1)
    assert not any(rng.chance(0.0) for _ in range(100))
    assert all(rng.chance(1.0) for _ in range(100))


def test_weighted_choice_respects_weights():
    rng = Rng(9)
    draws = [rng.weighted_choice(["a", "b"], [0.99, 0.01]) for _ in range(1000)]
    assert draws.count("a") > 900


def test_randint_bounds_inclusive():
    rng = Rng(2)
    draws = {rng.randint(1, 3) for _ in range(200)}
    assert draws == {1, 2, 3}


def test_weighted_chooser_bit_identical_to_weighted_choice():
    """The precompiled chooser must replicate weighted_choice exactly:
    same draws AND same stream position (one uniform per draw), so
    swapping it into a hot loop never changes a simulation."""
    items = ["a", "b", "c", "d"]
    weights = [0.5, 0.25, 0.2, 0.05]
    for seed in (0, 7, 12345):
        ref, fast = Rng(seed), Rng(seed)
        choose = fast.weighted_chooser(items, weights)
        assert [ref.weighted_choice(items, weights) for _ in range(5000)] == [
            choose() for _ in range(5000)
        ]
        # Stream position: the next raw draw must agree too.
        assert ref.random() == fast.random()


def test_weighted_chooser_validation():
    rng = Rng(0)
    with pytest.raises(ValueError):
        rng.weighted_chooser(["a", "b"], [1.0])
    with pytest.raises(ValueError):
        rng.weighted_chooser(["a", "b"], [0.0, 0.0])
