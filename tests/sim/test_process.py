"""Tests for processes, joining, and interrupt semantics."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_return_value_is_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 41 + 1

    p = env.process(proc(env))
    env.run()
    assert p.value == 42


def test_join_waits_for_child():
    env = Environment()

    def child(env):
        yield env.timeout(5.0)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    p = env.process(parent(env))
    env.run()
    assert p.value == (5.0, "child-result")


def test_is_alive_reflects_state():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_interrupt_delivers_cause():
    env = Environment()
    seen = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            seen.append((env.now, exc.cause))

    def killer(env, target):
        yield env.timeout(3.0)
        target.interrupt(cause="too-slow")

    target = env.process(victim(env))
    env.process(killer(env, target))
    env.run()
    assert seen == [(3.0, "too-slow")]


def test_interrupt_detaches_from_waited_event():
    """After an interrupt, the original timeout must not resume the process."""
    env = Environment()
    resumes = []

    def victim(env):
        try:
            yield env.timeout(10.0)
            resumes.append("timeout-fired")
        except Interrupt:
            resumes.append("interrupted")
        yield env.timeout(20.0)
        resumes.append("second-wait-done")

    def killer(env, target):
        yield env.timeout(1.0)
        target.interrupt()

    target = env.process(victim(env))
    env.process(killer(env, target))
    env.run()
    assert resumes == ["interrupted", "second-wait-done"]
    assert env.now == 21.0


def test_interrupt_finished_process_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    p = env.process(proc(env))
    env.run()
    with pytest.raises(RuntimeError, match="terminated"):
        p.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()
    errors = []

    def proc(env):
        try:
            env.active_process.interrupt()
        except RuntimeError as exc:
            errors.append(str(exc))
        yield env.timeout(0)

    env.process(proc(env))
    env.run()
    assert errors and "interrupt itself" in errors[0]


def test_uncaught_interrupt_kills_process():
    env = Environment()

    def victim(env):
        yield env.timeout(100.0)

    def killer(env, target):
        yield env.timeout(1.0)
        target.interrupt("die")

    target = env.process(victim(env))
    env.process(killer(env, target))
    env.run()
    assert target.triggered
    assert not target.ok
    assert isinstance(target.value, Interrupt)


def test_finally_runs_on_interrupt():
    """try/finally cleanup is the cancellation-safety mechanism."""
    env = Environment()
    cleanup = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        finally:
            cleanup.append(env.now)

    def killer(env, target):
        yield env.timeout(2.5)
        target.interrupt()

    target = env.process(victim(env))
    env.process(killer(env, target))
    env.run()
    assert cleanup == [2.5]


def test_interrupt_race_with_completion_is_ignored():
    """If the victim finishes at the same instant, the interrupt is a no-op."""
    env = Environment()

    def victim(env):
        yield env.timeout(1.0)
        return "finished"

    def killer(env, target):
        yield env.timeout(1.0)
        if target.is_alive:
            target.interrupt()

    target = env.process(victim(env))
    env.process(killer(env, target))
    env.run()
    assert target.value == "finished"


def test_multiple_interrupts_queue_up():
    env = Environment()
    causes = []

    def victim(env):
        for _ in range(2):
            try:
                yield env.timeout(100.0)
            except Interrupt as exc:
                causes.append(exc.cause)

    def killer(env, target):
        yield env.timeout(1.0)
        target.interrupt("first")
        target.interrupt("second")

    target = env.process(victim(env))
    env.process(killer(env, target))
    env.run()
    assert causes == ["first", "second"]


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_nested_subgenerator_with_yield_from():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return "inner-value"

    def outer(env):
        value = yield from inner(env)
        yield env.timeout(1.0)
        return value + "-seen"

    p = env.process(outer(env))
    env.run()
    assert p.value == "inner-value-seen"
    assert env.now == 2.0


def test_any_of_wakes_on_first():
    env = Environment()

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(10.0, value="slow")
        result = yield env.any_of([fast, slow])
        return list(result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == ["fast"]


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(5.0, value="b")
        result = yield env.all_of([a, b])
        return (env.now, sorted(result.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (5.0, ["a", "b"])
