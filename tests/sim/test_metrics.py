"""Tests for metrics: records, percentiles, windows, summaries."""

import math

import pytest

from repro.sim import (
    MetricsCollector,
    RequestRecord,
    RequestStatus,
    SlidingWindow,
    Summary,
    percentile,
)


def make_record(i, latency, status=RequestStatus.COMPLETED, op="read", finish=None):
    return RequestRecord(
        request_id=i,
        op_name=op,
        client_id="c0",
        arrival_time=0.0,
        finish_time=latency if finish is None else finish,
        status=status,
    )


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 99))

    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_p0_and_p100_are_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_out_of_range_pct_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_matches_numpy(self):
        import numpy as np

        values = [0.5, 1.2, 7.3, 2.2, 9.9, 4.4, 0.1]
        for pct in (1, 25, 50, 75, 90, 99):
            assert percentile(values, pct) == pytest.approx(
                float(np.percentile(values, pct))
            )


class TestCollector:
    def test_throughput_counts_only_completed(self):
        mc = MetricsCollector()
        mc.record(make_record(1, 0.1))
        mc.record(make_record(2, 0.1, status=RequestStatus.DROPPED))
        assert mc.throughput(duration=2.0) == 0.5

    def test_throughput_filters_by_op(self):
        mc = MetricsCollector()
        mc.record(make_record(1, 0.1, op="read"))
        mc.record(make_record(2, 0.1, op="write"))
        assert mc.throughput(2.0, op_name="read") == 0.5

    def test_drop_rate_counts_non_completed(self):
        mc = MetricsCollector()
        mc.record(make_record(1, 0.1))
        mc.record(make_record(2, 0.1, status=RequestStatus.CANCELLED))
        mc.record(make_record(3, 0.1, status=RequestStatus.DROPPED))
        mc.record(make_record(4, 0.1, status=RequestStatus.TIMED_OUT))
        assert mc.drop_rate() == 0.75

    def test_drop_rate_empty_is_zero(self):
        assert MetricsCollector().drop_rate() == 0.0

    def test_latency_percentile(self):
        mc = MetricsCollector()
        for i, lat in enumerate([0.1, 0.2, 0.3, 0.4]):
            mc.record(make_record(i, lat))
        assert mc.latency_percentile(50) == pytest.approx(0.25)

    def test_goodput_applies_slo(self):
        mc = MetricsCollector()
        mc.record(make_record(1, 0.1))
        mc.record(make_record(2, 0.9))
        assert mc.goodput(duration=1.0, slo=0.5) == 1.0

    def test_offered_counter(self):
        mc = MetricsCollector()
        mc.note_offered()
        mc.note_offered(5)
        assert mc.offered == 6

    def test_throughput_series_buckets_by_finish_time(self):
        mc = MetricsCollector()
        mc.record(make_record(1, 0.1, finish=0.5))
        mc.record(make_record(2, 0.1, finish=1.5))
        mc.record(make_record(3, 0.1, finish=1.7))
        series = mc.throughput_series(window=1.0, end_time=2.0)
        assert series == [(1.0, 1.0), (2.0, 2.0)]

    def test_status_counts(self):
        mc = MetricsCollector()
        mc.record(make_record(1, 0.1))
        mc.record(make_record(2, 0.1, status=RequestStatus.CANCELLED))
        counts = mc.status_counts()
        assert counts[RequestStatus.COMPLETED] == 1
        assert counts[RequestStatus.CANCELLED] == 1
        assert counts[RequestStatus.DROPPED] == 0


class TestSlidingWindow:
    def test_counts_within_horizon(self):
        win = SlidingWindow(horizon=10.0)
        win.observe(1.0, 0.1)
        win.observe(5.0, 0.2)
        assert win.count(now=5.0) == 2

    def test_evicts_old_entries(self):
        win = SlidingWindow(horizon=10.0)
        win.observe(1.0, 0.1)
        win.observe(15.0, 0.2)
        assert win.count(now=15.0) == 1

    def test_throughput(self):
        win = SlidingWindow(horizon=2.0)
        win.observe(0.5, 0.1)
        win.observe(1.0, 0.1)
        assert win.throughput(now=1.0) == 1.0

    def test_percentile_over_window(self):
        win = SlidingWindow(horizon=100.0)
        for t, lat in enumerate([0.1, 0.2, 0.3]):
            win.observe(float(t), lat)
        assert win.latency_percentile(now=3.0, pct=100) == 0.3

    def test_empty_window_latency_is_nan(self):
        win = SlidingWindow(horizon=1.0)
        assert math.isnan(win.mean_latency(now=0.0))

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindow(horizon=0.0)


class TestSummary:
    def test_from_collector(self):
        mc = MetricsCollector()
        mc.record(make_record(1, 0.1))
        mc.record(make_record(2, 0.3))
        mc.record(make_record(3, 0.1, status=RequestStatus.DROPPED))
        s = Summary.from_collector(mc, duration=2.0)
        assert s.throughput == 1.0
        assert s.completed == 2
        assert s.dropped == 1
        assert s.drop_rate == pytest.approx(1 / 3)
        assert s.p99_latency == pytest.approx(0.298)
