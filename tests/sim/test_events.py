"""Direct tests for the event layer (Event, Timeout, conditions)."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_initial_state(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed
        with pytest.raises(AttributeError):
            _ = ev.value

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()
        with pytest.raises(RuntimeError):
            ev.fail(ValueError("x"))

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_marks_not_ok(self, env):
        ev = env.event()
        exc = ValueError("boom")
        ev.fail(exc)
        ev.defused = True
        assert not ev.ok
        assert ev.value is exc
        env.run()

    def test_trigger_copies_state(self, env):
        src = env.event()
        dst = env.event()
        src.succeed("payload")
        dst.trigger(src)
        assert dst.value == "payload"

    def test_callbacks_run_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("x")
        env.run()
        assert seen == ["x"]
        assert ev.processed

    def test_repr_states(self, env):
        ev = env.event()
        assert "pending" in repr(ev)
        ev.succeed()
        assert "triggered" in repr(ev)
        env.run()
        assert "processed" in repr(ev)


class TestTimeout:
    def test_timeout_carries_value(self, env):
        results = []

        def proc(env):
            value = yield env.timeout(1.0, value="tick")
            results.append(value)

        env.process(proc(env))
        env.run()
        assert results == ["tick"]

    def test_delay_property(self, env):
        assert env.timeout(2.5).delay == 2.5


class TestConditions:
    def test_all_of_empty_succeeds_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered
        assert cond.value == {}

    def test_any_of_value_maps_processed_events(self, env):
        def proc(env):
            fast = env.timeout(1.0, value="f")
            slow = env.timeout(2.0, value="s")
            result = yield env.any_of([fast, slow])
            return {k.delay: v for k, v in result.items()}

        p = env.process(proc(env))
        env.run()
        assert p.value == {1.0: "f"}

    def test_all_of_failure_propagates(self, env):
        def failer(env):
            yield env.timeout(1.0)
            raise ValueError("child died")

        def waiter(env):
            child = env.process(failer(env))
            ok = env.timeout(5.0)
            try:
                yield env.all_of([child, ok])
            except ValueError:
                return "caught"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "caught"

    def test_condition_rejects_cross_environment_events(self, env):
        other = Environment()
        foreign = other.event()
        with pytest.raises(ValueError):
            env.all_of([foreign])

    def test_late_failure_after_any_of_is_defused(self, env):
        """A loser that fails after the condition fired must not crash."""

        def failer(env):
            yield env.timeout(2.0)
            raise ValueError("late loser")

        def waiter(env):
            fast = env.timeout(0.5, value="ok")
            loser = env.process(failer(env))
            result = yield env.any_of([fast, loser])
            return list(result.values())

        p = env.process(waiter(env))
        env.run()  # must not raise
        assert p.value == ["ok"]


class TestTriggerChaining:
    def test_trigger_copies_success(self, env):
        src = env.event().succeed("payload")
        dst = env.event()
        dst.trigger(src)
        assert dst.triggered and dst.ok
        assert dst.value == "payload"

    def test_trigger_copies_failure(self, env):
        src = env.event()
        src.fail(ValueError("boom"))
        src.defused = True
        dst = env.event()
        dst.trigger(src)
        assert dst.triggered and not dst.ok
        dst.defused = True

    def test_trigger_from_untriggered_source_raises(self, env):
        # Regression: chaining an untriggered event used to propagate the
        # internal PENDING sentinel as the value instead of erroring.
        src = env.event()
        dst = env.event()
        with pytest.raises(RuntimeError, match="has not been triggered"):
            dst.trigger(src)
        # The destination must be left untouched (still usable).
        assert not dst.triggered
        dst.succeed("ok")
        assert dst.value == "ok"
