"""Documentation integrity: the link checker and the repo's own docs."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = load_checker()


class TestSlugify:
    def test_plain_heading(self):
        assert checker.slugify("Fault model") == "fault-model"

    def test_strips_formatting_and_punctuation(self):
        assert checker.slugify("The `repro.faults` layer!") == \
            "the-reprofaults-layer"

    def test_numbers_kept(self):
        assert checker.slugify("Section 6.2: Threats") == "section-62-threats"


class TestChecker:
    def test_broken_file_link_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Title\n\nsee [other](missing.md)\n")
        errors = checker.check([str(doc)])
        assert len(errors) == 1
        assert "missing.md" in errors[0]

    def test_broken_anchor_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Title\n\nsee [below](#no-such-heading)\n")
        errors = checker.check([str(doc)])
        assert len(errors) == 1
        assert "no-such-heading" in errors[0]

    def test_valid_cross_document_anchor(self, tmp_path):
        (tmp_path / "a.md").write_text("# A\n\nsee [b](b.md#some-section)\n")
        (tmp_path / "b.md").write_text("# B\n\n## Some section\n")
        assert checker.check([str(tmp_path)]) == []

    def test_external_links_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[x](https://example.com/404) [y](mailto:a@b.c)\n")
        assert checker.check([str(doc)]) == []

    def test_code_fences_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# T\n\n```\n[not a link](missing.md)\n# not a heading\n```\n"
        )
        assert checker.check([str(doc)]) == []

    def test_reference_style_links_resolved(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# T\n\nsee [the spec][spec] and [other][]\n\n"
            "[spec]: #t\n[other]: missing.md\n"
        )
        errors = checker.check([str(doc)])
        assert len(errors) == 1
        assert "missing.md" in errors[0]

    def test_undefined_reference_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# T\n\nsee [dangling][nowhere]\n")
        errors = checker.check([str(doc)])
        assert len(errors) == 1
        assert "undefined link reference" in errors[0]
        assert "nowhere" in errors[0]

    def test_setext_headings_are_anchors(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "Big Title\n=========\n\nSub part\n--------\n\n"
            "[up](#big-title) [over](#sub-part)\n"
        )
        assert checker.check([str(doc)]) == []

    def test_list_items_not_mistaken_for_setext(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# T\n\n- item one\n---\n\n[x](#item-one)\n")
        errors = checker.check([str(doc)])
        assert len(errors) == 1
        assert "item-one" in errors[0]

    def test_html_anchors_resolve(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            '# T\n\n<a id="pinned"></a>\n\n[jump](#pinned)\n'
        )
        assert checker.check([str(doc)]) == []


class TestRepoDocs:
    def test_repo_docs_have_no_broken_links(self):
        errors = checker.check(checker.DEFAULT_TARGETS)
        assert errors == [], "\n".join(errors)

    def test_resilience_doc_exists_and_linked(self):
        resilience = REPO_ROOT / "docs" / "RESILIENCE.md"
        assert resilience.exists()
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/RESILIENCE.md" in readme

    def test_observability_doc_exists_and_linked(self):
        observability = REPO_ROOT / "docs" / "OBSERVABILITY.md"
        assert observability.exists()
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/OBSERVABILITY.md" in readme

    def test_performance_doc_exists_and_linked(self):
        performance = REPO_ROOT / "docs" / "PERFORMANCE.md"
        assert performance.exists()
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/PERFORMANCE.md" in readme
        architecture = (
            REPO_ROOT / "docs" / "ARCHITECTURE.md"
        ).read_text()
        assert "PERFORMANCE.md" in architecture

    def test_bench_snapshot_exists_and_documented(self):
        for name in ("BENCH_6.json", "BENCH_7.json"):
            assert (REPO_ROOT / name).exists(), name
        performance = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text()
        assert "BENCH_7.json" in performance

    def test_regress_baseline_anchor_checked_in_and_documented(self):
        anchor = REPO_ROOT / "REGRESS_BASELINE.json"
        assert anchor.exists()
        import json

        payload = json.loads(anchor.read_text())
        assert payload["schema"] == 1
        assert len(payload["cases"]) >= 2
        files = checker.collect_markdown(checker.DEFAULT_TARGETS)
        assert checker.check_anchors(files) == []

    def test_missing_anchor_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# T\n\nnothing relevant here\n")
        errors = checker.check_anchors(
            [doc], anchors=["REGRESS_BASELINE.json"]
        )
        assert len(errors) == 1
        assert "not referenced" in errors[0]

    def test_nonexistent_anchor_file_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# T\n\nsee NO_SUCH_ANCHOR.json\n")
        errors = checker.check_anchors(
            [doc], anchors=["NO_SUCH_ANCHOR.json"]
        )
        assert len(errors) == 1
        assert "missing from the repo root" in errors[0]
