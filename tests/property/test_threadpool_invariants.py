"""Property-based tests for the worker pool's scheduling invariants."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim import Environment
from repro.sim.resources import QueueFull, ThreadPool

CLASSES = ["light", "heavy", "static"]


class PoolMachine(RuleBasedStateMachine):
    """Random submit/close sequences with optional class reservations."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.workers = 4
        self.pool = ThreadPool(self.env, "p", workers=self.workers)
        self.grants = []
        self._reserved = False

    @rule(klass=st.sampled_from(CLASSES))
    def submit(self, klass):
        grant = self.pool.submit(owner=object(), klass=klass)
        self.grants.append(grant)

    @rule(data=st.data())
    def close_one(self, data):
        open_grants = [g for g in self.grants if not g.closed]
        if not open_grants:
            return
        data.draw(st.sampled_from(open_grants)).close()

    @rule(workers=st.integers(min_value=0, max_value=2))
    def reserve_light(self, workers):
        self.pool.reserve("light", workers)
        self._reserved = workers > 0

    @invariant()
    def active_never_exceeds_workers(self):
        assert 0 <= self.pool.active <= self.workers

    @invariant()
    def running_and_queued_disjoint(self):
        running = set(map(id, self.pool._running))
        waiting = set(map(id, self.pool._waiters))
        assert not (running & waiting)

    @invariant()
    def no_idle_worker_with_eligible_head(self):
        """Work conservation: with no reservations, a free worker means
        an empty queue."""
        if self._reserved:
            return
        if self.pool.idle_workers > 0:
            assert self.pool.queue_length == 0

    @invariant()
    def accounting_consistent(self):
        open_grants = [g for g in self.grants if not g.closed]
        granted = [g for g in open_grants if g.granted]
        queued = [g for g in open_grants if not g.granted]
        assert len(granted) == self.pool.active
        assert len(queued) == self.pool.queue_length


TestThreadPoolMachine = PoolMachine.TestCase
TestThreadPoolMachine.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None
)
