"""Property-based tests for estimation primitives, ledger, and metrics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ResourceHandle,
    ResourceType,
    clamp_progress,
    future_gain_multiplier,
)
from repro.core.ledger import UsageLedger
from repro.core.progress import MAX_PROGRESS, MIN_PROGRESS
from repro.sim import Rng, percentile

RES = ResourceHandle("r", ResourceType.LOCK)


class TestProgressProperties:
    @given(p=st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=200)
    def test_clamp_always_in_range(self, p):
        assert MIN_PROGRESS <= clamp_progress(p) <= MAX_PROGRESS

    @given(
        p1=st.floats(min_value=0.0, max_value=1.0),
        p2=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200)
    def test_multiplier_monotone_decreasing(self, p1, p2):
        lo, hi = sorted((p1, p2))
        assert future_gain_multiplier(lo) >= future_gain_multiplier(hi)

    @given(p=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200)
    def test_multiplier_finite_and_nonnegative(self, p):
        m = future_gain_multiplier(p)
        assert m >= 0.0
        assert math.isfinite(m)


class TestPercentileProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        pct=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200)
    def test_within_min_max(self, values, pct):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        p1=st.floats(min_value=0.0, max_value=100.0),
        p2=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200)
    def test_monotone_in_pct(self, values, p1, p2):
        lo, hi = sorted((p1, p2))
        assert percentile(values, lo) <= percentile(values, hi)

    @given(
        values=st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        pct=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100)
    def test_matches_numpy(self, values, pct):
        import numpy as np

        ours = percentile(values, pct)
        theirs = float(np.percentile(values, pct))
        assert math.isclose(ours, theirs, rel_tol=1e-9, abs_tol=1e-9)


class TestLedgerProperties:
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(["get", "free", "slow", "roll"]),
                st.integers(min_value=1, max_value=3),  # task key
                st.floats(min_value=0.0, max_value=10.0),  # amount/delay
            ),
            max_size=60,
        )
    )
    @settings(max_examples=150)
    def test_window_never_exceeds_total(self, events):
        ledger = UsageLedger()
        now = 0.0
        for kind, task, value in events:
            now += 0.1
            if kind == "get":
                ledger.record_get(task, RES, value, now)
            elif kind == "free":
                ledger.record_free(task, RES, value, now)
            elif kind == "slow":
                ledger.record_slow_by(task, RES, value)
            else:
                ledger.roll_window()
            for t in (1, 2, 3):
                win = ledger.task_window(t, RES)
                tot = ledger.task_total(t, RES)
                assert win.acquired <= tot.acquired + 1e-9
                assert win.wait_time <= tot.wait_time + 1e-9
                assert win.hold_time <= tot.hold_time + 1e-9
                assert tot.held >= 0.0

    @given(
        gets=st.integers(min_value=0, max_value=10),
        frees=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=100)
    def test_unbalanced_frees_never_negative_hold(self, gets, frees):
        ledger = UsageLedger()
        now = 0.0
        for _ in range(gets):
            now += 1.0
            ledger.record_get(1, RES, 1, now)
        for _ in range(frees):
            now += 1.0
            ledger.record_free(1, RES, 1, now)
        assert ledger.task_total(1, RES).hold_time >= 0.0
        assert ledger.current_hold(1, RES, now) >= 0.0


class TestRngProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50)
    def test_fork_deterministic_per_seed(self, seed):
        a = Rng(seed).fork("x")
        b = Rng(seed).fork("x")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        mean=st.floats(min_value=0.001, max_value=100.0),
    )
    @settings(max_examples=100)
    def test_exponential_positive(self, seed, mean):
        assert Rng(seed).exponential(mean) > 0.0
