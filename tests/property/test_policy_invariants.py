"""Property-based tests for Algorithm 1's dominance and scalarization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BaseController,
    MultiObjectivePolicy,
    ResourceHandle,
    ResourceType,
    dominates,
    non_dominated_set,
)
from repro.core.estimator import (
    OverloadAssessment,
    ResourceReport,
    TaskReport,
)
from repro.sim import Environment

RESOURCES = [
    ResourceHandle("r0", ResourceType.MEMORY),
    ResourceHandle("r1", ResourceType.LOCK),
    ResourceHandle("r2", ResourceType.QUEUE),
]

gain_vectors = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)

contentions = st.tuples(
    st.floats(min_value=0, max_value=1, allow_nan=False),
    st.floats(min_value=0, max_value=1, allow_nan=False),
    st.floats(min_value=0, max_value=1, allow_nan=False),
)


def make_reports(vectors):
    """Build live-task reports for the given gain vectors."""
    env = Environment()
    controller = BaseController(env)
    reports = []
    holders = []

    def body(env, slot):
        slot.append(controller.create_cancel())
        yield env.timeout(1000.0)

    for _ in vectors:
        slot = []
        env.process(body(env, slot))
        holders.append(slot)
    env.run(until=1e-6)
    for vec, slot in zip(vectors, holders):
        gains = {r: g for r, g in zip(RESOURCES, vec) if g > 0}
        reports.append(TaskReport(slot[0], 0.5, gains))
    return reports


@given(vectors=gain_vectors)
@settings(max_examples=100, deadline=None)
def test_non_dominated_set_is_nonempty_and_sound(vectors):
    reports = make_reports(vectors)
    nds = non_dominated_set(reports, RESOURCES)
    assert nds, "non-dominated set must never be empty"
    # No member dominates another member.
    for a in nds:
        for b in nds:
            if a is not b:
                assert not dominates(a, b, RESOURCES)
    # Every excluded report is dominated by some member.
    for report in reports:
        if report not in nds:
            assert any(dominates(m, report, RESOURCES) for m in nds)


@given(vectors=gain_vectors)
@settings(max_examples=100, deadline=None)
def test_dominance_is_irreflexive_and_asymmetric(vectors):
    reports = make_reports(vectors)
    for a in reports:
        assert not dominates(a, a, RESOURCES)
        for b in reports:
            if dominates(a, b, RESOURCES):
                assert not dominates(b, a, RESOURCES)


@given(vectors=gain_vectors, weights=contentions)
@settings(max_examples=100, deadline=None)
def test_selected_task_maximizes_scalarized_gain(vectors, weights):
    reports = make_reports(vectors)
    assessment = OverloadAssessment(
        resources=[
            ResourceReport(r, w, w, w > 0.25)
            for r, w in zip(RESOURCES, weights)
        ],
        tasks=reports,
    )
    selection = MultiObjectivePolicy().select(assessment)
    weight_map = dict(zip(RESOURCES, weights))

    def score(report):
        return sum(weight_map[r] * g for r, g in report.gains.items())

    if selection is None:
        # Legal only when no candidate has a positive scalarized score.
        assert all(score(rep) <= 0 for rep in reports)
        return
    task, reported_score = selection
    best = max(score(rep) for rep in reports)
    assert reported_score >= best - 1e-9
    # The winner is drawn from the non-dominated set.
    nds_tasks = {id(r.task) for r in non_dominated_set(reports, RESOURCES)}
    assert id(task) in nds_tasks
