"""Property-based tests for the reader/writer lock's safety invariants."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim import Environment
from repro.sim.resources import SyncLock


class LockMachine(RuleBasedStateMachine):
    """Random acquire/close sequences (grants driven synchronously)."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.lock = SyncLock(self.env, "l")
        self.grants = []
        self._seq = 0

    @rule(exclusive=st.booleans())
    def acquire(self, exclusive):
        self._seq += 1
        grant = self.lock.acquire(owner=f"t{self._seq}", exclusive=exclusive)
        self.grants.append(grant)

    @rule(data=st.data())
    def close_one(self, data):
        open_grants = [g for g in self.grants if not g.closed]
        if not open_grants:
            return
        grant = data.draw(st.sampled_from(open_grants))
        grant.close()

    @rule(data=st.data())
    def reshape(self, data):
        """Park the op-class of one random queued waiter."""
        waiters = list(self.lock._waiters)
        if not waiters:
            return
        victim = data.draw(st.sampled_from(waiters))
        self.lock.reshape_queue(lambda g: g.owner == victim.owner)

    @rule()
    def reactivate(self):
        self.lock.reactivate()

    @invariant()
    def mutual_exclusion(self):
        holders = self.lock.holders
        if any(g.exclusive for g in holders):
            # A writer excludes everyone else.
            assert len(holders) == 1

    @invariant()
    def no_waiter_is_compatible_with_grant_order(self):
        """Work-conserving up to FIFO: the head waiter is incompatible."""
        if self.lock.queue_length == 0:
            return
        head = self.lock._waiters[0]
        if head.exclusive:
            assert self.lock.holders, "queued writer with free lock"
        else:
            assert self.lock.held_exclusive, "queued reader behind no writer"

    @invariant()
    def granted_implies_not_queued(self):
        queued = set(map(id, self.lock._waiters))
        for g in self.lock.holders:
            assert id(g) not in queued

    @invariant()
    def closed_grants_fully_detached(self):
        for g in self.grants:
            if g.closed:
                assert g not in self.lock.holders
                assert g not in self.lock._waiters
                assert g not in self.lock._passivated

    @invariant()
    def each_open_grant_in_exactly_one_place(self):
        """Conservation: parked grants are never lost or duplicated."""
        places = (
            list(map(id, self.lock._holders))
            + list(map(id, self.lock._waiters))
            + list(map(id, self.lock._passivated))
        )
        assert len(places) == len(set(places))
        open_ids = {id(g) for g in self.grants if not g.closed and not g.granted}
        assert open_ids <= set(places)

    @invariant()
    def idle_lock_holds_no_parked_waiters(self):
        """Progress guarantee: a fully idle lock auto-readmits."""
        if not self.lock._holders and not self.lock._waiters:
            assert not self.lock._passivated

    @invariant()
    def passivation_counters_consistent(self):
        assert (
            self.lock.waiters_reactivated_total
            <= self.lock.waiters_culled_total
        )
        assert self.lock.passivated_count <= self.lock.waiters_culled_total


TestLockMachine = LockMachine.TestCase
TestLockMachine.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None
)


class TestReshapeQueue:
    """Deterministic passivation semantics (Malthusian scheduling)."""

    def _lock(self):
        return SyncLock(Environment(), "l")

    def test_parked_waiters_skip_dispatch_until_reactivated(self):
        lock = self._lock()
        holder = lock.acquire(owner="holder")
        culprit = lock.acquire(owner="culprit")
        victim = lock.acquire(owner="victim")
        assert lock.reshape_queue(lambda g: g.owner == "culprit") == 1
        assert lock.passivated_count == 1
        holder.close()
        # The victim overtakes the parked culprit.
        assert victim.granted and not culprit.granted
        assert lock.reactivate() == 1
        victim.close()
        assert culprit.granted

    def test_active_waiters_keep_fifo_order(self):
        lock = self._lock()
        holder = lock.acquire(owner="holder")
        grants = [lock.acquire(owner=f"w{i}") for i in range(4)]
        lock.reshape_queue(lambda g: g.owner in ("w0", "w2"))
        assert [g.owner for g in lock._waiters] == ["w1", "w3"]
        assert [g.owner for g in lock.passivated] == ["w0", "w2"]
        lock.reactivate()
        # Readmitted grants queue behind the surviving waiters.
        assert [g.owner for g in lock._waiters] == ["w1", "w3", "w0", "w2"]
        holder.close()
        for grant in grants:
            assert grant.granted or grant in lock._waiters

    def test_idle_lock_auto_reactivates(self):
        lock = self._lock()
        holder = lock.acquire(owner="holder")
        culprit = lock.acquire(owner="culprit")
        lock.reshape_queue(lambda g: g.owner == "culprit")
        holder.close()
        # Nothing active remained, so the parked culprit was readmitted
        # and granted without any lever intervention.
        assert culprit.granted
        assert lock.passivated_count == 0
        assert lock.waiters_reactivated_total == 1

    def test_parked_grant_close_abandons_cleanly(self):
        lock = self._lock()
        holder = lock.acquire(owner="holder")
        culprit = lock.acquire(owner="culprit")
        lock.reshape_queue(lambda g: g.owner == "culprit")
        culprit.close()
        assert lock.passivated_count == 0
        holder.close()
        assert not lock._holders and not lock._waiters

    def test_telemetry_counters(self):
        lock = self._lock()
        lock.acquire(owner="holder")
        lock.acquire(owner="culprit")
        lock.acquire(owner="culprit")
        assert lock.reshape_queue(lambda g: g.owner == "culprit") == 2
        snap = lock.telemetry_snapshot()
        assert snap["waiters_parked"] == 2.0
        assert snap["waiters_culled_total"] == 2.0
        assert snap["waiters_reactivated_total"] == 0.0
        assert lock.reactivate() == 2
        assert lock.telemetry_snapshot()["waiters_parked"] == 0.0
