"""Property-based tests for the reader/writer lock's safety invariants."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim import Environment
from repro.sim.resources import SyncLock


class LockMachine(RuleBasedStateMachine):
    """Random acquire/close sequences (grants driven synchronously)."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.lock = SyncLock(self.env, "l")
        self.grants = []
        self._seq = 0

    @rule(exclusive=st.booleans())
    def acquire(self, exclusive):
        self._seq += 1
        grant = self.lock.acquire(owner=f"t{self._seq}", exclusive=exclusive)
        self.grants.append(grant)

    @rule(data=st.data())
    def close_one(self, data):
        open_grants = [g for g in self.grants if not g.closed]
        if not open_grants:
            return
        grant = data.draw(st.sampled_from(open_grants))
        grant.close()

    @invariant()
    def mutual_exclusion(self):
        holders = self.lock.holders
        if any(g.exclusive for g in holders):
            # A writer excludes everyone else.
            assert len(holders) == 1

    @invariant()
    def no_waiter_is_compatible_with_grant_order(self):
        """Work-conserving up to FIFO: the head waiter is incompatible."""
        if self.lock.queue_length == 0:
            return
        head = self.lock._waiters[0]
        if head.exclusive:
            assert self.lock.holders, "queued writer with free lock"
        else:
            assert self.lock.held_exclusive, "queued reader behind no writer"

    @invariant()
    def granted_implies_not_queued(self):
        queued = set(map(id, self.lock._waiters))
        for g in self.lock.holders:
            assert id(g) not in queued

    @invariant()
    def closed_grants_fully_detached(self):
        for g in self.grants:
            if g.closed:
                assert g not in self.lock.holders
                assert g not in self.lock._waiters


TestLockMachine = LockMachine.TestCase
TestLockMachine.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None
)
