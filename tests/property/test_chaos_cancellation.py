"""Chaos cancellation: random interrupts must never leak resources.

The safe-cancellation claim (§2.4/§3.6) is that cancelling a task at any
checkpoint leaves the application consistent: every lock released, every
buffer page freed, every worker slot returned.  These tests bombard live
applications with randomly timed cancellations of random tasks and then
assert the resource-state invariants.
"""

import pytest

from repro.apps.apache import Apache
from repro.apps.base import Operation
from repro.apps.elasticsearch import Elasticsearch
from repro.apps.etcd import Etcd
from repro.apps.mysql import MySQL, light_mix
from repro.apps.postgres import PostgreSQL
from repro.apps.solr import Solr
from repro.core import CancelSignal, NullController
from repro.sim import Environment, MetricsCollector, Rng
from repro.workloads import Driver, MixEntry, OpenLoopSource, ScheduledOp, Workload


class ChaosController(NullController):
    """Interrupts a random live task every `period` seconds."""

    name = "chaos"

    def __init__(self, env, rng, period=0.05):
        super().__init__(env)
        self.rng = rng
        self.period = period
        self.interrupts_sent = 0

    def start(self):
        self.env.process(self._chaos_loop())

    def _chaos_loop(self):
        while True:
            yield self.env.timeout(self.period)
            victims = [
                t
                for t in self.tasks.values()
                if t.alive
                and t.process is not None
                and t.process.is_alive
                and t.process is not self.env.active_process
            ]
            if not victims:
                continue
            victim = self.rng.choice(victims)
            victim.begin_cancel(CancelSignal(reason="chaos"))
            victim.process.interrupt(victim.cancel_signal)
            self.interrupts_sent += 1

    def reexecution_gate(self, task, arrival_time):
        # Chaos victims are simply dropped; we only care about state.
        return "drop"
        yield  # pragma: no cover


def run_chaos(app_cls, workload_builder, duration=6.0, seed=0):
    env = Environment()
    rng = Rng(seed)
    controller = ChaosController(env, rng.fork("chaos"))
    app = app_cls(env, controller, rng)
    controller.start()
    driver = Driver(env, app, controller, MetricsCollector())
    driver.run_workload(workload_builder(app, rng, stop=duration))
    # Arrivals stop at `duration`; drain long enough for every surviving
    # task (and every pending chaos interrupt) to unwind.
    env.run(until=duration + 10.0)
    return app, controller, driver


def heavy_mysql_workload(app, rng, stop):
    mix = light_mix(rng)
    mix.append(
        MixEntry(
            factory=lambda: Operation("scan", {"table": 0, "rows": 4e5}),
            weight=0.01,
        )
    )
    mix.append(
        MixEntry(
            factory=lambda: Operation("slow_query", {"duration": 0.5}),
            weight=0.01,
        )
    )
    return Workload(
        [
            OpenLoopSource(rate=300.0, mix=mix, stop_time=stop),
            ScheduledOp(at=1.0, factory=lambda: Operation("backup", {})),
            ScheduledOp(
                at=2.0,
                factory=lambda: Operation(
                    "select_for_update", {"table": 1, "rows": 3e5}
                ),
            ),
        ]
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_mysql_no_leaks_under_chaos(seed):
    app, controller, driver = run_chaos(
        MySQL, heavy_mysql_workload, seed=seed
    )
    assert controller.interrupts_sent > 20
    # Every table lock fully released.
    for lock in app.table_locks:
        assert lock.holders == [], "leaked table lock holder"
        assert lock.queue_length == 0, "ghost waiter in table lock"
    assert app.undo_latch.holders == []
    # Worker pool fully drained.
    assert app.innodb_queue.active == 0
    assert app.innodb_queue.queue_length == 0
    # Buffer pool: only the communal hot set remains resident.
    assert app.buffer_pool.owners() == ["hot-set"] or set(
        app.buffer_pool.owners()
    ) <= {"hot-set"}
    # No live tasks left behind.
    assert controller.live_tasks() == []
    assert driver.inflight == 0


def test_postgres_no_leaks_under_chaos():
    from repro.cases.postgres_cases import pg_mix
    from repro.core.types import TaskKind

    def workload(app, rng, stop):
        return Workload(
            [
                OpenLoopSource(
                    rate=250.0,
                    mix=pg_mix(rng, select_weight=0.4),
                    stop_time=stop,
                ),
                ScheduledOp(
                    at=1.0,
                    factory=lambda: Operation(
                        "bulk_update", {"table": 0, "rows": 8e5}
                    ),
                ),
                ScheduledOp(
                    at=1.5,
                    factory=lambda: Operation(
                        "vacuum", {"total_bytes": 100e6},
                        kind=TaskKind.BACKGROUND,
                    ),
                ),
            ]
        )

    app, controller, driver = run_chaos(PostgreSQL, workload)
    for lock in app.table_locks:
        assert lock.holders == []
    assert app.wal_lock.holders == []
    assert app.disk.queue.active == 0
    assert controller.live_tasks() == []


def test_elasticsearch_no_leaks_under_chaos():
    def workload(app, rng, stop):
        return Workload(
            [
                OpenLoopSource(
                    rate=250.0,
                    stop_time=stop,
                    mix=[
                        MixEntry(
                            factory=lambda: Operation("search", {}),
                            weight=0.9,
                        ),
                        MixEntry(
                            factory=lambda: Operation("indexing", {}),
                            weight=0.1,
                        ),
                    ],
                ),
                ScheduledOp(
                    at=1.0,
                    factory=lambda: Operation(
                        "nested_aggregation", {"blocks": 1200}
                    ),
                ),
                ScheduledOp(
                    at=2.0, factory=lambda: Operation("large_search", {})
                ),
            ]
        )

    app, controller, driver = run_chaos(Elasticsearch, workload)
    assert app.doc_lock.holders == []
    # Heap back to baseline + nothing from dead tasks.
    assert set(app.heap.owners()) <= {"baseline"}
    assert set(app.query_cache.owners()) <= {"hot-filters"}
    assert controller.live_tasks() == []


def test_solr_and_etcd_no_leaks_under_chaos():
    def solr_workload(app, rng, stop):
        return Workload(
            [
                OpenLoopSource(rate=300.0, stop_time=stop, mix=[
                    MixEntry(factory=lambda: Operation("query", {}), weight=1.0)
                ]),
                ScheduledOp(
                    at=1.0,
                    factory=lambda: Operation("boolean_query", {"duration": 2.0}),
                ),
            ]
        )

    app, controller, _ = run_chaos(Solr, solr_workload)
    assert app.index_lock.holders == []
    assert app.searchers.active == 0

    def etcd_workload(app, rng, stop):
        return Workload(
            [
                OpenLoopSource(rate=250.0, stop_time=stop, mix=[
                    MixEntry(factory=lambda: Operation("get", {}), weight=0.7),
                    MixEntry(factory=lambda: Operation("put", {}), weight=0.3),
                ]),
                ScheduledOp(
                    at=1.0,
                    factory=lambda: Operation("range_read", {"duration": 2.0}),
                ),
            ]
        )

    app, controller, _ = run_chaos(Etcd, etcd_workload)
    assert app.kv_lock.holders == []
    assert app.kv_lock.queue_length == 0
