"""Property tests for the shared metric helpers.

Pins the percentile edge cases, the closed-boundary SlidingWindow
eviction convention, and the ceil-based windowing helper that the
harness timeline, throughput series, and telemetry scraper all share.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RequestRecord, RequestStatus
from repro.sim.metrics import (
    SlidingWindow,
    completion_windows,
    percentile,
    window_count,
)

latencies = st.lists(
    st.floats(
        min_value=0.0, max_value=1e6,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=1,
    max_size=60,
)


class TestPercentileProperties:
    @given(values=latencies, pct=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=200)
    def test_result_bounded_by_extremes(self, values, pct):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)

    @given(values=latencies)
    @settings(max_examples=200)
    def test_monotone_in_pct(self, values):
        points = [percentile(values, pct) for pct in (0, 25, 50, 75, 100)]
        assert points == sorted(points)
        assert points[0] == min(values)
        assert points[-1] == max(values)

    @given(values=latencies, pct=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100)
    def test_order_invariant(self, values, pct):
        assert percentile(values, pct) == percentile(
            list(reversed(values)), pct
        )

    @given(pct=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=50)
    def test_empty_is_nan(self, pct):
        assert math.isnan(percentile([], pct))

    @given(pct=st.one_of(
        st.floats(max_value=-1e-9, allow_nan=False),
        st.floats(min_value=100.0 + 1e-9, allow_nan=False,
                  allow_infinity=False),
    ))
    @settings(max_examples=50)
    def test_out_of_range_pct_raises_even_when_empty(self, pct):
        with pytest.raises(ValueError):
            percentile([], pct)
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], pct)


class TestSlidingWindowProperties:
    def test_entry_exactly_at_horizon_edge_is_kept(self):
        """The window is closed on both ends; detector thresholds were
        calibrated against this, so the boundary is pinned exactly."""
        window = SlidingWindow(horizon=1.0)
        window.observe(0.0, 0.01)
        assert window.count(1.0) == 1          # age == horizon: kept
        assert window.count(1.0 + 1e-9) == 0   # strictly older: evicted

    @given(
        finish_times=st.lists(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=50,
        ),
        horizon=st.floats(min_value=0.1, max_value=10.0,
                          allow_nan=False),
    )
    @settings(max_examples=200)
    def test_count_matches_closed_interval_definition(
        self, finish_times, horizon
    ):
        window = SlidingWindow(horizon=horizon)
        for t in sorted(finish_times):
            window.observe(t, 0.01)
        now = max(finish_times)
        expected = sum(
            1 for t in finish_times if t >= now - horizon
        )
        assert window.count(now) == expected
        assert window.throughput(now) == pytest.approx(
            expected / horizon
        )


def make_records(finish_times):
    return [
        RequestRecord(
            request_id=i,
            op_name="op",
            client_id="c",
            arrival_time=max(0.0, t - 0.01),
            finish_time=t,
            status=RequestStatus.COMPLETED,
        )
        for i, t in enumerate(finish_times)
    ]


class TestWindowingProperties:
    @given(
        end_time=st.floats(min_value=0.0, max_value=1e4,
                           allow_nan=False),
        window=st.floats(min_value=1e-3, max_value=100.0,
                         allow_nan=False),
    )
    @settings(max_examples=200)
    def test_window_count_covers_end_time(self, end_time, window):
        n = window_count(end_time, window)
        assert n >= 1
        assert n * window >= end_time
        # Minimal cover: one fewer window would not reach end_time.
        assert n == 1 or (n - 1) * window < end_time

    def test_window_count_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            window_count(1.0, 0.0)

    @given(
        finish_times=st.lists(
            st.floats(min_value=0.0, max_value=20.0,
                      allow_nan=False, allow_infinity=False),
            max_size=40,
        ),
        window=st.floats(min_value=0.25, max_value=5.0,
                         allow_nan=False),
    )
    @settings(max_examples=200)
    def test_no_completion_is_ever_dropped(self, finish_times, window):
        end_time = 10.0
        records = make_records(finish_times)
        buckets = completion_windows(records, window, end_time)
        assert len(buckets) == window_count(end_time, window)
        total = sum(len(latencies) for _, latencies in buckets)
        # Records finishing past end_time clamp into the last bucket.
        assert total == len(records)

    def test_boundary_lands_in_following_window_except_last(self):
        records = make_records([0.0, 1.0, 2.0])
        buckets = completion_windows(records, 1.0, 2.0)
        assert [len(latencies) for _, latencies in buckets] == [1, 2]
        assert [end for end, _ in buckets] == [1.0, 2.0]
