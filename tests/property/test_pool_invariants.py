"""Property-based tests for the memory pool's accounting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim import Environment
from repro.sim.resources import MemoryPool

OWNERS = ["a", "b", "c", "hot", "scan"]


class PoolMachine(RuleBasedStateMachine):
    """Random acquire/release/touch sequences on both eviction modes."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.capacity = 64
        self.pool = None

    @rule(strategy=st.sampled_from(["lru", "proportional"]))
    def create(self, strategy):
        if self.pool is None:
            self.pool = MemoryPool(
                self.env, "p", capacity_pages=self.capacity, eviction=strategy
            )

    @rule(
        owner=st.sampled_from(OWNERS),
        pages=st.integers(min_value=0, max_value=100),
        protect=st.lists(st.sampled_from(OWNERS), max_size=2),
    )
    def acquire(self, owner, pages, protect):
        if self.pool is None:
            return
        outcome = self.pool.acquire(owner, pages, protected=tuple(protect))
        # The grant never exceeds the request.
        assert outcome.acquired <= min(pages, self.capacity)
        # Free-list pages plus evictions account for the whole grant.
        assert outcome.from_free + outcome.evicted >= outcome.acquired
        # Victims never include the requester or protected owners.
        assert owner not in outcome.victims
        for p in protect:
            assert p not in outcome.victims
        assert sum(outcome.victims.values()) == outcome.evicted

    @rule(
        owner=st.sampled_from(OWNERS),
        pages=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    )
    def release(self, owner, pages):
        if self.pool is None:
            return
        before = self.pool.resident_pages(owner)
        released = self.pool.release(owner, pages)
        assert released <= before
        assert self.pool.resident_pages(owner) == before - released

    @rule(owner=st.sampled_from(OWNERS))
    def touch(self, owner):
        if self.pool is None:
            return
        before = self.pool.resident_pages(owner)
        self.pool.touch(owner)
        assert self.pool.resident_pages(owner) == before

    @invariant()
    def capacity_never_exceeded(self):
        if self.pool is None:
            return
        assert 0 <= self.pool.used_pages <= self.capacity

    @invariant()
    def residents_non_negative(self):
        if self.pool is None:
            return
        for owner in self.pool.owners():
            assert self.pool.resident_pages(owner) > 0

    @invariant()
    def ledger_balances(self):
        """acquired - released - evicted == currently used."""
        if self.pool is None:
            return
        balance = (
            self.pool.total_acquired
            - self.pool.total_released
            - self.pool.total_evicted
        )
        assert balance == self.pool.used_pages


TestPoolMachine = PoolMachine.TestCase
TestPoolMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


@given(
    capacity=st.integers(min_value=1, max_value=200),
    requests=st.lists(
        st.tuples(
            st.sampled_from(OWNERS), st.integers(min_value=0, max_value=300)
        ),
        max_size=30,
    ),
)
@settings(max_examples=80, deadline=None)
def test_occupancy_bounded(capacity, requests):
    env = Environment()
    pool = MemoryPool(env, "p", capacity_pages=capacity)
    for owner, pages in requests:
        pool.acquire(owner, pages)
        assert 0.0 <= pool.occupancy() <= 1.0
