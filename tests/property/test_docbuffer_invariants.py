"""Property-based tests for the page-packed document LRU buffer."""

import math
from collections import OrderedDict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim import Environment
from repro.sim.resources import DocumentBuffer

#: collection -> document size; page 4096 gives dpp 64 and 4.
COLLECTIONS = {"small": 64, "large": 1024}
OWNERS = ("hot-set", "ingest", "reader")


def make_buffer(capacity_pages: int) -> DocumentBuffer:
    buf = DocumentBuffer(
        Environment(), "buf",
        capacity_pages=capacity_pages, page_size_bytes=4096,
    )
    for collection, doc_bytes in COLLECTIONS.items():
        buf.register_collection(collection, doc_bytes)
    return buf


class BufferMachine(RuleBasedStateMachine):
    """Random access/release/degrade sequences vs an OrderedDict model.

    The model is the obvious-but-slow reference: one OrderedDict in LRU
    order (oldest first) mapping ``(collection, doc_id) -> owner``, with
    page occupancy recomputed from scratch as the sum of per-collection
    ceilings.  Every rule replays the operation on both and compares.
    """

    def __init__(self):
        super().__init__()
        self.buf = make_buffer(capacity_pages=4)
        self.model = OrderedDict()

    # -- reference model ------------------------------------------------
    def _model_pages(self) -> int:
        counts = {}
        for collection, _doc_id in self.model:
            counts[collection] = counts.get(collection, 0) + 1
        return sum(
            math.ceil(count / self.buf.docs_per_page(collection))
            for collection, count in counts.items()
        )

    def _model_evict_to_fit(self) -> list:
        evicted = []
        while self._model_pages() > self.buf.capacity_pages:
            key = next(iter(self.model))
            del self.model[key]
            evicted.append(key)
        return evicted

    # -- rules ----------------------------------------------------------
    @rule(
        owner=st.sampled_from(OWNERS),
        collection=st.sampled_from(sorted(COLLECTIONS)),
        doc_ids=st.lists(
            st.integers(min_value=0, max_value=400),
            min_size=1, max_size=40,
        ),
    )
    def access(self, owner, collection, doc_ids):
        outcome = self.buf.access(owner, collection, doc_ids)
        hits = misses = 0
        evicted = []
        for doc_id in doc_ids:
            key = (collection, doc_id)
            if key in self.model:
                hits += 1
                self.model.move_to_end(key)
            else:
                misses += 1
                self.model[key] = owner
                evicted.extend(self._model_evict_to_fit())
        assert outcome.hits == hits
        assert outcome.misses == misses
        assert outcome.evicted_docs == len(evicted)
        # O(1)-per-document eviction: exactly one unlink per evicted doc.
        assert outcome.unlink_ops == outcome.evicted_docs
        assert sum(outcome.victims.values()) == outcome.evicted_docs

    @rule(owner=st.sampled_from(OWNERS))
    def release(self, owner):
        released = self.buf.release_owner(owner)
        mine = [k for k, who in self.model.items() if who == owner]
        for key in mine:
            del self.model[key]
        assert released == len(mine)

    @rule(factor=st.sampled_from([0.25, 0.5, 1.0]))
    def degrade(self, factor):
        self.buf.degrade(factor)
        self._model_evict_to_fit()

    @rule()
    def restore(self):
        self.buf.restore()

    # -- invariants -----------------------------------------------------
    @invariant()
    def eviction_order_matches_reference(self):
        assert self.buf.lru_keys() == list(self.model)

    @invariant()
    def occupancy_is_sum_of_page_ceilings(self):
        assert self.buf.pages_used == self._model_pages()
        assert self.buf.pages_used == sum(
            math.ceil(
                self.buf.resident_docs(c) / self.buf.docs_per_page(c)
            )
            for c in COLLECTIONS
        )

    @invariant()
    def never_over_capacity(self):
        assert 0 <= self.buf.pages_used <= self.buf.capacity_pages

    @invariant()
    def counters_consistent(self):
        assert self.buf.resident_docs() == len(self.model)
        assert (
            self.buf.total_evicted_pages <= self.buf.total_evicted_docs
        )


TestBufferMachine = BufferMachine.TestCase
TestBufferMachine.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None
)


class TestEvictionWork:
    """Deterministic bounds on the per-eviction walk."""

    def test_eviction_work_bounded_by_packing_not_population(self):
        """One fault's eviction work depends on packing density only.

        Filling a 16x larger buffer (16x the resident documents) must
        not change how many unlinks a single faulting access performs:
        the walk is bounded by docs-per-page, never by population.
        """
        work = []
        for capacity in (8, 128):
            buf = make_buffer(capacity_pages=capacity)
            dpp = buf.docs_per_page("small")
            buf.access("ingest", "small", range(capacity * dpp))
            assert buf.free_pages == 0
            outcome = buf.access("reader", "large", [0])
            assert outcome.misses == 1
            assert outcome.unlink_ops == outcome.evicted_docs
            # Freeing one page of small documents = dpp unlinks.
            assert outcome.evicted_docs == dpp
            assert outcome.evicted_pages == 1
            work.append(outcome.unlink_ops)
        assert work[0] == work[1]

    def test_small_documents_make_eviction_slow(self):
        """The packing asymmetry the mongodb-d4 analyzer documents."""
        buf = make_buffer(capacity_pages=8)
        small_dpp = buf.docs_per_page("small")
        large_dpp = buf.docs_per_page("large")
        buf.access("ingest", "small", range(4 * small_dpp))
        buf.access("ingest", "large", range(4 * large_dpp))
        assert buf.free_pages == 0
        # Faulting over small-document pages walks dpp=64 entries...
        evicted_small = buf.access("reader", "large", [9000]).evicted_docs
        assert evicted_small == small_dpp
        # ...while the same fault over large-document pages walks 4.
        buf2 = make_buffer(capacity_pages=8)
        buf2.access("ingest", "large", range(8 * large_dpp))
        evicted_large = buf2.access("reader", "small", [9000]).evicted_docs
        assert evicted_large == large_dpp
        assert evicted_small > evicted_large
