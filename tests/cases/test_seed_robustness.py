"""Seed robustness: the case dynamics hold beyond the default seed.

Representative cases of each resource class, run at two extra seeds.
"""

import pytest

from repro.baselines import controller_factory
from repro.cases import get_case

#: One case per Table 2 resource class.
REPRESENTATIVES = ["c1", "c2", "c5", "c8"]
SEEDS = [1, 2]


@pytest.mark.parametrize("cid", REPRESENTATIVES)
@pytest.mark.parametrize("seed", SEEDS)
def test_mitigation_holds_across_seeds(cid, seed):
    case = get_case(cid)
    baseline = case.run_baseline(seed=seed)
    overload = case.run(seed=seed)
    atropos = case.run(
        controller_factory=controller_factory(
            "atropos",
            case.slo_latency,
            atropos_overrides=case.atropos_overrides,
        ),
        seed=seed,
    )
    assert overload.p99_latency > baseline.p99_latency * 3, (cid, seed)
    assert atropos.throughput > baseline.throughput * 0.9, (cid, seed)
    assert atropos.p99_latency < overload.p99_latency / 2, (cid, seed)
    assert atropos.drop_rate < 0.02, (cid, seed)
