"""End-to-end dynamics of every reproduced case.

For each of the 16 cases: (a) the culprit degrades p99 versus the
non-overloaded baseline, and (b) ATROPOS restores performance -- high
normalized throughput, p99 far below the uncontrolled run, minimal drops
-- by cancelling a culprit operation.

These are the repository's core acceptance tests; they run all 16 cases
three times each and take a couple of minutes.
"""

import pytest

from repro.baselines import controller_factory
from repro.cases import all_case_ids, get_case

#: Cases where ATROPOS's improvement is bounded by transient physics
#: (cache rewarm after cancellation, saturation episodes between
#: detection and reaction, CPU-queue drain time); see EXPERIMENTS.md.
#: The paper itself singles out c12 (and c3) as SLO-miss cases (§5.3).
LOOSE_CASES = {"c9", "c10", "c12"}


@pytest.mark.parametrize("cid", all_case_ids())
def test_culprit_degrades_p99(cid):
    case = get_case(cid)
    baseline = case.run_baseline()
    overload = case.run()
    assert overload.p99_latency > baseline.p99_latency * 3, (
        f"{cid}: overload did not degrade p99 "
        f"({overload.p99_latency} vs {baseline.p99_latency})"
    )


@pytest.mark.parametrize("cid", all_case_ids())
def test_atropos_mitigates(cid):
    case = get_case(cid)
    baseline = case.run_baseline()
    overload = case.run()
    atropos = case.run(
        controller_factory=controller_factory(
            "atropos",
            case.slo_latency,
            atropos_overrides=case.atropos_overrides,
        )
    )
    # Throughput restored to >= 90% of baseline (paper: 96% average).
    assert atropos.throughput > baseline.throughput * 0.9, cid
    # Tail latency far below the uncontrolled run.
    improvement = overload.p99_latency / atropos.p99_latency
    floor = 2.0 if cid in LOOSE_CASES else 4.0
    assert improvement > floor, (
        f"{cid}: p99 improvement only {improvement:.1f}x"
    )
    # Minimal request loss (paper: < 0.01%; ours < 2% per case).
    assert atropos.drop_rate < 0.02, cid
    # At least one cancellation was issued...
    assert atropos.controller.cancels_issued >= 1, cid
    # ...and a culprit operation is among the cancelled tasks.
    cancelled_ops = {e.op_name for e in atropos.controller.cancellation.log}
    assert cancelled_ops & case.culprit_ops, (
        f"{cid}: cancelled {cancelled_ops}, expected one of "
        f"{case.culprit_ops}"
    )
