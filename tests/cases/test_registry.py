"""Tests for the case registry and Table 2 metadata."""

import pytest

from repro.cases import CaseSpec, all_case_ids, all_cases, get_case

#: Table 2's resource-type column, per case.
EXPECTED_TYPES = {
    "c1": "Synchronization",
    "c2": "Thread pool",
    "c3": "Synchronization",
    "c4": "Synchronization",
    "c5": "Memory",
    "c6": "Synchronization",
    "c7": "Synchronization",
    "c8": "System",
    "c9": "Thread pool",
    "c10": "Memory",
    "c11": "Memory",
    "c12": "System",
    "c13": "Synchronization",
    "c14": "Synchronization",
    "c15": "Thread pool",
    "c16": "Synchronization",
    # Extension cases (not in Table 2).
    "c17": "Synchronization",
    "c18": "Memory",
}

EXPECTED_APPS = {
    "c1": "mysql", "c2": "mysql", "c3": "mysql", "c4": "mysql",
    "c5": "mysql", "c6": "postgres", "c7": "postgres", "c8": "postgres",
    "c9": "apache", "c10": "elasticsearch", "c11": "elasticsearch",
    "c12": "elasticsearch", "c13": "elasticsearch", "c14": "solr",
    "c15": "solr", "c16": "etcd", "c17": "mongodb", "c18": "mongodb",
}


def test_all_cases_registered():
    assert all_case_ids() == [f"c{i}" for i in range(1, 19)]


def test_paper_case_ids_pin_table2():
    from repro.cases import paper_case_ids

    assert paper_case_ids() == [f"c{i}" for i in range(1, 17)]
    assert all(not get_case(cid).extension for cid in paper_case_ids())
    assert get_case("c17").extension and get_case("c18").extension


def test_resource_types_match_table2():
    for cid, expected in EXPECTED_TYPES.items():
        assert get_case(cid).resource_type == expected, cid


def test_apps_match_table2():
    for cid, expected in EXPECTED_APPS.items():
        assert get_case(cid).app_name == expected, cid


def test_table2_category_counts():
    """Nine sync, three thread-pool, four memory, two system cases
    (Table 2's 8/3/3/2 plus the two mongodb extension cases)."""
    from collections import Counter

    counts = Counter(c.resource_type for c in all_cases())
    assert counts["Synchronization"] == 9
    assert counts["Thread pool"] == 3
    assert counts["Memory"] == 4
    assert counts["System"] == 2


def test_cases_have_trigger_descriptions():
    for case in all_cases():
        assert case.trigger
        assert case.culprit_ops


def test_get_unknown_case_raises():
    with pytest.raises(KeyError, match="unknown case"):
        get_case("c99")


def test_case_specs_are_fresh_instances():
    assert get_case("c1") is not get_case("c1")


def test_duplicate_registration_rejected():
    from repro.cases.base import register_case

    with pytest.raises(ValueError):
        @register_case("c1")
        def dup():  # pragma: no cover
            raise AssertionError
