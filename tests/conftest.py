"""Shared test configuration.

Tests that exercise experiment runners go through the campaign layer,
which by default caches results under ``.repro-cache`` in the current
directory.  Point the cache at a per-session temporary directory so test
runs never pollute the working tree (and never *reuse* a developer's
cache, which would mask regressions in the simulation itself).
"""

import pytest

from repro.campaign.store import CACHE_DIR_ENV


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv(
        CACHE_DIR_ENV, str(tmp_path_factory.getbasetemp() / "repro-cache")
    )
