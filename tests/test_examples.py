"""Smoke tests: every example script runs to completion.

The examples are a deliverable; these tests keep them working as the
library evolves.
"""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_examples_directory_has_at_least_three():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_cleanly(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} produced no output"


def test_quickstart_shows_cancellation():
    result = run_example("quickstart.py")
    assert "cancelled 'dump'" in result.stdout
    assert "p99 improvement" in result.stdout


def test_compare_systems_accepts_case_argument():
    result = run_example("compare_systems.py", "c16")
    assert result.returncode == 0
    assert "atropos" in result.stdout


def test_compare_systems_rejects_unknown_case():
    result = run_example("compare_systems.py", "c99")
    assert result.returncode != 0
