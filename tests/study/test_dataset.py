"""Tests that the survey dataset regenerates Table 1 exactly."""

import pytest

from repro.study import (
    SurveyedApp,
    TABLE1_TARGETS,
    build_dataset,
    table1,
    table1_totals,
)


def test_dataset_has_151_apps():
    assert len(build_dataset()) == 151


def test_table1_rows_match_paper():
    rows = {r.language: r for r in table1()}
    for language, (total, supporting, initiator) in TABLE1_TARGETS.items():
        row = rows[language]
        assert row.applications == total
        assert row.supporting_cancel == supporting
        assert row.with_initiator == initiator


def test_table1_totals_match_paper():
    totals = table1_totals()
    assert totals.applications == 151
    assert totals.supporting_cancel == 115
    assert totals.with_initiator == 109


def test_paper_percentages():
    totals = table1_totals()
    # 76% of applications support cancellation...
    assert round(100 * totals.supporting_cancel / totals.applications) == 76
    # ...and 95% of those expose a cancellation initiator.
    assert round(100 * totals.with_initiator / totals.supporting_cancel) == 95


def test_initiator_implies_support_everywhere():
    for app in build_dataset():
        if app.has_initiator:
            assert app.supports_cancel


def test_invalid_entry_rejected():
    with pytest.raises(ValueError):
        SurveyedApp("bad", "Go", "x", supports_cancel=False, has_initiator=True)


def test_unique_names():
    names = [a.name for a in build_dataset()]
    assert len(names) == len(set(names))


def test_known_apps_present():
    names = {a.name for a in build_dataset()}
    for expected in ("mysql", "postgresql", "elasticsearch", "solr", "etcd"):
        assert expected in names
