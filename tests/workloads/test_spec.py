"""Tests for workload sources (arrival processes)."""

import pytest

from repro.apps.base import Application, Operation
from repro.core import NullController
from repro.experiments import run_simulation
from repro.sim import Environment, Rng
from repro.workloads import (
    Driver,
    MixEntry,
    OpenLoopSource,
    PeriodicOp,
    ScheduledOp,
    Workload,
)


class EchoApp(Application):
    """Records every executed op name with its start time."""

    name = "echo"

    def __init__(self, env, controller, rng, service=0.001):
        super().__init__(env, controller, rng)
        self.calls = []
        self.service = service
        self.register_handler("a", self._handler("a"))
        self.register_handler("b", self._handler("b"))

    def _handler(self, name):
        def handle(task, **params):
            self.calls.append((name, self.env.now, params))
            yield self.env.timeout(self.service)

        return handle


def echo_factory(env, controller, rng):
    return EchoApp(env, controller, rng)


def run(workload_builder, duration=5.0, seed=0):
    return run_simulation(
        echo_factory, workload_builder, duration=duration, seed=seed
    )


def op_factory(name, **params):
    return lambda: Operation(name, dict(params))


class TestOpenLoopSource:
    def test_rate_approximates_arrivals(self):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(
                        rate=200.0,
                        mix=[MixEntry(factory=op_factory("a"), weight=1.0)],
                    )
                ]
            )

        result = run(build, duration=10.0)
        # Poisson(2000): within 4 sigma.
        assert 1800 < result.collector.offered < 2200

    def test_mix_weights_respected(self):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(
                        rate=300.0,
                        mix=[
                            MixEntry(factory=op_factory("a"), weight=0.9),
                            MixEntry(factory=op_factory("b"), weight=0.1),
                        ],
                    )
                ]
            )

        result = run(build, duration=10.0)
        names = [c[0] for c in result.app.calls]
        ratio = names.count("a") / len(names)
        assert 0.85 < ratio < 0.95

    def test_start_and_stop_times(self):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(
                        rate=200.0,
                        mix=[MixEntry(factory=op_factory("a"), weight=1.0)],
                        start_time=1.0,
                        stop_time=2.0,
                    )
                ]
            )

        result = run(build, duration=5.0)
        times = [t for _, t, _ in result.app.calls]
        assert min(times) >= 1.0
        assert max(times) <= 2.01

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoopSource(rate=0.0, mix=[MixEntry(op_factory("a"), 1.0)])
        with pytest.raises(ValueError):
            OpenLoopSource(rate=1.0, mix=[])
        with pytest.raises(ValueError):
            MixEntry(op_factory("a"), weight=0.0)


class TestScheduledOp:
    def test_fires_once_at_time(self):
        def build(app, rng):
            return Workload(
                [ScheduledOp(at=2.5, factory=op_factory("b", tag=1))]
            )

        result = run(build, duration=5.0)
        assert len(result.app.calls) == 1
        name, t, params = result.app.calls[0]
        assert name == "b"
        assert t == pytest.approx(2.5)
        assert params == {"tag": 1}


class TestPeriodicOp:
    def test_fires_on_period(self):
        def build(app, rng):
            return Workload(
                [PeriodicOp(period=1.0, factory=op_factory("a"))]
            )

        result = run(build, duration=4.5)
        times = [t for _, t, _ in result.app.calls]
        assert times == pytest.approx([0.0, 1.0, 2.0, 3.0, 4.0])

    def test_stop_time(self):
        def build(app, rng):
            return Workload(
                [
                    PeriodicOp(
                        period=1.0, factory=op_factory("a"), stop_time=2.5
                    )
                ]
            )

        result = run(build, duration=6.0)
        assert len(result.app.calls) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicOp(period=0.0, factory=op_factory("a"))


class TestDeterminism:
    def test_same_seed_same_arrivals(self):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(
                        rate=100.0,
                        mix=[MixEntry(factory=op_factory("a"), weight=1.0)],
                    )
                ]
            )

        r1 = run(build, seed=42)
        r2 = run(build, seed=42)
        assert [t for _, t, _ in r1.app.calls] == [
            t for _, t, _ in r2.app.calls
        ]

    def test_different_clients_independent_streams(self):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(
                        rate=100.0,
                        mix=[MixEntry(factory=op_factory("a"), weight=1.0)],
                        client_id="x",
                    ),
                    OpenLoopSource(
                        rate=100.0,
                        mix=[MixEntry(factory=op_factory("b"), weight=1.0)],
                        client_id="y",
                    ),
                ]
            )

        result = run(build, duration=5.0)
        a_times = [t for n, t, _ in result.app.calls if n == "a"]
        b_times = [t for n, t, _ in result.app.calls if n == "b"]
        assert a_times != b_times


class TestClosedLoopSource:
    def test_population_bounds_concurrency(self):
        """A closed loop never has more inflight than clients."""
        from repro.workloads import ClosedLoopSource

        max_seen = {"inflight": 0}

        def build(app, rng):
            return Workload(
                [
                    ClosedLoopSource(
                        clients=4,
                        mix=[MixEntry(factory=op_factory("a"), weight=1.0)],
                    )
                ]
            )

        result = run(build, duration=2.0)
        # 4 clients looping over a 1ms op for 2s -> ~8000 completions max,
        # bounded well below an open loop at the same "rate".
        completed = result.summary.completed
        assert 1000 < completed <= 8001

    def test_think_time_slows_loop(self):
        from repro.workloads import ClosedLoopSource

        def build(think):
            def inner(app, rng):
                return Workload(
                    [
                        ClosedLoopSource(
                            clients=2,
                            mix=[MixEntry(factory=op_factory("a"), weight=1.0)],
                            think_time=think,
                        )
                    ]
                )

            return inner

        eager = run(build(0.0), duration=2.0)
        lazy = run(build(0.1), duration=2.0)
        assert lazy.summary.completed < eager.summary.completed / 5

    def test_clients_have_distinct_ids(self):
        from repro.workloads import ClosedLoopSource

        def build(app, rng):
            return Workload(
                [
                    ClosedLoopSource(
                        clients=3,
                        mix=[MixEntry(factory=op_factory("a"), weight=1.0)],
                    )
                ]
            )

        result = run(build, duration=0.5)
        clients = {r.client_id for r in result.collector.records}
        assert clients == {"closed-0", "closed-1", "closed-2"}

    def test_stop_time_ends_loops(self):
        from repro.workloads import ClosedLoopSource

        def build(app, rng):
            return Workload(
                [
                    ClosedLoopSource(
                        clients=2,
                        mix=[MixEntry(factory=op_factory("a"), weight=1.0)],
                        stop_time=1.0,
                    )
                ]
            )

        result = run(build, duration=3.0)
        finishes = [r.finish_time for r in result.collector.records]
        assert max(finishes) <= 1.1

    def test_validation(self):
        from repro.workloads import ClosedLoopSource

        with pytest.raises(ValueError):
            ClosedLoopSource(clients=0, mix=[MixEntry(op_factory("a"), 1.0)])
        with pytest.raises(ValueError):
            ClosedLoopSource(
                clients=1,
                mix=[MixEntry(op_factory("a"), 1.0)],
                think_time=-1.0,
            )
        with pytest.raises(ValueError):
            ClosedLoopSource(clients=1, mix=[])
