"""DagSpec validation, topology helpers, and arrival determinism."""

import pytest

from repro.workloads.dag import (
    DagSpec,
    EdgeSpec,
    RequestClass,
    ServiceSpec,
    build_arrivals,
    dag_storm,
)


def tiny_spec(**overrides):
    base = dict(
        services=[ServiceSpec("a", "mysql"), ServiceSpec("b", "postgres")],
        edges=[EdgeSpec("a", "b")],
        entry="a",
        classes=[
            RequestClass("browse", ops={"a": "point", "b": "point"},
                         rate=50.0),
        ],
        duration=8.0,
        warmup=2.0,
    )
    base.update(overrides)
    return DagSpec(**base)


class TestValidation:
    """Invalid specs fail loudly at construction (validate() raises)."""

    def test_standard_scenario_is_valid(self):
        dag_storm()  # does not raise
        tiny_spec()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ServiceSpec("a", "oracle")

    def test_duplicate_service_rejected(self):
        with pytest.raises(ValueError, match="duplicate service"):
            tiny_spec(
                services=[ServiceSpec("a"), ServiceSpec("a")],
                edges=[],
                classes=[RequestClass("x", ops={"a": "point"}, rate=1.0)],
            )

    def test_unknown_entry_rejected(self):
        with pytest.raises(ValueError, match="entry"):
            tiny_spec(entry="nope")

    def test_edge_to_unknown_service_rejected(self):
        with pytest.raises(ValueError, match="unknown service"):
            tiny_spec(edges=[EdgeSpec("a", "ghost"), EdgeSpec("a", "b")])

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError, match="self-edge"):
            tiny_spec(edges=[EdgeSpec("a", "a"), EdgeSpec("a", "b")])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            tiny_spec(edges=[EdgeSpec("a", "b"), EdgeSpec("b", "a")])

    def test_unreachable_service_rejected(self):
        with pytest.raises(ValueError, match="unreachable"):
            tiny_spec(edges=[])

    def test_nonpositive_fanout_rejected(self):
        with pytest.raises(ValueError, match="fanout"):
            tiny_spec(edges=[EdgeSpec("a", "b", fanout=0)])

    def test_class_needs_rate_xor_period(self):
        ops = {"a": "point", "b": "point"}
        with pytest.raises(ValueError, match="rate/period"):
            tiny_spec(classes=[
                RequestClass("x", ops=ops, rate=1.0, period=1.0),
            ])
        with pytest.raises(ValueError, match="rate/period"):
            tiny_spec(classes=[RequestClass("x", ops=ops)])

    def test_ops_must_cover_every_service(self):
        with pytest.raises(ValueError, match="cover every service"):
            tiny_spec(classes=[
                RequestClass("x", ops={"a": "point"}, rate=1.0),
            ])

    def test_scan_requires_rows(self):
        with pytest.raises(ValueError, match="rows"):
            tiny_spec(classes=[
                RequestClass("x", ops={"a": "point", "b": "scan"},
                             rate=1.0),
            ])

    def test_unknown_culprit_class_rejected(self):
        with pytest.raises(ValueError, match="culprit"):
            tiny_spec(expected_culprits=("ghost",))

    def test_warmup_must_fit_duration(self):
        with pytest.raises(ValueError, match="warmup"):
            tiny_spec(warmup=9.0)


class TestTopology:
    def test_topo_order_starts_at_entry(self):
        spec = dag_storm(n_leaves=3)
        order = spec.topo_order()
        assert order[0] == "gateway"
        assert set(order) == {s.name for s in spec.services}

    def test_parents_and_children_are_edge_indices(self):
        spec = dag_storm(n_leaves=2)
        assert spec.parents_of("gateway") == []
        assert spec.children_of("gateway") == [0, 1]
        assert spec.parents_of("leaf-1") == [1]


class TestSerialization:
    def test_round_trip(self):
        spec = dag_storm(n_leaves=3, seed=7)
        again = DagSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()

    def test_with_overrides(self):
        spec = dag_storm().with_overrides(duration=99.0)
        assert spec.duration == 99.0
        assert dag_storm().duration != 99.0


class TestArrivals:
    def test_deterministic_per_seed(self):
        a = build_arrivals(dag_storm(seed=3))
        b = build_arrivals(dag_storm(seed=3))
        c = build_arrivals(dag_storm(seed=4))
        assert a == b
        assert a != c

    def test_sorted_and_within_duration(self):
        arrivals = build_arrivals(dag_storm(seed=0, duration=10.0))
        times = [t for t, _, _, _ in arrivals]
        assert times == sorted(times)
        assert all(0.0 <= t < 10.0 for t in times)

    def test_periodic_class_lands_on_schedule(self):
        spec = dag_storm(seed=0, duration=16.0)
        storms = [
            t for t, _rid, name, _client in build_arrivals(spec)
            if name == "analytics"
        ]
        assert storms == pytest.approx([6.0, 10.0, 14.0])
