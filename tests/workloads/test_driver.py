"""Tests for the request-lifecycle driver: all unwind paths."""

import pytest

from repro.apps.base import Application, Operation
from repro.core import BaseController, CancelSignal, NullController
from repro.core.types import DropRequest, DropSignal
from repro.sim import Environment, MetricsCollector, RequestStatus, Rng
from repro.workloads import Driver


class ScriptedApp(Application):
    """App whose single op runs a configurable script."""

    name = "scripted"

    def __init__(self, env, controller, rng, script):
        super().__init__(env, controller, rng)
        self.script = script
        self.executions = 0
        self.register_handler("op", self.handle)

    def handle(self, task, **params):
        self.executions += 1
        yield from self.script(self, task, self.executions)



def interrupt_soon(app, task, cause, delay=0.05):
    """Deliver an interrupt from a separate process (self-interrupt is
    forbidden by the kernel, as in the real system: cancel decisions come
    from the controller's monitor, not the victim)."""
    proc = task.process

    def killer(env):
        yield env.timeout(delay)
        if proc.is_alive:
            proc.interrupt(cause)

    app.env.process(killer(app.env))


def setup(script, controller_cls=NullController):
    env = Environment()
    controller = controller_cls(env)
    app = ScriptedApp(env, controller, Rng(0), script)
    collector = MetricsCollector()
    driver = Driver(env, app, controller, collector)
    return env, controller, app, collector, driver


def test_completion_recorded():
    def script(app, task, n):
        yield app.env.timeout(0.5)

    env, controller, app, collector, driver = setup(script)
    driver.submit(Operation("op"))
    env.run()
    [record] = collector.records
    assert record.status is RequestStatus.COMPLETED
    assert record.latency == pytest.approx(0.5)
    assert record.retries == 0


def test_drop_request_recorded_as_dropped():
    def script(app, task, n):
        yield app.env.timeout(0.1)
        raise DropRequest("test")

    env, controller, app, collector, driver = setup(script)
    driver.submit(Operation("op"))
    env.run()
    [record] = collector.records
    assert record.status is RequestStatus.DROPPED


def test_admission_rejection_recorded_as_dropped():
    class RejectingController(NullController):
        def admit(self, op_name, client_id):
            return False

    def script(app, task, n):  # pragma: no cover - never runs
        yield app.env.timeout(0.1)

    env, controller, app, collector, driver = setup(
        script, RejectingController
    )
    driver.submit(Operation("op"))
    env.run()
    [record] = collector.records
    assert record.status is RequestStatus.DROPPED
    assert app.executions == 0


def test_cancel_signal_triggers_reexecution():
    """First execution cancelled; gate retries; second completes."""

    def script(app, task, n):
        if n == 1:
            # Simulate an in-flight cancellation at the next checkpoint.
            interrupt_soon(app, task, CancelSignal(reason="test"))
        yield app.env.timeout(0.2)

    env, controller, app, collector, driver = setup(script)
    driver.submit(Operation("op"))
    env.run()
    [record] = collector.records
    assert record.status is RequestStatus.COMPLETED
    assert record.retries == 1
    assert app.executions == 2


def test_reexecuted_task_is_non_cancellable():
    seen = []

    def script(app, task, n):
        seen.append(task.cancellable)
        if n == 1:
            interrupt_soon(app, task, CancelSignal())
        yield app.env.timeout(0.2)

    env, controller, app, collector, driver = setup(script)
    driver.submit(Operation("op", cancellable=True))
    env.run()
    assert seen == [True, False]


def test_gate_drop_records_cancelled():
    class DroppingGateController(NullController):
        def reexecution_gate(self, task, arrival_time):
            return "drop"
            yield  # pragma: no cover

    def script(app, task, n):
        interrupt_soon(app, task, CancelSignal())
        yield app.env.timeout(0.2)

    env, controller, app, collector, driver = setup(
        script, DroppingGateController
    )
    driver.submit(Operation("op"))
    env.run()
    [record] = collector.records
    assert record.status is RequestStatus.CANCELLED
    assert app.executions == 1


def test_drop_signal_is_terminal():
    """Protego-style victim drop: no retry, recorded DROPPED."""

    def script(app, task, n):
        interrupt_soon(app, task, DropSignal(reason="victim"))
        yield app.env.timeout(0.2)

    env, controller, app, collector, driver = setup(script)
    driver.submit(Operation("op"))
    env.run()
    [record] = collector.records
    assert record.status is RequestStatus.DROPPED
    assert app.executions == 1


def test_foreign_interrupt_propagates():
    """Interrupts that are neither cancel nor drop signals are bugs."""

    def script(app, task, n):
        interrupt_soon(app, task, "mystery")
        yield app.env.timeout(0.2)

    env, controller, app, collector, driver = setup(script)
    driver.submit(Operation("op"))
    with pytest.raises(Exception):
        env.run()


def test_completion_feeds_controller():
    observed = []

    class ObservingController(NullController):
        def observe_completion(self, record):
            observed.append(record)

    def script(app, task, n):
        yield app.env.timeout(0.1)

    env, controller, app, collector, driver = setup(
        script, ObservingController
    )
    driver.submit(Operation("op"))
    env.run()
    assert len(observed) == 1


def test_task_freed_after_every_outcome():
    def script(app, task, n):
        yield app.env.timeout(0.1)

    env, controller, app, collector, driver = setup(script)
    for _ in range(3):
        driver.submit(Operation("op"))
    env.run()
    assert controller.live_tasks() == []
    assert driver.inflight == 0


def test_offered_counts_all_submissions():
    class RejectingController(NullController):
        def admit(self, op_name, client_id):
            return False

    def script(app, task, n):  # pragma: no cover
        yield app.env.timeout(0.1)

    env, controller, app, collector, driver = setup(
        script, RejectingController
    )
    for _ in range(5):
        driver.submit(Operation("op"))
    env.run()
    assert collector.offered == 5
