"""Tests for connection-scoped cancellable tasks (§3.1 / Figure 7)."""

import pytest

from repro.apps.base import Operation
from repro.apps.mysql import MySQL, light_mix
from repro.core import Atropos, AtroposConfig
from repro.experiments import run_simulation
from repro.sim import RequestStatus
from repro.workloads import (
    ConnectionSource,
    MixEntry,
    OpenLoopSource,
    Workload,
)


def mysql_factory(env, controller, rng):
    return MySQL(env, controller, rng)


def op_entry(name, params=None, weight=1.0):
    return MixEntry(
        factory=lambda: Operation(name, dict(params or {})), weight=weight
    )


class TestConnectionLifecycle:
    def test_ops_run_under_one_task_key(self):
        seen_keys = set()

        def workload(app, rng):
            return Workload(
                [
                    ConnectionSource(
                        connections=2, mix=[op_entry("point_select")]
                    )
                ]
            )

        result = run_simulation(mysql_factory, workload, duration=2.0)
        completed = [
            r for r in result.collector.records if r.completed
        ]
        assert len(completed) > 100
        assert {r.client_id for r in completed} == {"conn-0", "conn-1"}

    def test_think_time_paces_connections(self):
        def workload(think):
            def build(app, rng):
                return Workload(
                    [
                        ConnectionSource(
                            connections=2,
                            mix=[op_entry("point_select")],
                            think_time=think,
                        )
                    ]
                )

            return build

        eager = run_simulation(mysql_factory, workload(0.0), duration=2.0)
        lazy = run_simulation(mysql_factory, workload(0.2), duration=2.0)
        assert lazy.summary.completed < eager.summary.completed / 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectionSource(connections=0, mix=[op_entry("point_select")])
        with pytest.raises(ValueError):
            ConnectionSource(connections=1, mix=[])
        with pytest.raises(ValueError):
            ConnectionSource(
                connections=1,
                mix=[op_entry("point_select")],
                reconnect_delay=-1.0,
            )


class TestConnectionCancellation:
    def analytics_workload(self, app, rng):
        """One connection repeatedly issuing heavy scans + light traffic."""
        return Workload(
            [
                OpenLoopSource(rate=300.0, mix=light_mix(rng)),
                ConnectionSource(
                    connections=1,
                    mix=[op_entry("scan", {"table": 0, "rows": 2e6})],
                    client_prefix="analytics",
                    start_time=2.0,
                ),
            ]
        )

    def test_atropos_cancels_the_connection(self):
        result = run_simulation(
            mysql_factory,
            self.analytics_workload,
            controller_factory=lambda env: Atropos(
                env, AtroposConfig(slo_latency=0.02)
            ),
            duration=10.0,
            warmup=2.0,
        )
        atropos = result.controller
        cancelled = [
            e for e in atropos.cancellation.log if e.task_key == "analytics-0"
        ]
        assert cancelled, "the analytics connection was never cancelled"
        # The connection's in-flight scan is recorded as cancelled...
        statuses = {
            r.status
            for r in result.collector.records
            if r.client_id == "analytics-0"
        }
        assert RequestStatus.CANCELLED in statuses
        # ...and the reconnected session (non-cancellable) may continue.
        assert result.p99_latency < 0.15

    def test_reconnected_session_is_non_cancellable(self):
        result = run_simulation(
            mysql_factory,
            self.analytics_workload,
            controller_factory=lambda env: Atropos(
                env, AtroposConfig(slo_latency=0.02)
            ),
            duration=12.0,
            warmup=2.0,
        )
        cancels_of_connection = [
            e
            for e in result.controller.cancellation.log
            if e.task_key == "analytics-0"
        ]
        # Fairness: the connection is cancelled at most once.
        assert len(cancels_of_connection) <= 1


class TestThinkTimeCancellation:
    def test_cancel_during_think_time_loses_no_op(self):
        """A cancellation landing in think time must not double-record
        the previous (completed) operation as cancelled."""
        from repro.core import CancelSignal
        from repro.sim import Environment, MetricsCollector, Rng
        from repro.core.controller import BaseController
        from repro.workloads import Driver

        env = Environment()
        controller = BaseController(env)
        app = MySQL(env, controller, Rng(0))
        driver = Driver(env, app, controller, MetricsCollector())
        source = ConnectionSource(
            connections=1,
            mix=[op_entry("point_select")],
            think_time=1.0,  # long think: cancellation lands there
        )
        driver.run_workload(Workload([source]))

        def killer(env):
            yield env.timeout(0.5)  # mid-think
            for task in controller.live_tasks():
                task.begin_cancel(CancelSignal(reason="test"))
                task.process.interrupt(task.cancel_signal)

        env.process(killer(env))
        env.run(until=3.0)
        records = driver.collector.records
        cancelled = [r for r in records if r.status is RequestStatus.CANCELLED]
        assert cancelled == []
        completed = [r for r in records if r.completed]
        # The connection reconnected and kept issuing ops afterwards.
        assert any(r.finish_time > 0.6 for r in completed)
