"""Pre-generated arrival streams must be draw-identical to the
generator source.

``Driver.run_arrivals`` + :func:`poisson_arrival_stream` is the bench /
fast-path way to offer an open-loop load; it may never change *what*
arrives relative to :class:`OpenLoopSource` at the same seed, only how
the arrivals are scheduled.
"""

import pytest

from repro.apps.base import Application, Operation
from repro.core import NullController
from repro.sim import Environment, MetricsCollector, Rng
from repro.workloads import Driver, MixEntry, OpenLoopSource, Workload
from repro.workloads.spec import poisson_arrival_stream


class TwoOpApp(Application):
    name = "twoop"

    def __init__(self, env, controller, rng):
        super().__init__(env, controller, rng)
        self.register_handler("fast", self._fast)
        self.register_handler("slow", self._slow)

    def _fast(self, task):
        yield self.env.timeout(0.001)

    def _slow(self, task):
        yield self.env.timeout(0.004)


MIX = lambda: [  # noqa: E731 - tiny fixture factory
    MixEntry(lambda: Operation("fast"), 0.8),
    MixEntry(lambda: Operation("slow"), 0.2),
]

RATE = 500.0
DURATION = 4.0


def run(use_stream: bool):
    env = Environment()
    controller = NullController(env)
    app = TwoOpApp(env, controller, Rng(7))
    collector = MetricsCollector()
    driver = Driver(env, app, controller, collector)
    if use_stream:
        stream = poisson_arrival_stream(
            app.rng.fork("arrivals:client"),
            rate=RATE,
            stop_time=DURATION,
            mix=MIX(),
        )
        assert driver.run_arrivals(stream) == len(stream)
    else:
        driver.run_workload(
            Workload(
                [OpenLoopSource(rate=RATE, mix=MIX(), stop_time=DURATION)]
            )
        )
    env.run(until=DURATION)
    return collector


def test_run_arrivals_matches_open_loop_source():
    a = run(use_stream=False)
    b = run(use_stream=True)
    assert len(a.records) == len(b.records) > 1000

    def key(record):
        return (
            record.request_id,
            record.op_name,
            record.client_id,
            record.arrival_time,
            record.finish_time,
            record.status,
            record.retries,
        )

    assert [key(r) for r in a.records] == [key(r) for r in b.records]


def test_stream_is_ascending_and_bounded():
    stream = poisson_arrival_stream(
        Rng(3), rate=100.0, stop_time=2.0, factory=lambda: Operation("fast")
    )
    times = [t for t, _ in stream]
    assert times == sorted(times)
    assert all(0.0 <= t < 2.0 for t in times)
    assert 100 < len(stream) < 300  # ~rate * stop_time


def test_stream_argument_validation():
    factory = lambda: Operation("fast")  # noqa: E731
    with pytest.raises(ValueError):
        poisson_arrival_stream(Rng(0), rate=0.0, stop_time=1.0, factory=factory)
    with pytest.raises(ValueError):
        poisson_arrival_stream(Rng(0), rate=1.0, stop_time=1.0)
    with pytest.raises(ValueError):
        poisson_arrival_stream(
            Rng(0), rate=1.0, stop_time=1.0, factory=factory, mix=MIX()
        )
