"""Tests for the chaos-matrix experiment (resilience)."""

import pytest

from repro.campaign import (
    reset_session_stats,
    session_stats,
    settings,
)
from repro.experiments.resilience import (
    FULL_KINDS,
    INTENSITIES,
    QUICK_KINDS,
    grid_plan,
    run,
)


def test_grid_covers_every_kind_and_tier():
    for kind in FULL_KINDS:
        for tier in INTENSITIES:
            plan = grid_plan(kind, "c1", tier)
            assert len(plan) == 1
            assert next(iter(plan)).kind == kind


def test_grid_rejects_unknown_kind():
    with pytest.raises(KeyError):
        grid_plan("meteor-strike", "c1")


def test_smoke_matrix_deterministic_and_cached(tmp_path):
    """Tier-1 smoke: a 2-kind slice of the matrix, cold then warm."""
    kwargs = dict(
        quick=True,
        case_ids=["c1"],
        kinds=["cancel-drop", "burst"],
        systems=["overload", "atropos"],
    )
    reset_session_stats()
    with settings(jobs=1, cache=True, cache_dir=tmp_path):
        cold = run(**kwargs)
        cold_stats = session_stats()
        warm = run(**kwargs)
        warm_stats = session_stats()

    assert cold_stats.misses > 0
    assert warm_stats.misses == cold_stats.misses  # warm pass all hits
    assert warm.format() == cold.format()

    table = cold.table("chaos")
    assert len(table.rows) == 4  # 2 kinds x 2 systems
    # Graceful degradation: ATROPOS survives every fault (rows exist,
    # finite sane metrics) with a bounded wrong-culprit rate.
    for row in table.rows:
        wrong_rate = row[table.columns.index("wrong_rate")]
        assert 0.0 <= wrong_rate <= 1.0
        norm_tput = row[table.columns.index("norm_tput")]
        assert norm_tput == norm_tput and norm_tput > 0.0


@pytest.mark.slow
def test_quick_matrix_every_fault_kind(tmp_path):
    """ATROPOS degrades gracefully under every fault kind in the grid."""
    with settings(jobs=2, cache=True, cache_dir=tmp_path):
        result = run(quick=True, systems=["atropos"])
    table = result.table("chaos")
    assert {row[1] for row in table.rows} == set(QUICK_KINDS)
    for row in table.rows:
        wrong_rate = row[table.columns.index("wrong_rate")]
        assert wrong_rate <= 0.5, row  # bounded mis-targeting under faults
        cancels = row[table.columns.index("cancels")]
        assert cancels < 100 or row[1] in ("partition", "cancel-drop")
