"""Tests for the mitigation-lever ablation (`repro ablate --levers`)."""

import pytest

from repro.experiments.ablate_levers import LEVERS, QUICK_CASES, run
from repro.experiments.case_family import case_spec


class TestSpecIdentity:
    def test_lever_runs_never_share_cache_entries(self):
        import json

        identities = {
            json.dumps(
                case_spec("ablate-levers", "c17", 0,
                          atropos_overrides={}, lever=lever).identity(),
                sort_keys=True,
            )
            for lever in LEVERS
        }
        assert len(identities) == len(LEVERS)

    def test_baseline_shared_with_other_ablations(self):
        ours = case_spec("ablate-levers", "c1", 0, include_culprit=False)
        theirs = case_spec("ablate-adaptive", "c1", 0, include_culprit=False)
        assert ours.identity() == theirs.identity()

    def test_quick_set_spans_both_families(self):
        from repro.cases import get_case

        apps = {get_case(cid).app_name for cid in QUICK_CASES}
        assert apps == {"mysql", "mongodb"}


@pytest.mark.slow
class TestLeverAblationEndToEnd:
    def test_c17_is_a_reshape_wins_regime(self):
        result = run(case_ids=["c17"], seed=0)
        assert "c17" in result.description
        assert "beats cancel" in result.description
        verdict = result.tables[-1]
        (row,) = verdict.rows
        assert row[0] == "c17"
        assert row[1] < 1.0  # reshape p99 below cancel p99
        assert row[2] >= 0.99  # no goodput loss
        assert row[3] == "yes"

    def test_c18_memory_regime_favors_cancel(self):
        result = run(case_ids=["c18"], seed=0)
        (row,) = result.tables[-1].rows
        assert row[0] == "c18"
        assert row[3] == "no"
        # The lock lever has nothing to park in a memory overload.
        actions = result.tables[1]
        assert actions.rows[0][LEVERS.index("lock_reshape") + 1] == "0c/0p"
