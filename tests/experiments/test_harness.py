"""Tests for the experiment harness and result tables."""

import math

import pytest

from repro.experiments import ALL_EXPERIMENTS, normalize, run_simulation
from repro.experiments.tables import ExperimentResult, ExperimentTable


class TestExperimentTable:
    def test_add_row_checks_arity(self):
        t = ExperimentTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_extraction(self):
        t = ExperimentTable("t", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_row_map(self):
        t = ExperimentTable("t", ["case", "x"])
        t.add_row("c1", 1.0)
        assert t.row_map()["c1"] == ["c1", 1.0]

    def test_format_renders_all_rows(self):
        t = ExperimentTable("demo", ["name", "value"])
        t.add_row("x", 1.5)
        text = t.format()
        assert "demo" in text
        assert "x" in text and "1.500" in text

    def test_format_handles_nan(self):
        t = ExperimentTable("t", ["v"])
        t.add_row(float("nan"))
        assert "nan" in t.format()


class TestExperimentResult:
    def test_table_lookup_by_fragment(self):
        r = ExperimentResult(
            "fig0", "d", [ExperimentTable("Alpha metrics", ["x"])]
        )
        assert r.table("alpha").title == "Alpha metrics"
        with pytest.raises(KeyError):
            r.table("beta")

    def test_format_includes_header(self):
        r = ExperimentResult("fig0", "demo description", [])
        assert "fig0" in r.format()
        assert "demo description" in r.format()


class TestHarness:
    def test_normalize(self):
        assert normalize(2.0, 4.0) == 0.5
        assert math.isnan(normalize(1.0, 0.0))

    def test_run_simulation_warmup_trims_records(self):
        from repro.apps.mysql import MySQL, light_mix
        from repro.workloads import OpenLoopSource, Workload

        def app_factory(env, controller, rng):
            return MySQL(env, controller, rng)

        def workload(app, rng):
            return Workload([OpenLoopSource(rate=100.0, mix=light_mix(rng))])

        full = run_simulation(app_factory, workload, duration=4.0, warmup=0.0)
        trimmed = run_simulation(
            app_factory, workload, duration=4.0, warmup=2.0
        )
        assert trimmed.summary.completed < full.summary.completed
        # The raw collector still holds everything.
        assert len(trimmed.collector.records) == len(full.collector.records)

    def test_summary_and_timeline_share_the_trimmed_view(self):
        from repro.apps.mysql import MySQL, light_mix
        from repro.workloads import OpenLoopSource, Workload

        result = run_simulation(
            lambda env, ctl, rng: MySQL(env, ctl, rng),
            lambda app, rng: Workload(
                [OpenLoopSource(rate=100.0, mix=light_mix(rng))]
            ),
            duration=4.0,
            warmup=2.0,
        )
        view = result.trimmed_collector
        # The public trimmed view is exactly what the summary was built
        # from...
        assert result.summary.completed == sum(
            1 for r in view.records if r.status.name == "COMPLETED"
        )
        assert all(r.finish_time >= 2.0 for r in view.records)
        # ...and the timeline uses it too: the warm-up windows are empty.
        points = result.timeline(window=1.0)
        assert [p[0] for p in points] == [1.0, 2.0, 3.0, 4.0]
        assert points[0][1] == 0.0 and points[1][1] == 0.0
        assert points[2][1] > 0.0

    def test_trimmed_collector_with_zero_warmup_is_identity(self):
        from repro.apps.mysql import MySQL, light_mix
        from repro.workloads import OpenLoopSource, Workload

        result = run_simulation(
            lambda env, ctl, rng: MySQL(env, ctl, rng),
            lambda app, rng: Workload(
                [OpenLoopSource(rate=100.0, mix=light_mix(rng))]
            ),
            duration=2.0,
        )
        assert result.trimmed_collector is result.collector

    def test_registry_covers_every_artifact(self):
        expected = {
            "fig2", "fig3", "fig4", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "table1", "table2", "table3", "resilience",
            "ablate-adaptive", "ablate-levers", "cluster", "dag",
        }
        assert set(ALL_EXPERIMENTS) == expected


class TestCsvAndTimeline:
    def test_table_to_csv(self):
        t = ExperimentTable("t", ["case", "value"])
        t.add_row("c1", 1.5)
        csv_text = t.to_csv()
        assert csv_text.splitlines() == ["case,value", "c1,1.5"]

    def test_run_result_timeline(self):
        from repro.apps.mysql import MySQL, light_mix
        from repro.workloads import OpenLoopSource, Workload

        result = run_simulation(
            lambda env, ctl, rng: MySQL(env, ctl, rng),
            lambda app, rng: Workload(
                [OpenLoopSource(rate=200.0, mix=light_mix(rng))]
            ),
            duration=4.0,
        )
        points = result.timeline(window=1.0)
        assert len(points) == 4
        ends = [p[0] for p in points]
        assert ends == [1.0, 2.0, 3.0, 4.0]
        # Steady load: every window sees completions.
        assert all(tput > 100 for _, tput, _ in points)

    def test_timeline_rejects_bad_window(self):
        from repro.apps.mysql import MySQL, light_mix
        from repro.workloads import OpenLoopSource, Workload
        import pytest as _pytest

        result = run_simulation(
            lambda env, ctl, rng: MySQL(env, ctl, rng),
            lambda app, rng: Workload(
                [OpenLoopSource(rate=50.0, mix=light_mix(rng))]
            ),
            duration=1.0,
        )
        with _pytest.raises(ValueError):
            result.timeline(window=0.0)
