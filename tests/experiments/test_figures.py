"""Shape tests for the figure experiments.

Each test runs a reduced configuration of one experiment and asserts the
paper's qualitative result -- who wins, roughly by how much, where the
crossover falls -- not absolute numbers.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS

pytestmark = pytest.mark.slow
from repro.experiments import (
    fig2_buffer_pool,
    fig3_lock_contention,
    fig4_motivation,
    fig9_comparison,
    fig11_drop_rate,
    fig12_slo,
    fig13_policies,
    fig14_overhead,
)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_buffer_pool.run(loads=[400.0, 1200.0])

    def test_dump_reduces_peak_throughput(self, result):
        tput = result.table("throughput").row_map()
        high_load = tput[1200.0]
        cols = result.table("throughput").columns
        no_dump = high_load[cols.index("No dump")]
        heavy = high_load[cols.index("0.01% dump")]
        assert heavy < no_dump * 0.6

    def test_dump_raises_latency_at_moderate_load(self, result):
        p99 = result.table("p99").row_map()
        cols = result.table("p99").columns
        row = p99[400.0]
        assert (
            row[cols.index("0.01% dump")] > row[cols.index("No dump")] * 3
        )


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_lock_contention.run(loads=[900.0])

    def test_contention_needs_both_culprits(self, result):
        tput = result.table("throughput")
        row = tput.rows[0]
        cols = tput.columns
        contention = row[cols.index("Lock Contention")]
        drop_scan = row[cols.index("Drop Scan")]
        drop_backup = row[cols.index("Drop Backup")]
        # Removing either culprit restores throughput.
        assert drop_scan > contention * 1.5
        assert drop_backup > contention * 1.5


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_motivation.run(loads=[900.0])

    def test_atropos_best_throughput(self, result):
        tput = result.table("4a").rows[0]
        cols = result.table("4a").columns
        atropos = tput[cols.index("atropos")]
        assert atropos > 0.9
        assert atropos >= tput[cols.index("protego")]
        assert atropos >= tput[cols.index("pbox")]

    def test_protego_drops_most(self, result):
        drops = result.table("4c").rows[0]
        cols = result.table("4c").columns
        assert drops[cols.index("protego")] > 0.05
        assert drops[cols.index("atropos")] < 0.01

    def test_atropos_p99_near_baseline(self, result):
        p99 = result.table("4b").rows[0]
        cols = result.table("4b").columns
        assert p99[cols.index("atropos")] < 20
        assert p99[cols.index("pbox")] > p99[cols.index("atropos")]


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        # A sync case and a memory case, against the two nearest rivals.
        return fig9_comparison.run(
            case_ids=["c4", "c5"], systems=["atropos", "protego", "pbox"]
        )

    def test_atropos_wins_average_throughput(self, result):
        summary = result.table("summary").row_map()
        atropos = summary["atropos"][1]
        assert atropos > 0.9
        assert atropos >= summary["protego"][1]
        assert atropos >= summary["pbox"][1]

    def test_atropos_wins_average_p99(self, result):
        summary = result.table("summary").row_map()
        assert summary["atropos"][2] <= summary["protego"][2]
        assert summary["atropos"][2] <= summary["pbox"][2]


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return ALL_EXPERIMENTS["fig10"](case_ids=["c4", "c13"])

    def test_atropos_restores_each_case(self, result):
        tput = result.table("10a")
        p99 = result.table("10b")
        for row in tput.rows:
            assert row[2] > 0.9  # Atropos column
        for row in p99.rows:
            assert row[1] > row[2] * 10  # Overload >> Atropos


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_drop_rate.run(case_ids=["c1", "c4"])

    def test_protego_drops_orders_of_magnitude_more(self, result):
        summary = result.table("summary").row_map()
        protego = summary["Protego"][1]
        atropos = summary["Atropos"][1]
        assert protego > 0.02
        assert atropos < 0.005
        assert protego > atropos * 10


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_slo.run(case_ids=["c1", "c14"], goals=[0.2, 0.6])

    def test_latency_increase_within_goal(self, result):
        increase = result.table("latency increase")
        cols = increase.columns
        for row in increase.rows:
            # The 60% goal is met (c1 and c14 are well-behaved cases).
            assert row[cols.index("goal_60%")] < 0.6

    def test_cancellations_issued(self, result):
        cancels = result.table("cancellations")
        for row in cancels.rows:
            assert all(v >= 1 for v in row[1:])


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        # c4's culprit is an early-progress task: future gain matters.
        return fig13_policies.run(case_ids=["c1", "c4"])

    def test_multi_objective_at_least_as_good(self, result):
        summary = result.table("summary").row_map()
        moo = summary["Multi-Objective"]
        for other in ("Heuristic", "Current Usage"):
            assert moo[1] >= summary[other][1] - 0.05  # throughput
            assert moo[2] <= summary[other][2] * 1.5  # p99


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_overhead.run(apps=["mysql", "solr"])

    def test_normal_overhead_is_small(self, result):
        tput = result.table("14a")
        cols = tput.columns
        for row in tput.rows:
            # Under normal load, tracing costs at most a few percent.
            assert row[cols.index("Read")] > 0.95
            assert row[cols.index("Write")] > 0.95

    def test_overhead_reported_for_all_workloads(self, result):
        tput = result.table("14a")
        assert len(tput.columns) == 5  # app + 4 workloads
        for row in tput.rows:
            assert all(v == v for v in row[1:])  # no NaNs


class TestTables:
    def test_table1_runs(self):
        result = ALL_EXPERIMENTS["table1"]()
        assert "151" in result.format()

    def test_table2_lists_16_cases(self):
        result = ALL_EXPERIMENTS["table2"]()
        assert len(result.tables[0].rows) == 16

    def test_table3_counts_sites(self):
        result = ALL_EXPERIMENTS["table3"]()
        sites = result.tables[0].column("Repo Instrumentation Sites")
        assert all(s > 0 for s in sites)
