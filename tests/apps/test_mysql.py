"""Integration tests for the simulated MySQL model.

These validate the contention dynamics behind the paper's MySQL cases:
buffer-pool thrashing (c5), the backup-lock convoy (c1), the undo-log
convoy (c3), InnoDB queue monopolization (c2), and SELECT FOR UPDATE
blocking (c4) -- first uncontrolled, then with ATROPOS cancelling the
culprit.
"""

import pytest

from repro.apps.mysql import MySQL, MySQLConfig, light_mix
from repro.core import Atropos, AtroposConfig, NullController
from repro.experiments import run_simulation
from repro.workloads import OpenLoopSource, ScheduledOp, Workload


def mysql_factory(config=None):
    def build(env, controller, rng):
        return MySQL(env, controller, rng, config=config)

    return build


def light_workload(rate=200.0, **kwargs):
    def build(app, rng):
        return Workload(
            [OpenLoopSource(rate=rate, mix=light_mix(rng), **kwargs)]
        )

    return build


def windowed_throughput(result, t0, t1):
    """Completions per second finishing within [t0, t1)."""
    done = [
        r
        for r in result.collector.records
        if r.completed and t0 <= r.finish_time < t1
    ]
    return len(done) / (t1 - t0)


def atropos_factory(**overrides):
    def build(env):
        settings = dict(
            slo_latency=0.05,
            detection_period=0.2,
            cancel_cooldown=0.3,
            min_window_samples=10,
        )
        settings.update(overrides)
        return Atropos(env, AtroposConfig(**settings))

    return build


class TestBaseline:
    def test_light_load_completes_with_low_latency(self):
        result = run_simulation(
            mysql_factory(),
            light_workload(rate=200.0),
            duration=5.0,
            warmup=1.0,
        )
        assert result.summary.completed > 500
        assert result.drop_rate == 0.0
        assert result.p99_latency < 0.05

    def test_throughput_tracks_offered_load_below_capacity(self):
        low = run_simulation(
            mysql_factory(), light_workload(rate=100.0), duration=5.0
        )
        high = run_simulation(
            mysql_factory(), light_workload(rate=400.0), duration=5.0
        )
        assert high.throughput > low.throughput * 3

    def test_hot_set_warms_up(self):
        result = run_simulation(
            mysql_factory(), light_workload(rate=300.0), duration=5.0
        )
        app = result.app
        assert app.buffer_pool.resident_pages("hot-set") > 1000

    def test_deterministic_per_seed(self):
        a = run_simulation(
            mysql_factory(), light_workload(rate=200.0), duration=3.0, seed=7
        )
        b = run_simulation(
            mysql_factory(), light_workload(rate=200.0), duration=3.0, seed=7
        )
        assert a.summary == b.summary


class TestBufferPoolOverload:
    """Case c5 / Figure 2: dump queries trash the buffer pool."""

    def workload_with_dump(self, rate=300.0, dump_at=2.0):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(rate=rate, mix=light_mix(rng)),
                    ScheduledOp(
                        at=dump_at,
                        factory=lambda: __import__(
                            "repro.apps.base", fromlist=["Operation"]
                        ).Operation("dump", {}),
                    ),
                ]
            )

        return build

    def test_dump_degrades_light_latency(self):
        clean = run_simulation(
            mysql_factory(), light_workload(rate=300.0), duration=8.0,
            warmup=2.0,
        )
        dumped = run_simulation(
            mysql_factory(),
            self.workload_with_dump(rate=300.0, dump_at=2.0),
            duration=8.0,
            warmup=2.0,
        )
        assert dumped.p99_latency > clean.p99_latency * 2

    def test_atropos_cancels_dump_and_recovers(self):
        uncontrolled = run_simulation(
            mysql_factory(),
            self.workload_with_dump(rate=300.0, dump_at=2.0),
            duration=8.0,
            warmup=2.0,
        )
        controlled = run_simulation(
            mysql_factory(),
            self.workload_with_dump(rate=300.0, dump_at=2.0),
            controller_factory=atropos_factory(),
            duration=8.0,
            warmup=2.0,
        )
        assert controlled.controller.cancels_issued >= 1
        assert controlled.p99_latency < uncontrolled.p99_latency
        # Only the culprit should be affected: drop rate stays tiny.
        assert controlled.drop_rate < 0.02


class TestBackupLockConvoy:
    """Case c1 / Figure 3: backup + scan convoy blocks all writers."""

    def convoy_workload(self, rate=300.0, scans=(2.0,), backup_at=3.0):
        from repro.apps.base import Operation

        def build(app, rng):
            sources = [OpenLoopSource(rate=rate, mix=light_mix(rng))]
            for at in scans:
                sources.append(
                    ScheduledOp(
                        at=at,
                        factory=lambda: Operation(
                            "scan", {"table": 0, "rows": 1.2e6}
                        ),
                    )
                )
            if backup_at is not None:
                sources.append(
                    ScheduledOp(
                        at=backup_at, factory=lambda: Operation("backup", {})
                    )
                )
            return Workload(sources)

        return build

    def test_convoy_collapses_throughput(self):
        clean = run_simulation(
            mysql_factory(),
            self.convoy_workload(backup_at=None, scans=()),
            duration=10.0,
            warmup=2.0,
        )
        convoy = run_simulation(
            mysql_factory(),
            self.convoy_workload(),
            duration=10.0,
            warmup=2.0,
        )
        assert convoy.throughput < clean.throughput * 0.8
        assert convoy.p99_latency > clean.p99_latency * 10

    def test_scan_only_does_not_collapse(self):
        """Without the backup, a shared scan coexists with the mix."""
        scan_only = run_simulation(
            mysql_factory(),
            self.convoy_workload(backup_at=None),
            duration=10.0,
            warmup=2.0,
        )
        assert scan_only.p99_latency < 0.5

    def test_atropos_restores_throughput(self):
        convoy = run_simulation(
            mysql_factory(),
            self.convoy_workload(),
            duration=10.0,
            warmup=2.0,
        )
        controlled = run_simulation(
            mysql_factory(),
            self.convoy_workload(),
            controller_factory=atropos_factory(),
            duration=10.0,
            warmup=2.0,
        )
        assert controlled.controller.cancels_issued >= 1
        assert controlled.throughput > convoy.throughput
        assert controlled.p99_latency < convoy.p99_latency
        assert controlled.drop_rate < 0.02


class TestInnodbQueueOverload:
    """Case c2: slow queries monopolize the InnoDB admission queue."""

    def slow_workload(self, rate=300.0, slow_rate=3.5):
        from repro.apps.base import Operation

        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(rate=rate, mix=light_mix(rng)),
                    OpenLoopSource(
                        rate=slow_rate,
                        mix=[
                            __import__(
                                "repro.workloads.spec", fromlist=["MixEntry"]
                            ).MixEntry(
                                factory=lambda: Operation(
                                    "slow_query", {"duration": 3.0}
                                ),
                                weight=1.0,
                            )
                        ],
                        client_id="analytics",
                        start_time=2.0,
                    ),
                ]
            )

        return build

    def test_slow_queries_inflate_queue_wait(self):
        clean = run_simulation(
            mysql_factory(), light_workload(rate=300.0), duration=10.0,
            warmup=2.0,
        )
        slowed = run_simulation(
            mysql_factory(), self.slow_workload(), duration=10.0, warmup=2.0
        )
        assert slowed.p99_latency > clean.p99_latency * 3

    def test_atropos_cancels_slow_queries(self):
        slowed = run_simulation(
            mysql_factory(), self.slow_workload(), duration=10.0, warmup=2.0
        )
        controlled = run_simulation(
            mysql_factory(),
            self.slow_workload(),
            controller_factory=atropos_factory(),
            duration=10.0,
            warmup=2.0,
        )
        assert controlled.controller.cancels_issued >= 1
        assert controlled.p99_latency < slowed.p99_latency


class TestUndoLogConvoy:
    """Case c3: long transaction blocks purge; purge convoys writers."""

    def undo_workload(self, rate=250.0):
        from repro.apps.base import Operation
        from repro.core.types import TaskKind
        from repro.workloads.spec import PeriodicOp

        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(rate=rate, mix=light_mix(rng, select_weight=0.2)),
                    ScheduledOp(
                        at=2.0,
                        factory=lambda: Operation(
                            "long_transaction", {"duration": 8.0}
                        ),
                    ),
                    PeriodicOp(
                        period=1.0,
                        factory=lambda: Operation(
                            "purge", {}, kind=TaskKind.BACKGROUND
                        ),
                        start_time=2.5,
                    ),
                ]
            )

        return build

    def test_convoy_blocks_updates(self):
        clean = run_simulation(
            mysql_factory(), light_workload(rate=250.0), duration=13.0,
            warmup=2.0,
        )
        # Run past the long transaction's lifetime (ends at t=10) so the
        # convoyed updates complete and their latencies become visible.
        convoy = run_simulation(
            mysql_factory(), self.undo_workload(), duration=13.0, warmup=2.0
        )
        # Throughput collapses *during* the convoy (t in [4, 10)) even
        # though deferred completions recover the total count afterwards.
        during = windowed_throughput(convoy, 4.0, 10.0)
        clean_during = windowed_throughput(clean, 4.0, 10.0)
        assert during < clean_during * 0.5
        assert convoy.p99_latency > clean.p99_latency * 5

    def test_atropos_cancels_long_transaction(self):
        controlled = run_simulation(
            mysql_factory(),
            self.undo_workload(),
            controller_factory=atropos_factory(),
            duration=10.0,
            warmup=2.0,
        )
        assert controlled.controller.cancels_issued >= 1
        cancelled_ops = [
            e.op_name for e in controlled.controller.cancellation.log
        ]
        assert "long_transaction" in cancelled_ops


class TestSelectForUpdate:
    """Case c4: SELECT FOR UPDATE blocks inserts on the same table."""

    def sfu_workload(self, rate=250.0):
        from repro.apps.base import Operation

        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(rate=rate, mix=light_mix(rng, select_weight=0.3)),
                    ScheduledOp(
                        at=2.0,
                        factory=lambda: Operation(
                            "select_for_update",
                            {"table": 0, "rows": 1.5e6},
                        ),
                    ),
                ]
            )

        return build

    def test_blocks_same_table_writers(self):
        clean = run_simulation(
            mysql_factory(), light_workload(rate=250.0), duration=10.0,
            warmup=2.0,
        )
        blocked = run_simulation(
            mysql_factory(), self.sfu_workload(), duration=10.0, warmup=2.0
        )
        assert blocked.p99_latency > clean.p99_latency * 5

    def test_atropos_cancels_culprit(self):
        controlled = run_simulation(
            mysql_factory(),
            self.sfu_workload(),
            controller_factory=atropos_factory(),
            duration=10.0,
            warmup=2.0,
        )
        assert controlled.controller.cancels_issued >= 1
        cancelled_ops = [
            e.op_name for e in controlled.controller.cancellation.log
        ]
        assert "select_for_update" in cancelled_ops
