"""Tests for the Application base: dispatch, tracing debt, checkpoints."""

import pytest

from repro.apps.base import Application, Operation
from repro.core import (
    Atropos,
    AtroposConfig,
    BaseController,
    NullController,
    ResourceType,
)
from repro.core.types import DropRequest
from repro.sim import Environment, Rng
from repro.sim.resources import SyncLock, ThreadPool


class TinyApp(Application):
    name = "tiny"

    def __init__(self, env, controller, rng):
        super().__init__(env, controller, rng)
        self.lock = SyncLock(env, "tiny.lock")
        self.pool = ThreadPool(env, "tiny.pool", workers=1)
        self.r_lock = self.register_resource("lock", ResourceType.LOCK)
        self.r_pool = self.register_resource("pool", ResourceType.QUEUE)
        self.register_handler("op", self.op)

    def op(self, task):
        yield self.env.timeout(0.001)
        yield from self.checkpoint(task)


@pytest.fixture
def env():
    return Environment()


def run_proc(env, gen):
    p = env.process(gen)
    env.run()
    return p


class TestDispatch:
    def test_execute_routes_to_handler(self, env):
        app = TinyApp(env, NullController(env), Rng(0))
        task = app.controller.create_cancel()
        run_proc(env, app.execute(task, Operation("op")))

    def test_unknown_operation_raises(self, env):
        app = TinyApp(env, NullController(env), Rng(0))
        task = app.controller.create_cancel()
        with pytest.raises(KeyError, match="no operation"):
            # The error surfaces when the generator starts.
            list(app.execute(task, Operation("nope")))

    def test_operations_listing(self, env):
        app = TinyApp(env, NullController(env), Rng(0))
        assert app.operations() == ["op"]

    def test_resource_names_are_app_scoped(self, env):
        app = TinyApp(env, NullController(env), Rng(0))
        assert app.r_lock.name == "tiny.lock"


class TestTracingDebt:
    def test_debt_accumulates_and_is_paid_at_checkpoint(self, env):
        atropos = Atropos(
            env,
            AtroposConfig(coarse_trace_cost=0.01),  # exaggerated
        )
        app = TinyApp(env, atropos, Rng(0))
        task = atropos.create_cancel()
        app.trace_get(task, app.r_lock)
        app.trace_free(task, app.r_lock)
        assert task.metadata["trace_debt"] == pytest.approx(0.02)

        def body(env):
            yield from app.checkpoint(task)

        start = env.now
        run_proc(env, body(env))
        assert env.now - start == pytest.approx(0.02)
        assert "trace_debt" not in task.metadata

    def test_null_controller_accrues_no_debt(self, env):
        app = TinyApp(env, NullController(env), Rng(0))
        task = app.controller.create_cancel()
        app.trace_get(task, app.r_lock)
        assert "trace_debt" not in task.metadata


class TestCheckpoint:
    def test_checkpoint_raises_drop_when_controller_says_so(self, env):
        class Dropper(NullController):
            def should_drop(self, task):
                return True

        app = TinyApp(env, Dropper(env), Rng(0))
        task = app.controller.create_cancel()

        def body(env):
            try:
                yield from app.checkpoint(task)
            except DropRequest:
                return "dropped"

        p = run_proc(env, body(env))
        assert p.value == "dropped"

    def test_checkpoint_applies_throttle_delay(self, env):
        class Throttler(NullController):
            def throttle_delay(self, task):
                return 0.5

        app = TinyApp(env, Throttler(env), Rng(0))
        task = app.controller.create_cancel()

        def body(env):
            yield from app.checkpoint(task)

        run_proc(env, body(env))
        assert env.now == pytest.approx(0.5)

    def test_checkpoint_is_free_when_nothing_pending(self, env):
        app = TinyApp(env, NullController(env), Rng(0))
        task = app.controller.create_cancel()

        def body(env):
            yield from app.checkpoint(task)
            yield env.timeout(0)

        run_proc(env, body(env))
        assert env.now == 0.0


class TestAcquireHelpers:
    def test_release_lock_is_idempotent(self, env):
        app = TinyApp(env, NullController(env), Rng(0))
        task = app.controller.create_cancel()

        def body(env):
            grant = yield from app.acquire_lock(task, app.lock, app.r_lock)
            app.release_lock(task, grant, app.r_lock)
            app.release_lock(task, grant, app.r_lock)  # no error

        run_proc(env, body(env))
        assert app.lock.holders == []

    def test_wait_events_reach_atropos_ledger(self, env):
        atropos = Atropos(env, AtroposConfig())
        app = TinyApp(env, atropos, Rng(0))

        def holder(env):
            task = atropos.create_cancel(op_name="holder")
            grant = yield from app.acquire_lock(task, app.lock, app.r_lock)
            try:
                yield env.timeout(1.0)
            finally:
                app.release_lock(task, grant, app.r_lock)

        def waiter(env):
            yield env.timeout(0.1)
            task = atropos.create_cancel(op_name="waiter")
            grant = yield from app.acquire_lock(task, app.lock, app.r_lock)
            app.release_lock(task, grant, app.r_lock)

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=0.5)
        # The waiter's open wait is visible in the ledger mid-convoy.
        assert atropos.runtime.ledger.open_wait_time(app.r_lock, 0.5) > 0.3
