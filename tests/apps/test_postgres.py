"""Integration tests for the simulated PostgreSQL model (cases c6-c8)."""

import pytest

from repro.apps.base import Operation
from repro.apps.postgres import PostgreSQL, PostgresConfig
from repro.cases.postgres_cases import pg_mix
from repro.core import Atropos, AtroposConfig, TaskKind
from repro.experiments import run_simulation
from repro.workloads import (
    MixEntry,
    OpenLoopSource,
    PeriodicOp,
    ScheduledOp,
    Workload,
)


def pg_factory(config=None):
    def build(env, controller, rng):
        return PostgreSQL(env, controller, rng, config=config)

    return build


def light_workload(rate=250.0):
    def build(app, rng):
        return Workload([OpenLoopSource(rate=rate, mix=pg_mix(rng))])

    return build


def atropos_factory(slo=0.02):
    def build(env):
        return Atropos(env, AtroposConfig(slo_latency=slo))

    return build


class TestBaseline:
    def test_light_load_is_healthy(self):
        result = run_simulation(
            pg_factory(), light_workload(), duration=6.0, warmup=1.0
        )
        assert result.drop_rate == 0.0
        assert result.p99_latency < 0.03

    def test_wal_pending_stays_bounded_with_flushes(self):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(
                        rate=250.0, mix=pg_mix(rng, select_weight=0.2)
                    ),
                    PeriodicOp(
                        period=0.5,
                        factory=lambda: Operation(
                            "wal_flush", {}, kind=TaskKind.BACKGROUND
                        ),
                    ),
                ]
            )

        result = run_simulation(pg_factory(), build, duration=6.0)
        assert result.app.wal_pending < 5e6


class TestMvccBloat:
    def bloat_workload(self):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(rate=250.0, mix=pg_mix(rng)),
                    ScheduledOp(
                        at=1.0,
                        factory=lambda: Operation(
                            "bulk_update", {"table": 0, "rows": 2e6}
                        ),
                    ),
                ]
            )

        return build

    def test_bulk_update_accumulates_dead_tuples(self):
        result = run_simulation(
            pg_factory(), self.bloat_workload(), duration=6.0
        )
        assert result.app.dead_tuples[0] > 1e5

    def test_readers_slow_down_with_bloat(self):
        clean = run_simulation(
            pg_factory(), light_workload(), duration=8.0, warmup=2.0
        )
        bloated = run_simulation(
            pg_factory(), self.bloat_workload(), duration=8.0, warmup=2.0
        )
        assert bloated.p99_latency > clean.p99_latency * 3

    def test_cancelled_bulk_update_rolls_back_bloat(self):
        result = run_simulation(
            pg_factory(),
            self.bloat_workload(),
            controller_factory=atropos_factory(),
            duration=8.0,
            warmup=2.0,
        )
        assert result.controller.cancels_issued >= 1
        cancelled = {e.op_name for e in result.controller.cancellation.log}
        assert "bulk_update" in cancelled
        # Rollback reclaimed the aborted transaction's versions.
        assert result.app.dead_tuples[0] < 1e5


class TestVacuumIO:
    def vacuum_workload(self):
        config = PostgresConfig(
            disk_queue_depth=1, read_io_fraction=0.5, vacuum_chunk_bytes=8e6
        )

        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(
                        rate=250.0, mix=pg_mix(rng, select_weight=0.85)
                    ),
                    ScheduledOp(
                        at=1.0,
                        factory=lambda: Operation(
                            "vacuum",
                            {"total_bytes": 600e6},
                            kind=TaskKind.BACKGROUND,
                        ),
                    ),
                ]
            )

        return config, build

    def test_vacuum_slows_reads(self):
        config, build = self.vacuum_workload()
        clean = run_simulation(
            pg_factory(config), light_workload(), duration=8.0, warmup=2.0
        )
        vacuumed = run_simulation(
            pg_factory(config), build, duration=8.0, warmup=2.0
        )
        assert vacuumed.p99_latency > clean.p99_latency * 3

    def test_atropos_cancels_vacuum(self):
        config, build = self.vacuum_workload()
        result = run_simulation(
            pg_factory(config),
            build,
            controller_factory=atropos_factory(),
            duration=8.0,
            warmup=2.0,
        )
        cancelled = {e.op_name for e in result.controller.cancellation.log}
        assert "vacuum" in cancelled


class TestWalConvoy:
    def test_flush_convoy_blocks_writers(self):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(
                        rate=250.0, mix=pg_mix(rng, select_weight=0.3)
                    ),
                    PeriodicOp(
                        period=0.5,
                        factory=lambda: Operation(
                            "wal_flush", {}, kind=TaskKind.BACKGROUND
                        ),
                    ),
                    ScheduledOp(
                        at=1.0,
                        factory=lambda: Operation(
                            "bulk_update", {"table": 1, "rows": 1.5e6}
                        ),
                    ),
                ]
            )

        clean = run_simulation(
            pg_factory(), light_workload(), duration=8.0, warmup=2.0
        )
        convoy = run_simulation(pg_factory(), build, duration=8.0, warmup=2.0)
        assert convoy.p99_latency > clean.p99_latency * 5
