"""Integration tests for the Apache, Solr, and etcd models."""

import pytest

from repro.apps.apache import Apache, ApacheConfig
from repro.apps.base import Operation
from repro.apps.etcd import Etcd
from repro.apps.solr import Solr
from repro.core import Atropos, AtroposConfig
from repro.experiments import run_simulation
from repro.sim import RequestStatus
from repro.workloads import MixEntry, OpenLoopSource, ScheduledOp, Workload


def single_op_workload(op_name, rate, params=None, extra=None):
    def build(app, rng):
        sources = [
            OpenLoopSource(
                rate=rate,
                mix=[
                    MixEntry(
                        factory=lambda: Operation(op_name, dict(params or {})),
                        weight=1.0,
                    )
                ],
            )
        ]
        if extra:
            sources.extend(extra)
        return Workload(sources)

    return build


def atropos_factory(slo=0.02):
    def build(env):
        return Atropos(env, AtroposConfig(slo_latency=slo))

    return build


class TestApache:
    def factory(self, **kwargs):
        def build(env, controller, rng):
            return Apache(env, controller, rng, config=ApacheConfig(**kwargs))

        return build

    def test_static_requests_fast_under_light_load(self):
        result = run_simulation(
            self.factory(),
            single_op_workload("static", 400.0),
            duration=5.0,
            warmup=1.0,
        )
        assert result.p99_latency < 0.01
        assert result.drop_rate == 0.0

    def test_php_flood_starves_statics(self):
        extra = [
            OpenLoopSource(
                rate=5.0,
                mix=[
                    MixEntry(
                        factory=lambda: Operation(
                            "php_script", {"duration": 4.0}
                        ),
                        weight=1.0,
                    )
                ],
                client_id="php",
                start_time=1.0,
            )
        ]
        result = run_simulation(
            self.factory(),
            single_op_workload("static", 400.0, extra=extra),
            duration=10.0,
            warmup=2.0,
        )
        assert result.p99_latency > 0.1

    def test_accept_queue_overflow_becomes_503(self):
        """A tiny queue drops excess requests instead of crashing."""
        result = run_simulation(
            self.factory(max_clients=2, accept_queue=4),
            single_op_workload("php_script", 30.0, params={"duration": 1.0}),
            duration=5.0,
        )
        counts = result.collector.status_counts()
        assert counts[RequestStatus.DROPPED] > 0


class TestSolr:
    def factory(self):
        def build(env, controller, rng):
            return Solr(env, controller, rng)

        return build

    def test_queries_healthy_baseline(self):
        result = run_simulation(
            self.factory(),
            single_op_workload("query", 400.0),
            duration=5.0,
            warmup=1.0,
        )
        assert result.p99_latency < 0.02

    def test_boolean_query_convoys_on_index_lock(self):
        extra = [
            ScheduledOp(
                at=1.0,
                factory=lambda: Operation("boolean_query", {"duration": 4.0}),
            )
        ]
        result = run_simulation(
            self.factory(),
            single_op_workload("query", 400.0, extra=extra),
            duration=8.0,
            warmup=2.0,
        )
        assert result.p99_latency > 0.5

    def test_atropos_cancels_boolean_query(self):
        extra = [
            ScheduledOp(
                at=1.0,
                factory=lambda: Operation("boolean_query", {"duration": 4.0}),
            )
        ]
        result = run_simulation(
            self.factory(),
            single_op_workload("query", 400.0, extra=extra),
            controller_factory=atropos_factory(),
            duration=8.0,
            warmup=2.0,
        )
        cancelled = {e.op_name for e in result.controller.cancellation.log}
        assert "boolean_query" in cancelled
        assert result.p99_latency < 0.2

    def test_range_queries_occupy_searcher_pool(self):
        extra = [
            OpenLoopSource(
                rate=4.0,
                mix=[
                    MixEntry(
                        factory=lambda: Operation(
                            "range_query", {"duration": 3.0}
                        ),
                        weight=1.0,
                    )
                ],
                client_id="range",
                start_time=1.0,
            )
        ]
        result = run_simulation(
            self.factory(),
            single_op_workload("query", 400.0, extra=extra),
            duration=8.0,
            warmup=2.0,
        )
        assert result.p99_latency > 0.05


class TestEtcd:
    def factory(self):
        def build(env, controller, rng):
            return Etcd(env, controller, rng)

        return build

    def mixed_workload(self, extra=None):
        def build(app, rng):
            sources = [
                OpenLoopSource(
                    rate=250.0,
                    mix=[
                        MixEntry(
                            factory=lambda: Operation("get", {}), weight=0.75
                        ),
                        MixEntry(
                            factory=lambda: Operation("put", {}), weight=0.25
                        ),
                    ],
                )
            ]
            if extra:
                sources.extend(extra)
            return Workload(sources)

        return build

    def test_mixed_load_healthy(self):
        result = run_simulation(
            self.factory(), self.mixed_workload(), duration=5.0, warmup=1.0
        )
        assert result.p99_latency < 0.05
        assert result.drop_rate == 0.0

    def test_range_read_convoys_writers(self):
        extra = [
            ScheduledOp(
                at=1.0,
                factory=lambda: Operation("range_read", {"duration": 4.0}),
            )
        ]
        result = run_simulation(
            self.factory(),
            self.mixed_workload(extra),
            duration=8.0,
            warmup=2.0,
        )
        assert result.p99_latency > 0.5

    def test_atropos_cancels_range_read(self):
        extra = [
            ScheduledOp(
                at=1.0,
                factory=lambda: Operation("range_read", {"duration": 4.0}),
            )
        ]
        result = run_simulation(
            self.factory(),
            self.mixed_workload(extra),
            controller_factory=atropos_factory(slo=0.03),
            duration=8.0,
            warmup=2.0,
        )
        cancelled = {e.op_name for e in result.controller.cancellation.log}
        assert "range_read" in cancelled
        assert result.p99_latency < 0.2
