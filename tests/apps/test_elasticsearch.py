"""Integration tests for the Elasticsearch model (cases c10-c13)."""

import pytest

from repro.apps.base import Operation
from repro.apps.elasticsearch import Elasticsearch, ElasticsearchConfig
from repro.core import Atropos, AtroposConfig
from repro.experiments import run_simulation
from repro.workloads import MixEntry, OpenLoopSource, ScheduledOp, Workload


def es_factory(config=None):
    def build(env, controller, rng):
        return Elasticsearch(env, controller, rng, config=config)

    return build


def search_workload(rate=300.0, extra=None):
    def build(app, rng):
        sources = [
            OpenLoopSource(
                rate=rate,
                mix=[
                    MixEntry(
                        factory=lambda: Operation("search", {}), weight=1.0
                    )
                ],
            )
        ]
        if extra:
            sources.extend(extra)
        return Workload(sources)

    return build


def atropos_factory(slo=0.02):
    def build(env):
        return Atropos(env, AtroposConfig(slo_latency=slo))

    return build


class TestBaseline:
    def test_searches_fast_with_warm_cache(self):
        result = run_simulation(
            es_factory(), search_workload(), duration=5.0, warmup=1.0
        )
        assert result.p99_latency < 0.02
        assert result.app.gc_pauses == 0


class TestQueryCache:
    def test_large_search_floods_cache(self):
        extra = [
            ScheduledOp(at=1.0, factory=lambda: Operation("large_search", {}))
        ]
        clean = run_simulation(
            es_factory(), search_workload(), duration=8.0, warmup=2.0
        )
        flooded = run_simulation(
            es_factory(), search_workload(extra=extra), duration=8.0,
            warmup=2.0,
        )
        assert flooded.p99_latency > clean.p99_latency * 2

    def test_atropos_cancels_large_search(self):
        extra = [
            ScheduledOp(at=1.0, factory=lambda: Operation("large_search", {}))
        ]
        result = run_simulation(
            es_factory(),
            search_workload(extra=extra),
            controller_factory=atropos_factory(),
            duration=8.0,
            warmup=2.0,
        )
        cancelled = {e.op_name for e in result.controller.cancellation.log}
        assert "large_search" in cancelled
        # Cancellation released the pinned cache entries.
        assert result.app.query_cache.resident_pages("hot-filters") > 500


class TestHeapGC:
    def agg_workload(self):
        extra = [
            ScheduledOp(
                at=1.0,
                factory=lambda: Operation(
                    "nested_aggregation", {"blocks": 1300}
                ),
            )
        ]
        return search_workload(rate=250.0, extra=extra)

    def test_aggregation_triggers_gc_storm(self):
        result = run_simulation(
            es_factory(), self.agg_workload(), duration=8.0, warmup=2.0
        )
        assert result.app.gc_pauses >= 1
        assert result.p99_latency > 0.1

    def test_atropos_cancel_frees_heap_and_stops_gc(self):
        result = run_simulation(
            es_factory(),
            self.agg_workload(),
            controller_factory=atropos_factory(),
            duration=8.0,
            warmup=2.0,
        )
        cancelled = {e.op_name for e in result.controller.cancellation.log}
        assert "nested_aggregation" in cancelled
        # Heap back to the baseline allocation after the cancel.
        assert result.app.heap.used_pages <= 700
        assert result.p99_latency < 0.1


class TestCpuContention:
    def test_long_queries_queue_searches(self):
        extra = [
            OpenLoopSource(
                rate=8.0,
                mix=[
                    MixEntry(
                        factory=lambda: Operation(
                            "long_query", {"cpu_seconds": 3.0}
                        ),
                        weight=1.0,
                    )
                ],
                client_id="analytics",
                start_time=1.0,
            )
        ]
        clean = run_simulation(
            es_factory(), search_workload(rate=450.0), duration=8.0,
            warmup=2.0,
        )
        loaded = run_simulation(
            es_factory(), search_workload(rate=450.0, extra=extra),
            duration=8.0, warmup=2.0,
        )
        assert loaded.p99_latency > clean.p99_latency * 2
        # The CPU usage ledger attributes the burn to the long queries.
        cpu_by_owner = loaded.app.cpu.usage
        long_query_burn = sum(
            t for owner, t in cpu_by_owner.items()
            if getattr(owner, "op_name", "") == "long_query"
        )
        assert long_query_burn > 5.0


class TestDocLock:
    def test_update_by_query_blocks_indexing(self):
        def build(app, rng):
            return Workload(
                [
                    OpenLoopSource(
                        rate=250.0,
                        mix=[
                            MixEntry(
                                factory=lambda: Operation("search", {}),
                                weight=0.6,
                            ),
                            MixEntry(
                                factory=lambda: Operation("indexing", {}),
                                weight=0.4,
                            ),
                        ],
                    ),
                    ScheduledOp(
                        at=1.0,
                        factory=lambda: Operation(
                            "update_by_query", {"duration": 4.0}
                        ),
                    ),
                ]
            )

        result = run_simulation(es_factory(), build, duration=8.0, warmup=2.0)
        assert result.p99_latency > 0.5
