"""Unit tests for the tracer core: spans, tracks, null fast path."""

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_active_tracer,
    owner_label,
    set_active_tracer,
    tracing,
)


class TestOwnerLabel:
    def test_none_is_anon(self):
        assert owner_label(None) == "anon"

    def test_string_passes_through(self):
        assert owner_label("client-3") == "client-3"

    def test_task_like_uses_op_and_key(self):
        class FakeTask:
            op_name = "select"
            key = 7

        assert owner_label(FakeTask()) == "select#7"

    def test_named_object_uses_name(self):
        class Named:
            name = "buffer_pool"

        assert owner_label(Named()) == "buffer_pool"

    def test_fallback_is_type_name(self):
        assert owner_label(3.5) == "float"


class TestSpans:
    def test_complete_span_emits_x_event(self):
        tracer = Tracer()
        span = tracer.begin(1.0, "process", "worker", "proc:worker", w=1)
        span.end(3.5, outcome="finished")
        events = [e for e in tracer.events if e["ph"] == "X"]
        assert len(events) == 1
        event = events[0]
        assert event["name"] == "worker"
        assert event["ts"] == 1_000_000.0
        assert event["dur"] == 2_500_000.0
        assert event["args"] == {"w": 1, "outcome": "finished"}

    def test_span_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin(0.0, "process", "p", "t")
        span.end(1.0)
        span.end(2.0)
        assert len([e for e in tracer.events if e["ph"] == "X"]) == 1

    def test_nested_spans_close_independently(self):
        tracer = Tracer()
        outer = tracer.begin(0.0, "process", "outer", "t")
        inner = tracer.begin(1.0, "process", "inner", "t")
        inner.end(2.0)
        outer.end(4.0)
        xs = {e["name"]: e for e in tracer.events if e["ph"] == "X"}
        assert xs["inner"]["dur"] == 1_000_000.0
        assert xs["outer"]["dur"] == 4_000_000.0
        # Inner closed first, so it appears first.
        names = [e["name"] for e in tracer.events if e["ph"] == "X"]
        assert names == ["inner", "outer"]

    def test_close_open_spans_flags_unfinished(self):
        tracer = Tracer()
        tracer.begin(2.0, "process", "b", "t")
        tracer.begin(1.0, "process", "a", "t")
        tracer.close_open_spans(5.0)
        xs = [e for e in tracer.events if e["ph"] == "X"]
        # Deterministic order: by start time.
        assert [e["name"] for e in xs] == ["a", "b"]
        assert all(e["args"]["unfinished"] for e in xs)
        tracer.close_open_spans(9.0)  # second call is a no-op
        assert len([e for e in tracer.events if e["ph"] == "X"]) == 2

    def test_async_ids_are_sequential(self):
        tracer = Tracer()
        a = tracer.async_begin(0.0, "request", "r1", "req")
        b = tracer.async_begin(0.0, "request", "r2", "req")
        assert (a, b) == (1, 2)
        tracer.async_end(1.0, "request", "r1", "req", a)
        begins = [e for e in tracer.events if e["ph"] == "b"]
        ends = [e for e in tracer.events if e["ph"] == "e"]
        assert [e["id"] for e in begins] == [1, 2]
        assert [e["id"] for e in ends] == [1]


class TestRunsAndTracks:
    def test_runs_become_processes_with_metadata(self):
        tracer = Tracer()
        pid1 = tracer.new_run("first")
        tracer.instant(0.0, "misc", "x", "track-a")
        pid2 = tracer.new_run("second")
        tracer.instant(0.0, "misc", "y", "track-a")
        assert (pid1, pid2) == (1, 2)
        assert tracer.runs == ["first", "second"]
        metas = [e for e in tracer.events if e["ph"] == "M"]
        names = [(e["name"], e["args"]["name"]) for e in metas]
        assert ("process_name", "first") in names
        assert ("process_name", "second") in names
        # track-a gets a fresh tid in each run.
        instants = [e for e in tracer.events if e["ph"] == "i"]
        assert [(e["pid"], e["tid"]) for e in instants] == [(1, 1), (2, 1)]

    def test_implicit_run_when_event_precedes_new_run(self):
        tracer = Tracer()
        tracer.counter(0.0, "depth", "lock:t", queued=1)
        assert tracer.runs == ["run"]

    def test_max_runs_gates_accepting_runs(self):
        tracer = Tracer(max_runs=1)
        assert tracer.accepting_runs
        tracer.new_run("only")
        assert not tracer.accepting_runs
        assert Tracer().accepting_runs  # unlimited by default

    def test_counts_by_category(self):
        tracer = Tracer()
        tracer.instant(0.0, "lock", "a", "t")
        tracer.instant(0.0, "lock", "b", "t")
        tracer.counter(0.0, "d", "t", x=1)
        assert tracer.counts == {"lock": 2, "counter": 1}


class TestNullTracer:
    def test_everything_is_a_noop(self):
        null = NullTracer()
        assert not null.enabled
        assert not null.accepting_runs
        span = null.begin(0.0, "c", "n", "t")
        span.end(1.0)
        null.instant(0.0, "c", "n", "t")
        null.async_end(1.0, "c", "n", "t", null.async_begin(0.0, "c", "n", "t"))
        null.counter(0.0, "n", "t", v=1)
        null.audit({"verdict": "cancelled"})
        null.close_open_spans(9.0)
        assert len(null) == 0
        assert null.events == []
        assert null.audits == []

    def test_active_tracer_defaults_to_null(self):
        assert get_active_tracer() is NULL_TRACER

    def test_tracing_context_installs_and_restores(self):
        tracer = Tracer()
        with tracing(tracer) as active:
            assert active is tracer
            assert get_active_tracer() is tracer
        assert get_active_tracer() is NULL_TRACER

    def test_set_active_tracer_none_resets(self):
        tracer = Tracer()
        set_active_tracer(tracer)
        try:
            assert get_active_tracer() is tracer
        finally:
            set_active_tracer(None)
        assert get_active_tracer() is NULL_TRACER
