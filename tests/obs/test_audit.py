"""Decision-audit trail and tracing/simulation non-interference tests.

The acceptance invariant: every cancellation the controller issues has a
matching audit record naming the contended resource, the detector signal
that triggered the cycle, and the ranked candidate evidence behind the
verdict.
"""

import pytest

from repro.core import (
    Atropos,
    AtroposConfig,
    GetNextProgress,
    ResourceType,
)
from repro.obs import Tracer, tracing
from repro.sim import Environment, Interrupt, RequestRecord, RequestStatus


def make_atropos(env, **overrides):
    settings = dict(
        slo_latency=0.05,
        detection_period=0.1,
        min_window_samples=5,
        cancel_cooldown=0.05,
        contention_threshold=0.25,
    )
    settings.update(overrides)
    return Atropos(env, AtroposConfig(**settings))


def feed_completions(atropos, n, latency, start=0.0):
    for i in range(n):
        finish = start + i * 0.001
        atropos.observe_completion(
            RequestRecord(
                request_id=i,
                op_name="op",
                client_id="c",
                arrival_time=finish - latency,
                finish_time=finish,
                status=RequestStatus.COMPLETED,
            )
        )


def run_cancellation_scenario(env):
    """Memory hog + SLO violations: the monitor cancels the hog."""
    atropos = make_atropos(env)
    mem = atropos.register_resource("pool", ResourceType.MEMORY)
    atropos.start()
    holder = {}

    def body(env):
        progress = GetNextProgress(100)
        progress.advance(10)
        task = atropos.create_cancel(op_name="hog", progress=progress)
        holder["task"] = task
        atropos.get_resource(task, mem, 1000)
        try:
            yield env.timeout(1000.0)
        except Interrupt as exc:
            holder["signal"] = exc.cause
        atropos.free_cancel(task)

    env.process(body(env))
    env.run(until=1e-6)
    feed_completions(atropos, 20, latency=1.0)
    atropos.slow_by_resource(holder["task"], mem, delay=0.5, events=500)
    env.run(until=0.5)
    assert atropos.cancels_issued >= 1  # scenario sanity
    return atropos, holder


class TestAuditCompleteness:
    def test_every_cancellation_has_an_audit(self):
        atropos, holder = run_cancellation_scenario(Environment())
        cancelled = atropos.decision_log.cancellation_audits()
        assert len(cancelled) == atropos.cancels_issued
        audit = cancelled[0]
        # ...naming the contended resource,
        assert audit.culprit_resource == "pool"
        assert any(
            r.resource == "pool" and r.overloaded for r in audit.resources
        )
        # ...the detector signal that triggered the cycle,
        assert audit.detector.tail_latency > 0.05
        assert audit.detector.samples >= 5
        # ...and the ranked candidate evidence behind the verdict.
        assert audit.candidates
        selected = [c for c in audit.candidates if c.selected]
        assert len(selected) == 1
        assert selected[0].task_key == audit.cancelled_task_key
        assert selected[0].op_name == audit.cancelled_op_name == "hog"
        assert "pool" in selected[0].gains
        assert selected[0].score is not None

    def test_audit_for_task_lookup(self):
        atropos, holder = run_cancellation_scenario(Environment())
        key = holder["task"].key
        audit = atropos.decision_log.audit_for_task(key)
        assert audit is not None
        assert audit.verdict == "cancelled"
        assert atropos.decision_log.audit_for_task("no-such-key") is None

    def test_audit_payload_is_json_ready(self):
        import json

        atropos, _ = run_cancellation_scenario(Environment())
        for audit in atropos.decision_log.audits:
            payload = audit.to_payload()
            json.dumps(payload, sort_keys=True, allow_nan=False)
            assert payload["verdict"] in (
                "cancelled", "cancel-blocked", "no-candidate",
                "regular-overload",
            )

    def test_traced_run_mirrors_audits_into_tracer(self):
        tracer = Tracer()
        tracer.new_run("audit-run")
        env = Environment(tracer=tracer)
        atropos, _ = run_cancellation_scenario(env)
        assert len(tracer.audits) == len(atropos.decision_log.audits)
        decision_instants = [
            e for e in tracer.events
            if e["ph"] == "i" and e.get("cat") == "decision"
        ]
        assert len(decision_instants) == len(tracer.audits)
        assert any(
            e["name"].startswith("cancelled hog#")
            for e in decision_instants
        )

    def test_regular_overload_audited_without_candidates_selected(self):
        env = Environment()
        atropos = make_atropos(env)
        atropos.register_resource("pool", ResourceType.MEMORY)
        atropos.start()
        feed_completions(atropos, 20, latency=1.0)  # no contended resource
        env.run(until=0.35)
        assert atropos.regular_overloads >= 1
        audits = atropos.decision_log.audits
        assert audits
        assert all(a.verdict == "regular-overload" for a in audits)
        assert all(a.cancelled_task_key is None for a in audits)


class TestTracingNonInterference:
    def _lock_case_summary(self, tracer=None):
        from repro.cases import get_case

        case = get_case("c1")
        run = lambda: case.run(include_culprit=False, seed=1, duration=4.0)
        if tracer is None:
            return run()
        with tracing(tracer):
            return run()

    def test_traced_run_matches_untraced_summary(self):
        """Tracing must observe, never perturb: same seed, same results."""
        untraced = self._lock_case_summary()
        tracer = Tracer()
        traced = self._lock_case_summary(tracer)
        assert tracer.events  # the traced run actually traced
        assert traced.throughput == untraced.throughput
        assert traced.p99_latency == untraced.p99_latency
        assert traced.drop_rate == untraced.drop_rate

    def test_harness_attaches_and_labels_runs(self):
        tracer = Tracer(max_runs=1)
        with tracing(tracer):
            self._lock_case_summary(tracer=None)  # active tracer picks it up
            assert tracer.runs == ["run-1:seed=1"]
            # Second run exceeds max_runs: executes untraced.
            events_before = len(tracer.events)
            self._lock_case_summary(tracer=None)
        assert tracer.runs == ["run-1:seed=1"]
        assert len(tracer.events) == events_before

    def test_untraced_run_emits_nothing(self):
        from repro.obs import NULL_TRACER

        env = Environment()
        assert env.tracer is NULL_TRACER
        atropos, _ = run_cancellation_scenario(env)
        assert len(NULL_TRACER.events) == 0
        assert len(NULL_TRACER.audits) == 0
