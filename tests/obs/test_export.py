"""Exporter tests: Chrome-trace schema, determinism, CSV flattening.

The scenario below drives every traced primitive -- processes, a lock,
a thread pool, a memory pool, CPU, disk, and an interrupt -- through a
real :class:`Environment`, so the exported trace exercises each event
phase the hooks can produce.
"""

import json

from repro.obs import (
    Tracer,
    chrome_trace_payload,
    dumps_chrome_trace,
    render_trace_summary,
    utilization_rows,
    write_audit_json,
    write_chrome_trace,
    write_utilization_csv,
)
from repro.sim import Environment
from repro.sim.errors import Interrupt
from repro.sim.resources import CPU, DiskIO, MemoryPool, SyncLock, ThreadPool

#: ph values the Trace Event Format defines for what we emit.
KNOWN_PHASES = {"X", "b", "e", "i", "C", "M"}


def run_scenario(tracer):
    """One deterministic mixed-resource simulation, traced by `tracer`."""
    tracer.new_run("scenario")
    env = Environment(tracer=tracer)
    lock = SyncLock(env, "table")
    pool = ThreadPool(env, "workers", 1)
    mem = MemoryPool(env, "buffer", capacity_pages=10)
    cpu = CPU(env, "cpu0", cores=1)
    disk = DiskIO(env, "disk0", bandwidth_bytes_per_sec=1e6)

    def worker(env, name, pages, release=True):
        with pool.submit(owner=name) as slot:
            yield slot
            with lock.acquire(owner=name) as grant:
                yield grant
                mem.acquire(name, pages)
                yield from cpu.execute(name, 0.004)
                yield from disk.io(name, 2000)
            if release:
                mem.release(name)

    def doomed(env):
        # Queue behind w1's hold (w1 grabs the lock in the first instant).
        yield env.timeout(0.001)
        grant = lock.acquire(owner="doomed")
        try:
            yield grant
        except Interrupt:
            grant.close()  # abandoned while waiting

    env.process(worker(env, "w1", pages=8, release=False))
    env.process(worker(env, "w2", pages=6))  # evicts w1's resident pages
    victim = env.process(doomed(env))
    env.run(until=0.002)
    victim.interrupt("test")
    env.run(until=1.0)
    tracer.close_open_spans(env.now)
    return tracer


def test_scenario_covers_every_phase():
    tracer = run_scenario(Tracer())
    phases = {e["ph"] for e in tracer.events}
    assert phases == KNOWN_PHASES
    cats = set(tracer.counts)
    assert {"lock", "tpool", "mem", "cpu", "disk", "process"} <= cats


def test_chrome_trace_schema():
    tracer = run_scenario(Tracer())
    payload = chrome_trace_payload(tracer)
    assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert payload["otherData"]["runs"] == ["scenario"]
    for event in payload["traceEvents"]:
        assert event["ph"] in KNOWN_PHASES
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
            continue
        assert "ts" in event and event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] in ("b", "e"):
            assert isinstance(event["id"], int)
        if event["ph"] == "C":
            assert all(
                isinstance(v, (int, float)) for v in event["args"].values()
            )


def test_trace_bytes_are_deterministic():
    first = dumps_chrome_trace(run_scenario(Tracer()))
    second = dumps_chrome_trace(run_scenario(Tracer()))
    assert first == second
    json.loads(first)  # and it is valid JSON


def test_write_chrome_trace_round_trip(tmp_path):
    tracer = run_scenario(Tracer())
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer, path)
    loaded = json.loads(path.read_text())
    assert loaded == chrome_trace_payload(tracer)


def test_utilization_rows_flatten_counters(tmp_path):
    tracer = run_scenario(Tracer())
    rows = utilization_rows(tracer)
    assert rows  # the scenario samples several counters
    for run, time_s, resource, series, value in rows:
        assert run == "scenario"
        assert float(time_s) >= 0
        assert isinstance(resource, str) and isinstance(series, str)
        assert isinstance(value, (int, float))
    resources = {r for _, _, r, _, _ in rows}
    assert "lock:table" in resources
    path = tmp_path / "util.csv"
    write_utilization_csv(tracer, path)
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "run,time_s,resource,series,value"
    assert len(lines) == len(rows) + 1


def test_write_audit_json(tmp_path):
    path = tmp_path / "audits.json"
    audits = [{"verdict": "cancelled", "time": 1.5}]
    write_audit_json(audits, path)
    assert json.loads(path.read_text()) == {"audits": audits}


def test_render_trace_summary_mentions_counts():
    tracer = run_scenario(Tracer())
    summary = render_trace_summary(tracer)
    assert "runs traced:" in summary
    assert "lock" in summary
