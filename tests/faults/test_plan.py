"""Tests for the FaultPlan schema: validation, canonical order, round trips."""

import json
import pickle

import pytest

from repro.faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    burst,
    cancel_drop,
    degrade,
    detector_noise,
    named_plans,
    resolve_plan,
    uncancellable,
)


def sample_plan():
    return FaultPlan.of(
        degrade("buffer_pool", 0.5, at=4.0, duration=4.0),
        cancel_drop(0.5, at=2.0, duration=6.0),
        burst(2.0, at=4.0, duration=2.0),
    )


# ----------------------------------------------------------------------
# Fault validation
# ----------------------------------------------------------------------

def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        Fault(kind="meteor-strike")


def test_missing_required_param_rejected():
    with pytest.raises(ValueError, match="missing params"):
        Fault(kind="degrade", params={"resource": "buffer_pool"})


def test_unknown_param_rejected():
    with pytest.raises(ValueError, match="unknown param"):
        Fault(kind="burst", params={"factor": 2.0, "color": "red"})


def test_negative_at_rejected():
    with pytest.raises(ValueError):
        Fault(kind="uncancellable", at=-1.0)


def test_nonpositive_duration_rejected():
    with pytest.raises(ValueError):
        Fault(kind="uncancellable", at=1.0, duration=0.0)


def test_optional_defaults_merged():
    fault = detector_noise(noise=0.5, at=1.0)
    assert fault.param("bias") == 1.0
    assert fault.param("lag") == 0.0


def test_every_kind_has_schema_entry():
    for kind, entry in FAULT_KINDS.items():
        required, optional, description = entry
        assert isinstance(description, str) and description
        assert not set(required) & set(optional), kind


# ----------------------------------------------------------------------
# Plan semantics
# ----------------------------------------------------------------------

def test_plan_sorted_by_time():
    plan = sample_plan()
    times = [fault.at for fault in plan]
    assert times == sorted(times)


def test_plan_order_is_canonical():
    a = FaultPlan.of(burst(2.0, at=4.0), uncancellable(at=1.0))
    b = FaultPlan.of(uncancellable(at=1.0), burst(2.0, at=4.0))
    assert a == b
    assert a.to_dict() == b.to_dict()


def test_last_end_covers_open_ended_faults():
    plan = FaultPlan.of(
        burst(2.0, at=4.0, duration=2.0), uncancellable(at=7.0)
    )
    assert plan.last_end() == 7.0
    assert sample_plan().last_end() == 8.0


def test_empty_plan():
    plan = FaultPlan.of()
    assert plan.is_empty
    assert len(plan) == 0
    assert plan.last_end() == 0.0
    assert FaultPlan.from_dict({}) == plan
    assert FaultPlan.from_dict(None) == plan


def test_extended_returns_new_plan():
    base = FaultPlan.of(burst(2.0, at=4.0))
    extended = base.extended(uncancellable(at=1.0))
    assert len(base) == 1
    assert len(extended) == 2


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------

def test_dict_round_trip():
    plan = sample_plan()
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_json_round_trip():
    plan = sample_plan()
    blob = plan.to_json()
    json.loads(blob)  # valid JSON
    assert FaultPlan.from_json(blob) == plan


def test_pickle_round_trip():
    plan = sample_plan()
    assert pickle.loads(pickle.dumps(plan)) == plan


def test_params_canonicalized_to_json_types():
    fault = Fault(
        kind="degrade", params={"resource": "disk", "factor": 0.5}
    )
    rebuilt = Fault.from_dict(json.loads(json.dumps(fault.to_dict())))
    assert rebuilt == fault


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

def test_named_plans_are_valid_and_described():
    plans = named_plans()
    assert len(plans) >= 10
    for name, plan in plans.items():
        assert not plan.is_empty, name
        assert plan.describe()


def test_resolve_plan_by_name():
    assert resolve_plan("lossy-initiator") == named_plans()["lossy-initiator"]


def test_resolve_plan_from_file(tmp_path):
    plan = sample_plan()
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    assert resolve_plan(str(path)) == plan


def test_resolve_plan_unknown():
    with pytest.raises(KeyError):
        resolve_plan("no-such-plan")
