"""Tests for the FaultInjector runtime: per-kind behavior + determinism."""

import pytest

from repro.campaign.spec import load_all_families
from repro.core.atropos import Atropos
from repro.core.config import AtroposConfig
from repro.core.decision_log import DecisionKind
from repro.experiments.harness import resolve_sim, run_simulation
from repro.faults import (
    FaultInjector,
    FaultPlan,
    SignalTap,
    burst,
    cancel_delay,
    cancel_drop,
    crash,
    degrade,
    detector_noise,
    partition,
    uncancellable,
)
from repro.sim import Environment
from repro.sim.resources.disk import DiskIO
from repro.sim.resources.pool import MemoryPool
from repro.sim.resources.threadpool import ThreadPool
from repro.sim.rng import Rng


class StubApp:
    """Bare attribute bag the injector scans for degradable resources."""

    def __init__(self, **resources):
        for key, value in resources.items():
            setattr(self, key, value)


def arm(env, plan, app=None, controller=None, driver=None, seed=0):
    injector = FaultInjector(env, plan, Rng(seed).fork("faults"))
    injector.arm(app=app, controller=controller, driver=driver)
    return injector


# ----------------------------------------------------------------------
# SignalTap
# ----------------------------------------------------------------------

def test_tap_bias_only():
    tap = SignalTap(Rng(0), bias=2.0)
    assert tap(1.0, 0.5) == 1.0


def test_tap_nan_passthrough():
    tap = SignalTap(Rng(0), noise=1.0, bias=2.0)
    out = tap(1.0, float("nan"))
    assert out != out


def test_tap_lag_reports_old_values():
    tap = SignalTap(Rng(0), lag=1.0)
    assert tap(0.0, 10.0) == 10.0
    assert tap(0.5, 20.0) == 10.0  # still within lag of the first sample
    assert tap(2.0, 30.0) == 20.0  # first sample aged out


def test_tap_noise_deterministic_and_nonnegative():
    a = SignalTap(Rng(7), noise=0.5)
    b = SignalTap(Rng(7), noise=0.5)
    outs = [a(t, 1.0) for t in range(20)]
    assert outs == [b(t, 1.0) for t in range(20)]
    assert all(v >= 0.0 for v in outs)
    assert outs != [1.0] * 20


# ----------------------------------------------------------------------
# Degrade / restore lifecycle
# ----------------------------------------------------------------------

def test_degrade_applies_and_restores():
    env = Environment()
    pool = ThreadPool(env, "app.workers", workers=8)
    app = StubApp(workers=pool)
    plan = FaultPlan.of(degrade("workers", 0.5, at=1.0, duration=2.0))
    injector = arm(env, plan, app=app)
    env.run(until=0.5)
    assert pool.workers == 8
    env.run(until=2.0)
    assert pool.workers == 4
    env.run(until=4.0)
    assert pool.workers == 8
    phases = [(e.phase, e.applied) for e in injector.events]
    assert phases == [("inject", True), ("restore", True)]


def test_degrade_matches_dotted_suffix():
    env = Environment()
    pool = MemoryPool(env, "mysql.buffer_pool", capacity_pages=100)
    app = StubApp(bp=pool)
    injector = arm(
        env, FaultPlan.of(degrade("buffer_pool", 0.5, at=0.0)), app=app
    )
    env.run(until=0.1)
    assert pool.capacity_pages == 50
    assert injector.events[0].applied


def test_degrade_missing_resource_is_recorded_not_fatal():
    env = Environment()
    app = StubApp()
    injector = arm(
        env, FaultPlan.of(degrade("buffer_pool", 0.5, at=0.0)), app=app
    )
    env.run(until=0.1)
    assert not injector.events[0].applied
    assert "no degradable resource" in injector.events[0].detail


def test_degrade_lock_reports_no_hook_not_no_match():
    """A lock held in a list attribute resolves by name and reports its
    missing degrade() hook (the lock.py docstring contract), instead of
    the misleading "no degradable resource matching"."""
    from repro.sim.resources import SyncLock

    env = Environment()
    locks = [
        SyncLock(env, f"mongodb.collection_lock.{i}") for i in range(2)
    ]
    app = StubApp(collection_locks=locks)
    injector = arm(
        env,
        FaultPlan.of(degrade("collection_lock.1", 0.5, at=0.0)),
        app=app,
    )
    env.run(until=0.1)
    event = injector.events[0]
    assert not event.applied
    assert "mongodb.collection_lock.1 has no degrade() hook" in event.detail


def test_degrade_finds_degradable_resources_inside_lists():
    env = Environment()
    pools = [
        MemoryPool(env, f"app.pool.{i}", capacity_pages=100)
        for i in range(2)
    ]
    app = StubApp(pools=pools)
    injector = arm(
        env, FaultPlan.of(degrade("pool.0", 0.5, at=0.0)), app=app
    )
    env.run(until=0.1)
    assert injector.events[0].applied
    assert pools[0].capacity_pages == 50
    assert pools[1].capacity_pages == 100


def test_disk_degrade_scales_bandwidth_and_latency():
    env = Environment()
    disk = DiskIO(
        env, "pg.disk", bandwidth_bytes_per_sec=100.0, op_latency=0.01
    )
    app = StubApp(disk=disk)
    arm(env, FaultPlan.of(degrade("disk", 0.25, at=0.0, duration=1.0)), app=app)
    env.run(until=0.5)
    assert disk.bandwidth == pytest.approx(25.0)
    assert disk.op_latency == pytest.approx(0.04)
    env.run(until=2.0)
    assert disk.bandwidth == pytest.approx(100.0)
    assert disk.op_latency == pytest.approx(0.01)


# ----------------------------------------------------------------------
# Signal / cancellation faults against a real controller
# ----------------------------------------------------------------------

def make_atropos(env):
    return Atropos(env, AtroposConfig(slo_latency=0.02))


def test_signal_taps_installed_and_removed():
    env = Environment()
    controller = make_atropos(env)
    plan = FaultPlan.of(detector_noise(noise=0.5, at=1.0, duration=1.0))
    arm(env, plan, controller=controller)
    env.run(until=1.5)
    assert controller.detector.fault_tap is not None
    env.run(until=3.0)
    assert controller.detector.fault_tap is None


def test_cancellation_faults_set_and_clear_manager_state():
    env = Environment()
    controller = make_atropos(env)
    plan = FaultPlan.of(
        cancel_drop(0.75, at=1.0, duration=1.0),
        cancel_delay(0.5, at=3.0, duration=1.0),
        uncancellable(at=5.0, duration=1.0),
    )
    arm(env, plan, controller=controller)
    manager = controller.cancellation
    env.run(until=1.5)
    assert manager.drop_probability == 0.75
    assert manager.fault_rng is not None
    env.run(until=2.5)
    assert manager.drop_probability == 0.0
    env.run(until=3.5)
    assert manager.initiator_delay == 0.5
    env.run(until=5.5)
    assert manager.initiator_delay == 0.0
    assert manager.suspended
    env.run(until=7.0)
    assert not manager.suspended


def test_faults_recorded_in_decision_log():
    env = Environment()
    controller = make_atropos(env)
    arm(
        env,
        FaultPlan.of(uncancellable(at=1.0, duration=1.0)),
        controller=controller,
    )
    env.run(until=3.0)
    fault_events = controller.decision_log.events_of(DecisionKind.FAULT)
    assert len(fault_events) == 2
    assert "inject uncancellable" in fault_events[0].summary
    assert "restore uncancellable" in fault_events[1].summary


def test_signal_fault_without_detector_is_noop():
    env = Environment()
    injector = arm(env, FaultPlan.of(detector_noise(noise=0.5, at=0.0)))
    env.run(until=0.1)
    assert not injector.events[0].applied


def test_partition_without_nodes_drops_cancel_signals():
    env = Environment()
    controller = make_atropos(env)
    arm(
        env,
        FaultPlan.of(partition(at=1.0, duration=1.0)),
        controller=controller,
    )
    env.run(until=1.5)
    assert controller.cancellation.drop_probability == 1.0
    env.run(until=3.0)
    assert controller.cancellation.drop_probability == 0.0


def test_crash_partitions_registered_nodes():
    from repro.core.distributed import Node

    env = Environment()
    node = Node("worker-1")
    injector = FaultInjector(
        env, FaultPlan.of(crash(at=1.0, duration=1.0)), Rng(0)
    )
    injector.register_node(node)
    injector.arm()
    env.run(until=1.5)
    assert node.crashed and not node.reachable
    env.run(until=3.0)
    assert not node.crashed and node.reachable


# ----------------------------------------------------------------------
# End-to-end through the harness (real case, real workload)
# ----------------------------------------------------------------------

def run_case_c1(plan, seed=0):
    load_all_families()
    build = resolve_sim("case")({"case_id": "c1", "system": "atropos"})
    return run_simulation(
        build.app_factory,
        build.workload_factory,
        build.controller_factory,
        duration=build.duration,
        seed=seed,
        warmup=build.warmup,
        fault_plan=plan,
    )


def test_faulted_run_deterministic_and_differs_from_clean():
    plan = FaultPlan.of(
        cancel_drop(0.5, at=2.0, duration=6.0),
        burst(1.5, at=4.0, duration=2.0),
    )
    clean = run_case_c1(None)
    faulted_a = run_case_c1(plan)
    faulted_b = run_case_c1(plan)
    assert clean.faults is None
    assert faulted_a.summary == faulted_b.summary
    assert [e.to_dict() for e in faulted_a.faults.events] == [
        e.to_dict() for e in faulted_b.faults.events
    ]
    # The burst visibly changes the run (more offered load).
    assert faulted_a.summary != clean.summary


def test_burst_raises_offered_load():
    plan = FaultPlan.of(burst(2.0, at=2.0, duration=8.0))
    clean = run_case_c1(None)
    faulted = run_case_c1(plan)
    assert faulted.collector.offered > clean.collector.offered * 1.3


def test_fault_trace_instants_emitted():
    from repro.obs import Tracer, tracing

    plan = FaultPlan.of(uncancellable(at=2.0, duration=2.0))
    tracer = Tracer()
    with tracing(tracer):
        run_case_c1(plan)
    fault_events = [
        e for e in tracer.events if e.get("cat") == "fault"
    ]
    assert len(fault_events) == 2


def test_faulted_run_stable_across_hash_seeds():
    """Regression: a degrade-lengthened scan overlap exposed hash-order
    nondeterminism in MySQL's backup drain (a set of identity-hashed
    events). Same sim in interpreters with different PYTHONHASHSEED
    must agree."""
    import os
    import subprocess
    import sys

    script = (
        "from repro.campaign.spec import load_all_families\n"
        "from repro.experiments.harness import resolve_sim, run_simulation\n"
        "from repro.faults import FaultPlan, degrade\n"
        "load_all_families()\n"
        "b = resolve_sim('case')({'case_id': 'c1', 'system': 'protego'})\n"
        "p = FaultPlan.of(degrade('buffer_pool', 0.5, at=4.0, duration=4.0))\n"
        "r = run_simulation(b.app_factory, b.workload_factory,\n"
        "                   b.controller_factory, duration=b.duration,\n"
        "                   seed=0, warmup=b.warmup, fault_plan=p)\n"
        "s = r.summary\n"
        "print(f'{s.throughput:.9f} {s.p99_latency:.12f} {s.drop_rate:.9f}')\n"
    )
    outputs = []
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
