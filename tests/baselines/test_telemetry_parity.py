"""Baseline controllers expose scrape-complete telemetry_snapshot()s.

PR 4 instrumented the ATROPOS core; the baselines used to scrape as
blanks.  The telemetry scraper reads ``snapshot["detector"]`` with the
keys ``overloaded`` / ``tail_latency`` / ``throughput`` / ``samples``,
so the window-driven baselines must provide that dict, and every
controller must report its own action counters.
"""

import pytest

from repro.baselines import controller_factory
from repro.sim import Environment

DETECTOR_KEYS = {"overloaded", "tail_latency", "throughput", "samples"}

#: Baselines whose control loop watches a latency window (and therefore
#: report detector-style signals to the scraper).
WINDOWED = ["seda", "breakwater", "parties"]
ALL_BASELINES = ["seda", "breakwater", "parties", "pbox", "darc", "protego"]


def build(name):
    return controller_factory(name, slo_latency=0.05)(Environment())


class TestSnapshotParity:
    @pytest.mark.parametrize("name", ALL_BASELINES)
    def test_snapshot_is_a_dict_with_cancel_counter(self, name):
        snap = build(name).telemetry_snapshot()
        assert isinstance(snap, dict)
        assert "cancels_issued" in snap

    @pytest.mark.parametrize("name", WINDOWED)
    def test_windowed_baselines_report_detector_signals(self, name):
        snap = build(name).telemetry_snapshot()
        assert DETECTOR_KEYS <= set(snap["detector"])
        assert snap["detector"]["overloaded"] in (0.0, 1.0)

    @pytest.mark.parametrize("name", WINDOWED)
    def test_windowed_baselines_report_admission_state(self, name):
        snap = build(name).telemetry_snapshot()
        assert "rejections" in snap["admission"]

    def test_pbox_reports_penalties(self):
        snap = build("pbox").telemetry_snapshot()
        assert snap["penalties"] == {"issued": 0, "active": 0}

    def test_protego_reports_drops(self):
        snap = build("protego").telemetry_snapshot()
        assert snap["drops"] == {"issued": 0, "open_waits": 0}

    def test_darc_reports_reservations(self):
        snap = build("darc").telemetry_snapshot()
        assert snap["reservations"]["pools"] == 0
        assert "reserved_fraction" in snap["reservations"]


class TestScraperConsumesBaselines:
    def test_scraped_run_has_detector_series_for_seda(self):
        from repro.apps.mysql import MySQL, light_mix
        from repro.experiments import run_simulation
        from repro.telemetry import TelemetrySession, telemetry_session
        from repro.workloads import OpenLoopSource, Workload

        session = TelemetrySession(interval=0.5)
        with telemetry_session(session):
            run_simulation(
                lambda env, ctl, rng: MySQL(env, ctl, rng),
                lambda app, rng: Workload(
                    [OpenLoopSource(rate=100.0, mix=light_mix(rng))]
                ),
                controller_factory("seda", 0.05),
                duration=2.0,
                seed=0,
                label="parity",
            )
        run = session.runs[0]
        names = {name for name, _, _, _ in run.registry.collect()}
        assert "repro_detector_overloaded" in names
        assert "repro_detector_window_samples" in names
