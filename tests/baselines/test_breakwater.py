"""Tests for the Breakwater baseline (credit-based admission)."""

import pytest

from repro.apps.base import Operation
from repro.apps.mysql import MySQL, light_mix
from repro.baselines import Breakwater, controller_factory
from repro.experiments import run_simulation
from repro.sim import Environment, RequestRecord, RequestStatus
from repro.workloads import OpenLoopSource, ScheduledOp, Workload


@pytest.fixture
def env():
    return Environment()


def feed(bw, n, latency):
    for i in range(n):
        finish = i * 0.001
        bw.observe_completion(
            RequestRecord(
                i, "op", "c", finish - latency, finish,
                RequestStatus.COMPLETED,
            )
        )


class TestCreditPool:
    def test_credits_shrink_on_delay_violation(self, env):
        bw = Breakwater(env, target_delay=0.01, adjust_period=0.1,
                        initial_credits=100)
        bw.start()
        feed(bw, 30, latency=0.5)
        env.run(until=0.35)
        assert bw.credits < 100

    def test_credits_grow_when_healthy(self, env):
        bw = Breakwater(env, target_delay=0.5, adjust_period=0.1,
                        initial_credits=10)
        bw.start()
        feed(bw, 30, latency=0.001)
        env.run(until=0.55)
        assert bw.credits > 10

    def test_credits_bounded(self, env):
        bw = Breakwater(env, target_delay=0.01, adjust_period=0.05,
                        initial_credits=8, min_credits=4)
        bw.start()
        feed(bw, 50, latency=1.0)
        env.run(until=5.0)
        assert bw.credits >= 4

    def test_admission_limited_by_inflight_vs_credits(self, env):
        bw = Breakwater(env, initial_credits=2, overcommit=1.0)
        assert bw.admit("op", "c")
        bw.create_cancel()
        bw.create_cancel()
        assert not bw.admit("op", "c")
        assert bw.rejections == 1

    def test_free_cancel_returns_credit(self, env):
        bw = Breakwater(env, initial_credits=1, overcommit=1.0)
        task = bw.create_cancel()
        assert not bw.admit("op", "c")
        bw.free_cancel(task)
        assert bw.admit("op", "c")


class TestEndToEnd:
    def test_sheds_demand_overload(self):
        """Demand overload: Breakwater keeps served latency near target."""

        def workload(app, rng):
            return Workload(
                [OpenLoopSource(rate=3500.0, mix=light_mix(rng))]
            )

        uncontrolled = run_simulation(
            lambda env, c, rng: MySQL(env, c, rng), workload,
            duration=8.0, warmup=2.0,
        )
        controlled = run_simulation(
            lambda env, c, rng: MySQL(env, c, rng),
            workload,
            controller_factory=controller_factory("breakwater", 0.02),
            duration=8.0,
            warmup=2.0,
        )
        assert controlled.drop_rate > 0.1  # load shed at admission
        assert controlled.p99_latency < uncontrolled.p99_latency / 2

    def test_indiscriminate_against_resource_overload(self):
        """The paper's critique: the global delay signal cannot find the
        culprit, so Breakwater sheds victims while the convoy persists."""
        from repro.cases import get_case

        case = get_case("c1")
        baseline = case.run_baseline()
        bw = case.run(
            controller_factory=controller_factory(
                "breakwater", case.slo_latency
            )
        )
        atropos = case.run(
            controller_factory=controller_factory(
                "atropos", case.slo_latency
            )
        )
        # Breakwater loses throughput and/or drops victims...
        assert (
            bw.throughput < baseline.throughput * 0.9
            or bw.drop_rate > 0.05
        )
        # ...while Atropos keeps both good.
        assert atropos.throughput > baseline.throughput * 0.9
        assert atropos.drop_rate < 0.01
