"""Tests for the DAGOR and Autothrottle baselines."""

import zlib

import pytest

from repro.baselines.autothrottle import Autothrottle, AutothrottleTower
from repro.baselines.dagor import (
    BUSINESS_LEVELS,
    Dagor,
    compound_priority,
    user_level,
)
from repro.sim import Environment, RequestRecord, RequestStatus
from repro.sim.resources import ThreadPool


@pytest.fixture
def env():
    return Environment()


def feed(controller, n, latency, start=0.0):
    for i in range(n):
        finish = start + i * 0.001
        controller.observe_completion(
            RequestRecord(
                i, "op", "c", finish - latency, finish,
                RequestStatus.COMPLETED,
            )
        )


class TestCompoundPriority:
    def test_user_level_is_crc32_not_hash(self):
        assert user_level("alice", 8) == zlib.crc32(b"alice") % 8

    def test_shard_suffix_stripped(self):
        # The mesh encodes shard identity after a "|"; the user hash
        # must only see the true client so shedding is consistent.
        assert user_level("alice|42:1:0", 8) == user_level("alice", 8)

    def test_business_class_dominates_user_level(self):
        light = compound_priority("point", "anyone", 8)
        heavy = compound_priority("scan", "anyone", 8)
        assert light < 8
        assert heavy >= 3 * 8

    def test_unknown_op_gets_default_priority(self):
        assert compound_priority("mystery_op", "c", 8) // 8 == 2


class TestDagorConvergence:
    def test_level_settles_at_min_under_steady_overload(self, env):
        d = Dagor(env, slo_latency=0.01, adjust_period=0.1)
        d.start()
        assert d.level == d.max_level
        # Steady overload: every window's tail breaches the SLO.
        for window in range(12):
            feed(d, 20, latency=0.5, start=window * 0.1)
        env.run(until=1.25)
        assert d.level == d.min_level == d.user_levels - 1
        # The floor still admits the whole most-critical business class.
        assert d.admit("point", "any-client")

    def test_level_recovers_one_step_per_healthy_window(self, env):
        d = Dagor(env, slo_latency=0.01, adjust_period=0.1)
        d.start()
        feed(d, 20, latency=0.5)
        env.run(until=0.15)
        lowered = d.level
        assert lowered < d.max_level
        # The slow records stay in the 1 s sliding window until ~1.02,
        # so the level keeps falling to its floor first.
        env.run(until=1.05)
        floored = d.level
        assert floored == d.min_level
        # Five healthy windows later it has probed up exactly
        # grow_step per window.
        env.run(until=1.55)
        assert d.level == floored + 5 * d.grow_step

    def test_admission_sheds_heavy_before_light(self, env):
        d = Dagor(env, slo_latency=0.01, adjust_period=0.1)
        d.level = d.user_levels - 1  # floor: only business class 0
        assert d.admit("point", "client-1")
        assert not d.admit("scan", "client-1")
        assert d.rejections == 1

    def test_feedback_snapshot_updates_at_window_edge(self, env):
        d = Dagor(env, slo_latency=0.01, adjust_period=0.1)
        d.start()
        feed(d, 20, latency=0.5)
        env.run(until=0.15)
        assert d.admit_level == d.level
        assert d.feedback_history
        times = [t for t, _level in d.feedback_history]
        assert times == sorted(times)


class _PoolApp:
    """Minimal app exposing a worker pool for bind() discovery."""

    def __init__(self, env, workers=32):
        self.workers = ThreadPool(env, "workers", workers=workers)


class TestAutothrottle:
    def test_bind_finds_widest_pool(self, env):
        at = Autothrottle(env, slo_latency=0.05)
        app = _PoolApp(env, workers=32)
        at.bind(app)
        assert at.pool is app.workers
        assert at.nominal_workers == 32

    def test_pool_shrinks_under_overload_and_recovers(self, env):
        at = Autothrottle(env, slo_latency=0.01, adjust_period=0.1)
        app = _PoolApp(env, workers=32)
        at.bind(app)
        at.start()
        feed(at, 20, latency=0.5)
        env.run(until=0.15)
        squeezed = app.workers.workers
        assert squeezed < 32
        assert at.resize_moves >= 1
        # The slow records stay in the 1 s sliding window until ~1.02,
        # so the pool keeps shrinking toward its floor first; healthy
        # windows then recover additively toward nominal.
        env.run(until=1.05)
        floored = app.workers.workers
        env.run(until=2.0)
        assert app.workers.workers > floored

    def test_poolless_backend_uses_checkpoint_squeeze(self, env):
        at = Autothrottle(env, slo_latency=0.01, adjust_period=0.1)
        at.start()  # never bound: no pool to resize
        assert at.throttle_delay(None) == 0.0
        feed(at, 20, latency=0.5)
        env.run(until=0.15)
        assert at.throttle_delay(None) > 0.0
        env.run(until=2.5)  # healthy windows decay the squeeze away
        assert at.throttle_delay(None) == 0.0

    def test_set_target_clamps_and_counts(self, env):
        at = Autothrottle(env, slo_latency=0.05)
        at.set_target(0.02)
        assert at.target == pytest.approx(0.02)
        at.set_target(-1.0)
        assert at.target > 0.0
        assert at.target_moves == 2


class TestAutothrottleTower:
    def test_violation_tightens_worst_service_only(self):
        tower = AutothrottleTower(["a", "b"], slo_latency=0.1)
        before = dict(tower.targets)
        tower.update(epoch=1, t=1.0, e2e_p99=1.0,
                     service_p99={"a": 0.02, "b": 0.9})
        assert tower.targets["b"] < before["b"]
        assert tower.targets["a"] == pytest.approx(before["a"])
        assert tower.moves and tower.moves[-1]["service"] == "b"

    def test_healthy_epochs_relax_all_targets(self):
        tower = AutothrottleTower(["a", "b"], slo_latency=0.1)
        tower.update(epoch=1, t=1.0, e2e_p99=1.0,
                     service_p99={"a": 0.02, "b": 0.9})
        tightened = dict(tower.targets)
        tower.update(epoch=2, t=2.0, e2e_p99=0.01,
                     service_p99={"a": 0.01, "b": 0.01})
        assert tower.targets["b"] > tightened["b"]

    def test_targets_stay_within_floor_and_cap(self):
        tower = AutothrottleTower(["a"], slo_latency=0.1)
        for epoch in range(50):
            tower.update(epoch=epoch, t=float(epoch), e2e_p99=9.9,
                         service_p99={"a": 9.9})
        assert tower.targets["a"] >= 0.05 * 0.1 - 1e-12
        for epoch in range(50, 150):
            tower.update(epoch=epoch, t=float(epoch), e2e_p99=0.0,
                         service_p99={"a": 0.0})
        assert tower.targets["a"] <= 0.1 + 1e-12
