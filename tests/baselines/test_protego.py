"""Tests for the Protego baseline (victim dropping on blocking delay)."""

import pytest

from repro.baselines import Protego
from repro.cases import get_case
from repro.core import ResourceHandle, ResourceType
from repro.sim import Environment, RequestStatus


@pytest.fixture
def env():
    return Environment()


LOCK = None  # assigned per test via register_resource


class TestWaitTracking:
    def test_closed_wait_accumulates(self, env):
        p = Protego(env)
        lock = p.register_resource("l", ResourceType.LOCK)
        task = p.create_cancel()
        p.begin_wait(task, lock)
        env.run(until=0.03)
        assert p.end_wait(task, lock) == pytest.approx(0.03)
        assert p.blocking_delay(task) == pytest.approx(0.03)

    def test_open_wait_counts_live(self, env):
        p = Protego(env)
        lock = p.register_resource("l", ResourceType.LOCK)
        task = p.create_cancel()
        p.begin_wait(task, lock)
        env.run(until=0.05)
        assert p.blocking_delay(task) == pytest.approx(0.05)

    def test_memory_waits_ignored(self, env):
        p = Protego(env)
        mem = p.register_resource("m", ResourceType.MEMORY)
        task = p.create_cancel()
        p.begin_wait(task, mem)
        env.run(until=0.05)
        assert p.blocking_delay(task) == 0.0

    def test_slow_by_counts_for_waitable(self, env):
        p = Protego(env)
        cpu = p.register_resource("c", ResourceType.CPU)
        mem = p.register_resource("m", ResourceType.MEMORY)
        task = p.create_cancel()
        p.slow_by_resource(task, cpu, 0.02)
        p.slow_by_resource(task, mem, 0.5)
        assert p.blocking_delay(task) == pytest.approx(0.02)

    def test_should_drop_over_budget(self, env):
        p = Protego(env, slo_latency=0.05, drop_fraction=0.8)
        lock = p.register_resource("l", ResourceType.LOCK)
        task = p.create_cancel()
        p.slow_by_resource(task, lock, 0.05)
        assert p.should_drop(task)

    def test_free_cancel_clears_state(self, env):
        p = Protego(env)
        lock = p.register_resource("l", ResourceType.LOCK)
        task = p.create_cancel()
        p.begin_wait(task, lock)
        p.free_cancel(task)
        assert p.blocking_delay(task) == 0.0


class TestEndToEnd:
    def test_bounds_latency_but_drops_victims_in_c1(self):
        """Fig 4's story: Protego bounds p99 by dropping many requests."""
        case = get_case("c1")
        base = case.run_baseline()
        overload = case.run()
        protego = case.run(
            controller_factory=lambda env: Protego(
                env, slo_latency=case.slo_latency
            )
        )
        # Tail latency is far better than uncontrolled...
        assert protego.p99_latency < overload.p99_latency / 10
        # ...but the drop rate is orders of magnitude above ATROPOS's.
        assert protego.drop_rate > 0.05
        counts = protego.collector.status_counts()
        assert counts[RequestStatus.DROPPED] > 100

    def test_worse_than_atropos_on_memory_case_c5(self):
        """Protego does not monitor memory resources (Fig 9's gap): it
        can only shed queue-wait victims, never cancel the dump, so it
        lands far from ATROPOS on both latency and drops."""
        from repro.baselines import controller_factory

        case = get_case("c5")
        protego = case.run(
            controller_factory=lambda env: Protego(
                env, slo_latency=case.slo_latency
            )
        )
        atropos = case.run(
            controller_factory=controller_factory("atropos", case.slo_latency)
        )
        assert protego.p99_latency > atropos.p99_latency * 2
        assert protego.drop_rate > atropos.drop_rate * 10
