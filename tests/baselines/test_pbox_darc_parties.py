"""Tests for the pBox, DARC, PARTIES, and SEDA baselines."""

import pytest

from repro.baselines import DARC, Parties, PBox, Seda, controller_factory
from repro.cases import get_case
from repro.core import ResourceType
from repro.sim import Environment, RequestRecord, RequestStatus


@pytest.fixture
def env():
    return Environment()


class TestPBox:
    def test_penalty_applied_and_expires(self, env):
        p = PBox(env, penalty_delay=0.05, penalty_duration=0.5)
        task = p.create_cancel()
        p._penalized[id(task)] = env.now + 0.5
        assert p.throttle_delay(task) == 0.05
        env.run(until=1.0)
        assert p.throttle_delay(task) == 0.0
        assert id(task) not in p._penalized

    def test_penalizes_top_consumer_of_overloaded_resource(self, env):
        p = PBox(env, contention_threshold=0.1)
        mem = p.register_resource("pool", ResourceType.MEMORY)
        hog = p.create_cancel()
        small = p.create_cancel()
        p.runtime.task_started(hog)
        env.run(until=1.0)
        p.get_resource(hog, mem, 1000)
        p.get_resource(small, mem, 10)
        p.slow_by_resource(hog, mem, 0.9, events=900)
        p._maybe_penalize()
        assert p.throttle_delay(hog) > 0
        assert p.throttle_delay(small) == 0.0

    def test_never_drops(self):
        case = get_case("c5")
        pbox = case.run(
            controller_factory=controller_factory("pbox", case.slo_latency)
        )
        counts = pbox.collector.status_counts()
        assert counts[RequestStatus.CANCELLED] == 0

    def test_partial_mitigation_on_c5(self):
        """pBox throttles the dump but cannot free held pages."""
        case = get_case("c5")
        overload = case.run()
        pbox = case.run(
            controller_factory=controller_factory("pbox", case.slo_latency)
        )
        atropos = case.run(
            controller_factory=controller_factory("atropos", case.slo_latency)
        )
        assert pbox.p99_latency <= overload.p99_latency
        assert atropos.p99_latency < pbox.p99_latency


class TestDARC:
    def test_reserves_workers_on_bind(self, env):
        from repro.apps.mysql import MySQL
        from repro.sim import Rng

        darc = DARC(env, reserved_fraction=0.5)
        app = MySQL(env, darc, Rng(0))
        darc.bind(app)
        reserved = sum(
            n
            for group, n in app.innodb_queue._reservations.items()
            if "light" in group
        )
        assert reserved >= app.innodb_queue.workers // 2

    def test_invalid_fraction_rejected(self, env):
        with pytest.raises(ValueError):
            DARC(env, reserved_fraction=1.5)

    def test_keeps_lights_flowing_in_c2(self):
        """Reserved workers shield light queries from slow-query floods."""
        case = get_case("c2")
        overload = case.run()
        darc = case.run(controller_factory=controller_factory("darc"))

        def light_p99(result):
            lats = [
                r.latency
                for r in result.collector.records
                if r.completed and r.op_name in ("point_select", "row_update")
            ]
            lats.sort()
            return lats[int(len(lats) * 0.99)] if lats else float("nan")

        assert light_p99(darc) < light_p99(overload) / 2

    def test_cannot_fix_lock_convoy_c4(self):
        """Worker reservations do not release a held table lock."""
        case = get_case("c4")
        overload = case.run()
        darc = case.run(controller_factory=controller_factory("darc"))
        assert darc.p99_latency > overload.p99_latency * 0.2


class TestParties:
    def test_admission_respects_limits(self, env):
        p = Parties(env, initial_limit=2)
        assert p.admit("op", "c1")
        p.create_cancel(client_id="c1")
        p.create_cancel(client_id="c1")
        assert not p.admit("op", "c1")
        assert p.admit("op", "c2")

    def test_violation_shrinks_heaviest_client(self, env):
        p = Parties(env, slo_latency=0.01, adjust_period=0.1, initial_limit=8)
        p.start()
        task = p.create_cancel(client_id="greedy")
        p.observe_completion(
            RequestRecord(1, "op", "victim", 0.0, 0.0, RequestStatus.COMPLETED)
        )
        # Feed SLO-violating completions.
        for i in range(20):
            p.observe_completion(
                RequestRecord(
                    i, "op", "victim", 0.0, 0.001 * i, RequestStatus.COMPLETED
                )
            )
        env.run(until=0.25)
        assert p.limits["greedy"] < 8

    def test_healthy_restores_limits(self, env):
        p = Parties(env, slo_latency=10.0, adjust_period=0.1, initial_limit=8)
        p.limits["c"] = 2
        p.start()
        env.run(until=0.55)
        assert p.limits["c"] > 2

    def test_rejections_counted_in_c2(self):
        case = get_case("c2")
        parties = case.run(
            controller_factory=controller_factory("parties", case.slo_latency)
        )
        # PARTIES throttles the analytics client at admission.
        assert parties.drop_rate > 0.0


class TestSeda:
    def test_rate_decreases_on_violation(self, env):
        s = Seda(env, slo_latency=0.01, adjust_period=0.1, initial_rate=100.0)
        s.start()
        for i in range(20):
            s.observe_completion(
                RequestRecord(
                    i, "op", "c", 0.0, 0.001 * i, RequestStatus.COMPLETED
                )
            )
        env.run(until=0.15)
        assert s.rate < 100.0

    def test_rate_recovers_when_healthy(self, env):
        s = Seda(env, slo_latency=10.0, adjust_period=0.1, initial_rate=100.0)
        s.start()
        env.run(until=0.55)
        assert s.rate > 100.0

    def test_tokens_limit_admission(self, env):
        s = Seda(env, initial_rate=10.0, adjust_period=0.1)
        admitted = sum(1 for _ in range(100) if s.admit("op", "c"))
        assert admitted < 100
        assert s.rejections > 0
