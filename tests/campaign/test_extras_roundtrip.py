"""Campaign extras must survive the store write -> read byte-identically.

The regress observatory trusts the cache: a baseline captured from
cached outcomes must equal one captured from fresh runs, which holds
only if ``extras`` (series arrays, decision/audit mixes, adapt events,
health summaries) round-trip through the JSON store without mutation
and independently of dict insertion order or interpreter hash seed.
"""

import hashlib
import json
import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.spec import CACHE_SCHEMA
from repro.campaign.store import ResultStore

KEY = "ab" + "0" * 62

# JSON-safe floats: the store round-trips exactly what json can encode
# (the producers pre-round to 9 decimals and map NaN to None upstream).
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=32
)
json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-(10**9), 10**9),
    finite_floats, st.text(max_size=20),
)
series_arrays = st.lists(
    st.one_of(st.none(), finite_floats), max_size=30
)
count_maps = st.dictionaries(
    st.sampled_from(
        ["detection", "classification", "cancellation", "reexecution",
         "adapt", "cancel-blocked", "p99-ceiling", "cancel-storm",
         "detector-flapping", "cancelled", "regular-overload"]
    ),
    st.integers(0, 10**6),
    max_size=8,
)
extras_payloads = st.fixed_dictionaries(
    {},
    optional={
        "cancels_issued": st.integers(0, 10**6),
        "series": st.fixed_dictionaries(
            {
                "window": st.just(0.5),
                "slo": st.one_of(st.none(), finite_floats),
                "end": series_arrays,
                "throughput": series_arrays,
                "p99": series_arrays,
                "goodput": series_arrays,
                "cancels": st.lists(st.integers(0, 1000), max_size=30),
            }
        ),
        "decision_mix": count_maps,
        "audit_mix": count_maps,
        "health_events": st.lists(
            st.fixed_dictionaries(
                {
                    "time": finite_floats,
                    "kind": st.sampled_from(
                        ["p99-ceiling", "cancel-storm"]
                    ),
                    "severity": st.sampled_from(["warn", "critical"]),
                }
            ),
            max_size=10,
        ),
        "adaptations": st.integers(0, 1000),
        "adapt_events": st.lists(
            st.fixed_dictionaries(
                {
                    "time": finite_floats,
                    "param": st.sampled_from(
                        ["detection_window", "slo_slack"]
                    ),
                    "old": finite_floats,
                    "new": finite_floats,
                    "reason": st.text(max_size=20),
                }
            ),
            max_size=10,
        ),
        "telemetry": st.dictionaries(
            st.text(min_size=1, max_size=15), json_scalars, max_size=6
        ),
    },
)


def _payload(extras):
    return {
        "schema": CACHE_SCHEMA,
        "spec": {"experiment": "e", "family": "case", "seed": 0},
        "summary": {"throughput": 1.0},
        "extras": extras,
        "walltime": 0.1,
    }


class TestExtrasRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(extras=extras_payloads)
    def test_store_round_trip_is_identity(self, tmp_path_factory, extras):
        store = ResultStore(
            tmp_path_factory.mktemp("store") / "cache"
        )
        store.put(KEY, _payload(extras))
        loaded = store.get(KEY)
        assert loaded["extras"] == extras

    @settings(max_examples=60, deadline=None)
    @given(extras=extras_payloads)
    def test_stored_bytes_are_canonical(self, tmp_path_factory, extras):
        """Same logical extras -> same bytes, whatever insertion order."""
        root = tmp_path_factory.mktemp("store")
        store_a = ResultStore(root / "a")
        store_b = ResultStore(root / "b")
        store_a.put(KEY, _payload(extras))
        reordered = json.loads(
            json.dumps(_payload(extras), sort_keys=True)
        )
        store_b.put(KEY, reordered)
        assert store_a._path(KEY).read_bytes() == \
            store_b._path(KEY).read_bytes()


_HASHSEED_SCRIPT = """
import sys
from repro.campaign import execute
from repro.campaign.spec import RunSpec
from repro.experiments.case_family import case_spec
from repro.regress.baseline import RegressBaseline
from repro.regress.capture import capture

spec = case_spec("hashseed", "c1", 1, atropos_overrides={})
spec = RunSpec(experiment=spec.experiment, family=spec.family,
               params=spec.params, seed=spec.seed,
               duration=4.0, warmup=1.0)
baseline = capture("hashseed", [("case:c1", spec)], jobs=1)
sys.stdout.write(baseline.to_json())
"""


def _capture_digest(hash_seed, cache_dir):
    env = dict(
        os.environ,
        PYTHONHASHSEED=hash_seed,
        REPRO_CACHE_DIR=str(cache_dir),
        PYTHONPATH=os.pathsep.join(sys.path),
    )
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert proc.stdout, proc.stderr
    return hashlib.sha256(proc.stdout.encode()).hexdigest()


def test_capture_byte_identical_across_hash_seeds(tmp_path):
    """The whole chain -- run, extras, store, snapshot -- is hash-seed
    free.  Each subprocess gets its own cache dir, so every capture is
    a fresh run, not a replay of the first one's cache entry."""
    digests = {
        _capture_digest(seed, tmp_path / f"cache-{seed}")
        for seed in ("0", "1", "9973")
    }
    assert len(digests) == 1
