"""Tests for RunSpec identity, hashing, and serialization."""

import pytest

from repro.campaign.spec import (
    RunOutcome,
    RunSpec,
    code_fingerprint,
    load_all_families,
)
from repro.experiments.case_family import case_spec
from repro.experiments.harness import resolve_sim
from repro.sim.metrics import Summary


class TestRunSpec:
    def test_params_are_canonicalized(self):
        a = RunSpec("e", "f", {"b": 2, "a": 1})
        b = RunSpec("e", "f", {"a": 1, "b": 2})
        assert a.identity() == b.identity()
        assert a.cache_key() == b.cache_key()

    def test_identity_excludes_experiment(self):
        a = RunSpec("fig9", "case", {"case_id": "c1"}, seed=3)
        b = RunSpec("fig10", "case", {"case_id": "c1"}, seed=3)
        assert a.identity() == b.identity()
        assert a.cache_key() == b.cache_key()

    def test_identity_sensitive_to_params_seed_duration(self):
        base = RunSpec("e", "f", {"x": 1}, seed=0, duration=5.0)
        assert base.cache_key() != RunSpec(
            "e", "f", {"x": 2}, seed=0, duration=5.0
        ).cache_key()
        assert base.cache_key() != RunSpec(
            "e", "f", {"x": 1}, seed=1, duration=5.0
        ).cache_key()
        assert base.cache_key() != RunSpec(
            "e", "f", {"x": 1}, seed=0, duration=6.0
        ).cache_key()

    def test_round_trips_through_dict(self):
        spec = RunSpec("e", "f", {"x": [1, 2], "y": "z"}, seed=7,
                       duration=3.0, warmup=1.0)
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_adaptive_is_part_of_the_identity(self):
        fixed = RunSpec("e", "f", {"x": 1})
        adaptive = RunSpec("e", "f", {"x": 1}, adaptive=True)
        assert fixed.identity() != adaptive.identity()
        assert fixed.cache_key() != adaptive.cache_key()

    def test_adaptive_round_trips_and_defaults_false(self):
        adaptive = RunSpec("e", "f", {}, adaptive=True)
        clone = RunSpec.from_dict(adaptive.to_dict())
        assert clone.adaptive is True
        assert clone == adaptive
        # Payloads written before the adaptive field existed load as
        # fixed-threshold specs.
        legacy = {k: v for k, v in RunSpec("e", "f", {}).to_dict().items()
                  if k != "adaptive"}
        assert RunSpec.from_dict(legacy).adaptive is False

    def test_label_names_experiment_and_seed(self):
        spec = RunSpec("fig2", "fig2.point", {"load": 100.0}, seed=4)
        assert "fig2" in spec.label()
        assert "seed=4" in spec.label()

    def test_unknown_family_raises_with_known_names(self):
        load_all_families()
        with pytest.raises(KeyError, match="fig2.point"):
            resolve_sim("no-such-family")


class TestCacheKey:
    def test_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_key_is_hex_digest(self):
        key = RunSpec("e", "f", {}).cache_key()
        assert len(key) == 64
        int(key, 16)


class TestCaseSpecHelper:
    def test_defaults_are_dropped_for_stable_hashing(self):
        # include_culprit=True and None-valued params are physically
        # identical to their absence; they must hash identically so
        # experiments share cached runs.
        a = case_spec("fig9", "c1", 0)
        b = case_spec("fig10", "c1", 0, include_culprit=True, system=None)
        assert a.cache_key() == b.cache_key()

    def test_baseline_differs_from_overload(self):
        a = case_spec("e", "c1", 0)
        b = case_spec("e", "c1", 0, include_culprit=False)
        assert a.cache_key() != b.cache_key()


class TestRunOutcome:
    def _outcome(self, ops):
        summary = Summary(
            duration=10.0, throughput=10.0, p50_latency=0.1,
            p99_latency=0.5, mean_latency=0.2, drop_rate=0.0,
            completed=100, dropped=0, cancelled=2, timed_out=0,
        )
        return RunOutcome(
            spec=RunSpec("e", "f", {}),
            summary=summary,
            extras={"cancels_issued": 2, "first_cancelled_op": "dump",
                    "ops": ops},
            walltime=0.1,
            cache_hit=False,
            worker="inline",
        )

    def test_metric_properties(self):
        outcome = self._outcome({})
        assert outcome.throughput == 10.0
        assert outcome.p99_latency == 0.5
        assert outcome.cancels == 2
        assert outcome.first_cancelled_op == "dump"

    def test_mean_latency_over_is_exact(self):
        outcome = self._outcome({
            "a": {"n": 2, "latency_sum": 1.0},
            "b": {"n": 2, "latency_sum": 3.0},
        })
        assert outcome.completed_ops() == ["a", "b"]
        assert outcome.mean_latency_over(["a", "b"]) == 1.0
        assert outcome.mean_latency_over(["a"]) == 0.5

    def test_payload_round_trip(self):
        outcome = self._outcome({"a": {"n": 1, "latency_sum": 0.25}})
        clone = RunOutcome.from_payload(
            outcome.spec, outcome.to_payload(), cache_hit=True
        )
        assert clone.summary == outcome.summary
        assert clone.extras == outcome.extras
        assert clone.cache_hit

    def test_adaptations_default_and_extras(self):
        outcome = self._outcome({})
        assert outcome.adaptations == 0
        outcome.extras["adaptations"] = 5
        assert outcome.adaptations == 5
