"""Satellite acceptance test: parallel == serial == cached, byte for byte.

Runs a small campaign spanning three experiments (fig2, fig3, fig11 with
reduced sweeps) twice cold -- once serial, once with four workers -- and
once warm, asserting the rendered reports are byte-identical and that
the warm pass is served entirely from the cache.
"""

from repro.campaign import reset_session_stats, session_stats, settings
from repro.reporting import render_report


def _run_campaign(jobs, cache_dir):
    from repro.experiments import fig2_buffer_pool, fig3_lock_contention, \
        fig11_drop_rate

    reset_session_stats()
    with settings(jobs=jobs, cache=True, cache_dir=cache_dir):
        results = {
            "fig2": fig2_buffer_pool.run(loads=[200.0]),
            "fig3": fig3_lock_contention.run(loads=[200.0]),
            "fig11": fig11_drop_rate.run(case_ids=["c1", "c3"]),
        }
    return render_report(results), session_stats()


class TestCampaignParity:
    def test_parallel_and_cache_are_byte_identical(self, tmp_path):
        serial, serial_stats = _run_campaign(1, tmp_path / "serial")
        assert serial_stats.hits == 0

        parallel, parallel_stats = _run_campaign(4, tmp_path / "parallel")
        assert parallel_stats.hits == 0
        assert parallel == serial

        warm, warm_stats = _run_campaign(4, tmp_path / "parallel")
        assert warm == serial
        assert warm_stats.misses == 0
        assert warm_stats.hit_rate == 1.0
        assert warm_stats.runs == parallel_stats.runs


def _run_faulted(jobs, cache_dir):
    """A faulted + clean pair of the same case/seed through execute()."""
    import json

    from repro.campaign import execute
    from repro.experiments.case_family import case_spec
    from repro.faults import FaultPlan, burst, cancel_drop

    plan = FaultPlan.of(
        cancel_drop(0.5, at=2.0, duration=6.0),
        burst(1.5, at=4.0, duration=2.0),
    )
    specs = [
        case_spec("parity", "c1", seed=0, system="atropos"),
        case_spec("parity", "c1", seed=0, system="atropos", faults=plan),
    ]
    reset_session_stats()
    with settings(jobs=jobs, cache=True, cache_dir=cache_dir):
        outcomes = execute(specs)
    payloads = []
    for outcome in outcomes:
        payload = outcome.to_payload()
        # Only walltime/worker may differ between modes: they describe
        # the execution, not the simulation.
        payload.pop("walltime")
        payload.pop("worker")
        payloads.append(payload)
    rendered = json.dumps(payloads, sort_keys=True)
    return rendered, outcomes, session_stats()


class TestFaultedParity:
    def test_faulted_runs_cache_and_parallelize_identically(self, tmp_path):
        serial, outcomes, serial_stats = _run_faulted(1, tmp_path / "serial")
        assert serial_stats.hits == 0
        clean, faulted = outcomes
        # The fault plan forks the cache identity: clean and faulted runs
        # of the same case/seed never share an entry or a result.
        assert clean.spec.cache_key() != faulted.spec.cache_key()
        assert clean.summary != faulted.summary
        assert faulted.extras["fault_events"]

        parallel, _, parallel_stats = _run_faulted(4, tmp_path / "parallel")
        assert parallel_stats.hits == 0
        assert parallel == serial

        warm, warm_outcomes, warm_stats = _run_faulted(
            4, tmp_path / "parallel"
        )
        assert warm == serial
        assert warm_stats.misses == 0
        assert warm_stats.hit_rate == 1.0
        assert all(o.cache_hit for o in warm_outcomes)
