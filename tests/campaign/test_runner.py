"""Tests for settings resolution and the execute() pipeline."""

import pytest

from repro.campaign import (
    current_settings,
    execute,
    reset_session_stats,
    session_stats,
    settings,
)
from repro.campaign.runner import CACHE_ENV, JOBS_ENV
from repro.experiments.case_family import case_spec
from repro.obs import Tracer, tracing


#: One cheap deterministic run (c1 baseline, no controller).
def _spec(seed=0, experiment="test"):
    return case_spec(experiment, "c1", seed, include_culprit=False)


class TestSettingsResolution:
    def test_defaults(self, monkeypatch, tmp_path):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.delenv(CACHE_ENV, raising=False)
        cfg = current_settings()
        assert cfg.jobs == 1
        assert cfg.cache is True

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        monkeypatch.setenv(CACHE_ENV, "off")
        cfg = current_settings()
        assert cfg.jobs == 3
        assert cfg.cache is False

    def test_overlay_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(JOBS_ENV, "3")
        with settings(jobs=2, cache_dir=tmp_path):
            cfg = current_settings()
            assert cfg.jobs == 2
            assert cfg.cache_dir == tmp_path

    def test_explicit_beats_overlay(self, tmp_path):
        with settings(jobs=2):
            assert current_settings(jobs=5).jobs == 5

    def test_overlays_nest_and_unwind(self):
        with settings(jobs=2):
            with settings(jobs=4):
                assert current_settings().jobs == 4
            assert current_settings().jobs == 2

    def test_jobs_floor_is_one(self):
        assert current_settings(jobs=0).jobs == 1


class TestExecute:
    def test_empty_batch(self):
        assert execute([]) == []

    def test_outcomes_in_spec_order(self, tmp_path):
        specs = [_spec(seed=0), _spec(seed=1)]
        outcomes = execute(specs, cache_dir=tmp_path)
        assert [o.spec for o in outcomes] == specs
        assert all(not o.cache_hit for o in outcomes)

    def test_duplicate_specs_run_once(self, tmp_path):
        reset_session_stats()
        outcomes = execute([_spec(), _spec()], cache_dir=tmp_path)
        stats = session_stats()
        assert stats.runs == 2
        assert stats.misses == 1  # deduplicated within the batch
        assert outcomes[0].to_payload() == outcomes[1].to_payload()

    def test_cache_hit_on_second_call(self, tmp_path):
        cold = execute([_spec()], cache_dir=tmp_path)
        warm = execute([_spec()], cache_dir=tmp_path)
        assert not cold[0].cache_hit
        assert warm[0].cache_hit
        assert warm[0].summary == cold[0].summary
        assert warm[0].extras == cold[0].extras

    def test_experiment_field_shares_cache(self, tmp_path):
        cold = execute([_spec(experiment="fig9")], cache_dir=tmp_path)
        warm = execute([_spec(experiment="fig10")], cache_dir=tmp_path)
        assert warm[0].cache_hit
        assert warm[0].summary == cold[0].summary

    def test_no_cache_skips_store(self, tmp_path):
        execute([_spec()], cache=False, cache_dir=tmp_path)
        again = execute([_spec()], cache=False, cache_dir=tmp_path)
        assert not again[0].cache_hit
        assert not (tmp_path / "index.jsonl").exists()

    def test_session_stats_accumulate_and_reset(self, tmp_path):
        reset_session_stats()
        execute([_spec()], cache_dir=tmp_path)
        execute([_spec()], cache_dir=tmp_path)
        stats = session_stats()
        assert stats.runs == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert 0 < stats.hit_rate < 1
        assert "runs=2" in stats.format()
        reset_session_stats()
        assert session_stats().runs == 0

    def test_parallel_matches_serial(self, tmp_path):
        serial = execute(
            [_spec(seed=0), _spec(seed=1), _spec(seed=2)],
            jobs=1, cache_dir=tmp_path / "a",
        )
        parallel = execute(
            [_spec(seed=0), _spec(seed=1), _spec(seed=2)],
            jobs=3, cache_dir=tmp_path / "b",
        )
        for s, p in zip(serial, parallel):
            assert s.summary == p.summary
            assert s.extras == p.extras


class TestTracingInterplay:
    def test_traced_runs_bypass_cache_reads(self, tmp_path):
        execute([_spec()], cache_dir=tmp_path)  # warm the cache
        tracer = Tracer(max_runs=None)
        with tracing(tracer):
            outcomes = execute([_spec()], jobs=4, cache_dir=tmp_path)
        # Not served from cache: the run truly executed and was traced.
        assert not outcomes[0].cache_hit
        assert tracer.events

    def test_traced_cold_run_still_warms_cache(self, tmp_path):
        tracer = Tracer(max_runs=None)
        with tracing(tracer):
            execute([_spec()], cache_dir=tmp_path)
        warm = execute([_spec()], cache_dir=tmp_path)
        assert warm[0].cache_hit

    def test_campaign_instant_emitted(self, tmp_path):
        tracer = Tracer(max_runs=None)
        with tracing(tracer):
            execute([_spec()], cache_dir=tmp_path)
        assert any(e.get("cat") == "campaign" for e in tracer.events)
