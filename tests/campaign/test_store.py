"""Tests for the content-addressed result store."""

import json

from repro.campaign.spec import CACHE_SCHEMA
from repro.campaign.store import ResultStore


KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def _payload(**extra):
    payload = {"schema": CACHE_SCHEMA, "spec": {"experiment": "e",
               "family": "f", "seed": 0}, "summary": {}, "extras": {},
               "walltime": 0.5}
    payload.update(extra)
    return payload


class TestResultStore:
    def test_get_on_empty_store_misses(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        assert store.get(KEY) is None
        assert KEY not in store

    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        assert KEY in store
        assert store.get(KEY) == _payload()

    def test_keys_are_sharded_by_prefix(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        assert (tmp_path / "cache" / f"v{CACHE_SCHEMA}" / "ab"
                / f"{KEY}.json").is_file()

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        path = store._path(KEY)
        path.write_text("{not json")
        assert store.get(KEY) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload(schema=CACHE_SCHEMA + 1))
        assert store.get(KEY) is None

    def test_put_appends_index_records(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        store.put(OTHER, _payload())
        lines = (tmp_path / "cache" / "index.jsonl").read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["key"] == KEY
        assert record["experiment"] == "e"
        assert record["walltime"] == 0.5

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        store.put(OTHER, _payload())
        stats = store.stats()
        assert stats.entries == 2
        assert stats.index_records == 2
        assert stats.total_bytes > 0
        assert "entries:       2" in stats.format()

    def test_stats_breaks_down_by_family(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        other = _payload()
        other["spec"] = dict(other["spec"], family="dag")
        store.put(OTHER, other)
        stats = store.stats()
        assert stats.by_family == {"f": 1, "dag": 1}
        text = stats.format()
        assert "by family:" in text
        assert f"schema:        v{CACHE_SCHEMA}" in text

    def test_stats_counts_stale_schema_dirs(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        stale = tmp_path / "cache" / f"v{CACHE_SCHEMA - 1}" / "ab"
        stale.mkdir(parents=True)
        (stale / f"{OTHER}.json").write_text("{}")
        stats = store.stats()
        assert stats.entries == 1
        assert stats.stale_entries == 1
        assert stats.stale_bytes > 0
        assert stats.by_schema == {CACHE_SCHEMA - 1: 1, CACHE_SCHEMA: 1}
        text = stats.format()
        assert "(stale)" in text
        assert "warning: 1 stale entry" in text
        assert "repro cache clear" in text

    def test_stats_no_stale_warning_when_current_only(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        text = store.stats().format()
        assert "(stale)" not in text
        assert "warning:" not in text
        assert "by schema:" not in text

    def test_unreadable_entry_counts_as_unknown_family(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        store._path(KEY).write_text("{broken")
        stats = store.stats()
        assert stats.by_family == {"?": 1}

    def test_clear_removes_stale_schema_dirs_too(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        stale = tmp_path / "cache" / f"v{CACHE_SCHEMA - 1}" / "cd"
        stale.mkdir(parents=True)
        (stale / f"{OTHER}.json").write_text("{}")
        assert store.clear() == 2
        assert store.stats().stale_entries == 0
        assert not stale.parent.exists()

    def test_clear_removes_everything(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(KEY, _payload())
        assert store.clear() == 1
        assert store.get(KEY) is None
        assert store.stats().entries == 0
        assert store.stats().index_records == 0

    def test_clear_empty_store_is_safe(self, tmp_path):
        assert ResultStore(tmp_path / "nothing").clear() == 0
