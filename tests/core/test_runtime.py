"""Tests for the runtime manager: timestamp modes, activity tracking."""

import pytest

from repro.core import AtroposConfig, BaseController, ResourceType, RuntimeManager
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def runtime(env):
    return RuntimeManager(
        env,
        AtroposConfig(
            timestamp_sample_interval=0.01,
            coarse_trace_cost=1e-6,
            fine_trace_cost=1e-5,
        ),
    )


class TestTimestampModes:
    def test_coarse_mode_quantizes(self, env, runtime):
        env.run(until=0.0042)
        ts1 = runtime.timestamp()
        env.run(until=0.0058)
        ts2 = runtime.timestamp()
        # Same sampling interval -> same timestamp.
        assert ts1 == ts2

    def test_coarse_mode_advances_between_intervals(self, env, runtime):
        ts1 = runtime.timestamp()
        env.run(until=0.05)
        ts2 = runtime.timestamp()
        assert ts2 > ts1

    def test_fine_mode_is_exact(self, env, runtime):
        runtime.set_fine_mode(True)
        env.run(until=0.0042)
        assert runtime.timestamp() == 0.0042

    def test_event_cost_depends_on_mode(self, runtime):
        assert runtime.event_cost() == 1e-6
        runtime.set_fine_mode(True)
        assert runtime.event_cost() == 1e-5

    def test_events_traced_counter(self, env, runtime):
        controller = BaseController(env)
        res = controller.register_resource("r", ResourceType.LOCK)
        task = controller.create_cancel()
        runtime.record_get(task, res, 1)
        runtime.record_free(task, res, 1)
        runtime.record_slow_by(task, res, 0.1)
        runtime.record_wait_start(task, res)
        runtime.record_wait_end(task, res)
        assert runtime.events_traced == 5


class TestActivityTracker:
    def test_integrates_active_tasks(self, env, runtime):
        controller = BaseController(env)
        t1 = controller.create_cancel()
        t2 = controller.create_cancel()
        runtime.task_started(t1)
        env.run(until=1.0)
        runtime.task_started(t2)
        env.run(until=2.0)
        # 1 task for 1s + 2 tasks for 1s = 3 task-seconds.
        assert runtime.activity.window_task_seconds() == pytest.approx(3.0)

    def test_roll_resets_window(self, env, runtime):
        controller = BaseController(env)
        t = controller.create_cancel()
        runtime.task_started(t)
        env.run(until=1.0)
        runtime.roll_window()
        env.run(until=1.5)
        assert runtime.activity.window_task_seconds() == pytest.approx(0.5)

    def test_finish_stops_accumulation(self, env, runtime):
        controller = BaseController(env)
        t = controller.create_cancel()
        runtime.task_started(t)
        env.run(until=1.0)
        runtime.task_finished(t)
        env.run(until=5.0)
        assert runtime.activity.window_task_seconds() == pytest.approx(1.0)

    def test_task_finished_forgets_ledger_state(self, env, runtime):
        controller = BaseController(env)
        res = controller.register_resource("r", ResourceType.MEMORY)
        t = controller.create_cancel()
        runtime.task_started(t)
        runtime.record_get(t, res, 10)
        runtime.task_finished(t)
        assert runtime.ledger.task_total(id(t), res).acquired == 0
