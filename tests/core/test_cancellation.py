"""Tests for the cancellation manager: cooldown, fairness, re-execution."""

import pytest

from repro.core import (
    AtroposConfig,
    BaseController,
    CancellationManager,
    TaskKind,
)
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


def live_task(env, controller, **kwargs):
    holder = {}

    def body(env):
        holder["task"] = controller.create_cancel(**kwargs)
        try:
            yield env.timeout(1000.0)
        except Interrupt:
            holder["interrupted_at"] = env.now

    env.process(body(env))
    env.run(until=env.now + 1e-6)
    return holder


def test_cancel_invokes_default_initiator(env):
    controller = BaseController(env)
    mgr = CancellationManager(env, AtroposConfig(), calm_check=lambda: True)
    holder = live_task(env, controller)
    assert mgr.cancel(holder["task"], resource=None, score=1.0)
    env.run(until=env.now + 0.01)
    assert "interrupted_at" in holder
    assert len(mgr.log) == 1


def test_cooldown_blocks_rapid_cancels(env):
    controller = BaseController(env)
    config = AtroposConfig(cancel_cooldown=1.0)
    mgr = CancellationManager(env, config, calm_check=lambda: True)
    t1 = live_task(env, controller)["task"]
    t2 = live_task(env, controller)["task"]
    assert mgr.cancel(t1, None, 1.0)
    assert mgr.in_cooldown
    assert not mgr.cancel(t2, None, 1.0)
    env.run(until=env.now + 2.0)
    assert not mgr.in_cooldown
    assert mgr.cancel(t2, None, 1.0)


def test_cancel_disabled_by_config(env):
    controller = BaseController(env)
    config = AtroposConfig(cancellation_enabled=False)
    mgr = CancellationManager(env, config, calm_check=lambda: True)
    t = live_task(env, controller)["task"]
    assert not mgr.cancel(t, None, 1.0)
    assert mgr.log == []


def test_cancel_refuses_non_cancellable_task(env):
    controller = BaseController(env)
    mgr = CancellationManager(env, AtroposConfig(), calm_check=lambda: True)
    t = live_task(env, controller, cancellable=False)["task"]
    assert not mgr.cancel(t, None, 1.0)


def test_custom_initiator_used(env):
    controller = BaseController(env)
    mgr = CancellationManager(env, AtroposConfig(), calm_check=lambda: True)
    calls = []
    mgr.set_initiator(lambda task, signal: calls.append((task, signal)))
    t = live_task(env, controller)["task"]
    mgr.cancel(t, None, 2.5)
    assert len(calls) == 1
    assert calls[0][1].score == 2.5


class TestReexecutionGate:
    def run_gate(self, env, mgr, task, arrival_time):
        result = {}

        def driver(env):
            decision = yield from mgr.reexecution_gate(task, arrival_time)
            result["decision"] = decision
            result["time"] = env.now

        env.process(driver(env))
        env.run()
        return result

    def test_retry_when_calm(self, env):
        controller = BaseController(env)
        config = AtroposConfig(
            reexec_stability_window=0.5, reexec_check_period=0.1
        )
        mgr = CancellationManager(env, config, calm_check=lambda: True)
        t = live_task(env, controller)["task"]
        t.process.interrupt()  # stop the long sleep so env.run() terminates
        result = self.run_gate(env, mgr, t, arrival_time=env.now)
        assert result["decision"] == "retry"
        # Waited out the stability window first.
        assert result["time"] >= 0.5

    def test_drop_when_never_calm(self, env):
        controller = BaseController(env)
        config = AtroposConfig(
            slo_latency=0.1, reexec_slo_multiple=5.0, reexec_check_period=0.05
        )
        mgr = CancellationManager(env, config, calm_check=lambda: False)
        t = live_task(env, controller)["task"]
        t.process.interrupt()
        arrival = env.now
        result = self.run_gate(env, mgr, t, arrival_time=arrival)
        assert result["decision"] == "drop"
        # Dropped once the SLO budget (0.5s) was exhausted.
        assert result["time"] == pytest.approx(arrival + 0.5, abs=0.1)

    def test_retry_when_contention_clears_midway(self, env):
        controller = BaseController(env)
        config = AtroposConfig(
            slo_latency=10.0,
            reexec_stability_window=0.2,
            reexec_check_period=0.05,
        )
        calm_after = 1.0
        mgr = CancellationManager(
            env, config, calm_check=lambda: env.now >= calm_after
        )
        t = live_task(env, controller)["task"]
        t.process.interrupt()
        result = self.run_gate(env, mgr, t, arrival_time=env.now)
        assert result["decision"] == "retry"
        assert result["time"] >= calm_after + 0.2

    def test_background_task_force_retried_after_max_wait(self, env):
        controller = BaseController(env)
        config = AtroposConfig(
            background_reexec_delay=1.0,
            background_max_wait=2.0,
            reexec_check_period=0.1,
        )
        mgr = CancellationManager(env, config, calm_check=lambda: False)
        t = live_task(env, controller, kind=TaskKind.BACKGROUND)["task"]
        t.process.interrupt()
        result = self.run_gate(env, mgr, t, arrival_time=env.now)
        assert result["decision"] == "retry"
        # Minimum deferral (1.0) + bounded wait (2.0).
        assert result["time"] == pytest.approx(3.0, abs=0.2)

    def test_background_minimum_deferral_applies_even_when_calm(self, env):
        """A cancelled background task must not re-enter immediately just
        because its own absence made the system look calm."""
        controller = BaseController(env)
        config = AtroposConfig(
            background_reexec_delay=2.0,
            reexec_stability_window=0.1,
            reexec_check_period=0.05,
        )
        mgr = CancellationManager(env, config, calm_check=lambda: True)
        t = live_task(env, controller, kind=TaskKind.BACKGROUND)["task"]
        t.process.interrupt()
        result = self.run_gate(env, mgr, t, arrival_time=env.now)
        assert result["decision"] == "retry"
        assert result["time"] >= 2.0

    def test_unstable_calm_does_not_retry_early(self, env):
        """Calm must hold for the whole stability window."""
        controller = BaseController(env)
        config = AtroposConfig(
            slo_latency=1.0,
            reexec_slo_multiple=5.0,
            reexec_stability_window=0.4,
            reexec_check_period=0.1,
        )
        # Calm flickers: true only on even tenths of a second.
        mgr = CancellationManager(
            env,
            config,
            calm_check=lambda: int(env.now * 10) % 2 == 0,
        )
        t = live_task(env, controller)["task"]
        t.process.interrupt()
        result = self.run_gate(env, mgr, t, arrival_time=env.now)
        # Never stable for 0.4s -> eventually dropped at the SLO budget.
        assert result["decision"] == "drop"


class TestThreadLevelCancellation:
    """§3.6: tasks without an application initiator need the opt-in flag."""

    def test_refused_without_flag(self, env):
        controller = BaseController(env)
        mgr = CancellationManager(
            env,
            AtroposConfig(allow_thread_level_cancel=False),
            calm_check=lambda: True,
        )
        t = live_task(env, controller)["task"]
        t.metadata["requires_thread_cancel"] = True
        assert not mgr.cancel(t, None, 1.0)
        assert mgr.log == []

    def test_allowed_with_flag(self, env):
        controller = BaseController(env)
        mgr = CancellationManager(
            env,
            AtroposConfig(allow_thread_level_cancel=True),
            calm_check=lambda: True,
        )
        t = live_task(env, controller)["task"]
        t.metadata["requires_thread_cancel"] = True
        assert mgr.cancel(t, None, 1.0)

    def test_case_c9_sets_the_flag(self):
        from repro.cases import get_case

        case = get_case("c9")
        assert case.atropos_overrides.get("allow_thread_level_cancel")

    def test_c9_without_flag_cannot_cancel_php(self):
        from repro.baselines import controller_factory
        from repro.cases import get_case

        case = get_case("c9")
        result = case.run(
            controller_factory=controller_factory(
                "atropos", case.slo_latency  # no overrides: flag off
            )
        )
        cancelled = {e.op_name for e in result.controller.cancellation.log}
        assert "php_script" not in cancelled
