"""Tests for the usage ledger."""

import pytest

from repro.core import ResourceHandle, ResourceType
from repro.core.ledger import HoldTracker, UsageLedger, UsageStats

LOCK = ResourceHandle("table_lock", ResourceType.LOCK)
MEM = ResourceHandle("buffer_pool", ResourceType.MEMORY)


class TestUsageStats:
    def test_held_is_acquired_minus_released(self):
        s = UsageStats(acquired=10, released=4)
        assert s.held == 6

    def test_held_never_negative(self):
        s = UsageStats(acquired=1, released=5)
        assert s.held == 0

    def test_add_merges(self):
        a = UsageStats(acquired=1, wait_time=2.0)
        b = UsageStats(acquired=3, hold_time=1.0)
        a.add(b)
        assert a.acquired == 4
        assert a.hold_time == 1.0
        assert a.wait_time == 2.0

    def test_copy_is_independent(self):
        a = UsageStats(acquired=1)
        b = a.copy()
        b.acquired = 99
        assert a.acquired == 1

    def test_reset(self):
        a = UsageStats(acquired=1, wait_time=2.0, hold_time=3.0)
        a.reset()
        assert a.acquired == 0 and a.wait_time == 0 and a.hold_time == 0


class TestHoldTracker:
    def test_single_hold(self):
        t = HoldTracker()
        t.on_get(now=1.0)
        assert t.current_hold(now=4.0) == 3.0
        assert t.on_free(now=5.0) == 4.0
        assert t.current_hold(now=6.0) == 0.0

    def test_nested_holds_use_outermost(self):
        t = HoldTracker()
        t.on_get(1.0)
        t.on_get(2.0)
        assert t.on_free(3.0) == 0.0  # still nested
        assert t.on_free(5.0) == 4.0  # outermost closes

    def test_unbalanced_free_is_safe(self):
        t = HoldTracker()
        assert t.on_free(1.0) == 0.0


class TestLedger:
    def test_get_accumulates_per_task_and_resource(self):
        led = UsageLedger()
        led.record_get(1, MEM, 10, now=0.0)
        led.record_get(1, MEM, 5, now=1.0)
        led.record_get(2, MEM, 3, now=1.0)
        assert led.task_total(1, MEM).acquired == 15
        assert led.task_total(2, MEM).acquired == 3
        assert led.resource_total(MEM).acquired == 18

    def test_free_records_hold_time(self):
        led = UsageLedger()
        led.record_get(1, LOCK, 1, now=2.0)
        led.record_free(1, LOCK, 1, now=7.0)
        assert led.task_total(1, LOCK).hold_time == 5.0
        assert led.resource_total(LOCK).hold_time == 5.0

    def test_slow_by_accumulates_wait(self):
        led = UsageLedger()
        led.record_slow_by(1, LOCK, delay=0.5)
        led.record_slow_by(1, LOCK, delay=0.25, events=2)
        assert led.task_total(1, LOCK).wait_time == 0.75
        assert led.task_total(1, LOCK).wait_events == 3
        assert led.resource_total(LOCK).wait_time == 0.75

    def test_window_resets_but_total_persists(self):
        led = UsageLedger()
        led.record_get(1, MEM, 10, now=0.0)
        led.roll_window()
        led.record_get(1, MEM, 5, now=1.0)
        assert led.task_window(1, MEM).acquired == 5
        assert led.task_total(1, MEM).acquired == 15

    def test_current_hold(self):
        led = UsageLedger()
        led.record_get(1, LOCK, 1, now=3.0)
        assert led.current_hold(1, LOCK, now=10.0) == 7.0
        led.record_free(1, LOCK, 1, now=10.0)
        assert led.current_hold(1, LOCK, now=12.0) == 0.0

    def test_unknown_task_returns_zero_stats(self):
        led = UsageLedger()
        assert led.task_total(99, MEM).acquired == 0
        assert led.current_hold(99, MEM, now=1.0) == 0.0

    def test_tasks_touching(self):
        led = UsageLedger()
        led.record_get(1, MEM, 1, now=0.0)
        led.record_get(2, LOCK, 1, now=0.0)
        assert led.tasks_touching(MEM) == [1]
        assert led.tasks_touching(LOCK) == [2]

    def test_forget_task_drops_all_state(self):
        led = UsageLedger()
        led.record_get(1, MEM, 10, now=0.0)
        led.record_get(1, LOCK, 1, now=0.0)
        led.forget_task(1)
        assert led.task_total(1, MEM).acquired == 0
        assert led.tasks_touching(MEM) == []
        # Resource aggregates persist (they describe the resource).
        assert led.resource_total(MEM).acquired == 10
