"""Tests for the distributed-cancellation extension (paper §4 sketch)."""

import pytest

from repro.core import BaseController, CancelSignal
from repro.core.distributed import Delivery, Node, TaskTree
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def controller(env):
    return BaseController(env)


def spawn(env, controller, name, log):
    """Spawn a live task that records its cancellation."""
    holder = {}

    def body(env):
        task = controller.create_cancel(op_name=name)
        holder["task"] = task
        try:
            yield env.timeout(1000.0)
        except Interrupt as exc:
            log.append((name, env.now, exc.cause.reason))
        finally:
            controller.free_cancel(task)

    env.process(body(env))
    env.run(until=env.now + 1e-6)
    return holder["task"]


def run_cancel(env, tree, signal=None):
    result = {}

    def driver(env):
        deliveries = yield from tree.cancel_all(signal)
        result["deliveries"] = deliveries

    env.process(driver(env))
    env.run(until=env.now + 1.0)
    return result["deliveries"]


def test_cancel_propagates_to_all_children(env, controller):
    log = []
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root)
    node_a, node_b = Node("a"), Node("b")
    for i, node in enumerate([node_a, node_b, node_b]):
        tree.add_child(spawn(env, controller, f"child{i}", log), node)

    deliveries = run_cancel(env, tree)
    assert all(d.delivered for d in deliveries)
    assert {name for name, _, _ in log} == {"root", "child0", "child1", "child2"}
    assert tree.fully_cancelled()


def test_propagation_pays_per_hop_delay(env, controller):
    log = []
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root, propagation_delay=0.01)
    for i in range(3):
        tree.add_child(spawn(env, controller, f"c{i}", log), Node(f"n{i}"))
    start = env.now
    run_cancel(env, tree)
    child_times = sorted(t for name, t, _ in log if name != "root")
    assert child_times[0] == pytest.approx(start + 0.01, abs=1e-6)
    assert child_times[2] == pytest.approx(start + 0.03, abs=1e-6)


def test_partitioned_node_misses_signal(env, controller):
    log = []
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root)
    healthy = spawn(env, controller, "healthy", log)
    stranded = spawn(env, controller, "stranded", log)
    bad_node = Node("bad")
    tree.add_child(healthy, Node("good"))
    tree.add_child(stranded, bad_node)
    bad_node.partition()

    deliveries = run_cancel(env, tree)
    outcomes = {d.task.op_name: d.delivered for d in deliveries}
    assert outcomes == {"healthy": True, "stranded": False}
    assert not tree.fully_cancelled()
    assert [d.task.op_name for d in tree.undelivered()] == ["stranded"]


def test_retry_after_heal_completes_cancellation(env, controller):
    log = []
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root)
    stranded = spawn(env, controller, "stranded", log)
    bad_node = Node("bad")
    tree.add_child(stranded, bad_node)
    bad_node.partition()
    run_cancel(env, tree)
    assert not tree.fully_cancelled()

    bad_node.heal()

    def retry(env):
        yield from tree.retry_undelivered()

    env.process(retry(env))
    env.run(until=env.now + 1.0)
    assert tree.fully_cancelled()
    assert ("stranded", pytest.approx(env.now, abs=1.0), "distributed-cancel-retry") in [
        (n, t, r) for n, t, r in log
    ]


def test_already_finished_child_is_fine(env, controller):
    log = []
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root)
    child = spawn(env, controller, "quick", log)
    tree.add_child(child, Node("n"))
    child.process.interrupt(CancelSignal(reason="pre-finished"))
    env.run(until=env.now + 0.1)
    deliveries = run_cancel(env, tree)
    assert deliveries[0].delivered
    assert deliveries[0].reason == "already-finished"


def test_root_cannot_be_its_own_child(env, controller):
    log = []
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root)
    with pytest.raises(ValueError):
        tree.add_child(root, Node("n"))


def test_children_tagged_with_root_key(env, controller):
    log = []
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root)
    child = spawn(env, controller, "child", log)
    tree.add_child(child, Node("n"))
    assert child.metadata["root_key"] == root.key


def test_remove_child_excludes_from_propagation(env, controller):
    log = []
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root)
    kept = spawn(env, controller, "kept", log)
    removed = spawn(env, controller, "removed", log)
    tree.add_child(kept, Node("n"))
    tree.add_child(removed, Node("n"))
    tree.remove_child(removed)
    run_cancel(env, tree)
    cancelled = {name for name, _, _ in log}
    assert "kept" in cancelled
    assert "removed" not in cancelled
