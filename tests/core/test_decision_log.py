"""Tests for the decision log and the Atropos explain() timeline."""

import pytest

from repro.core.decision_log import DecisionEvent, DecisionKind, DecisionLog


class TestDecisionLog:
    def test_record_and_query(self):
        log = DecisionLog()
        log.record(1.0, DecisionKind.DETECTION, "d1")
        log.record(2.0, DecisionKind.CANCELLATION, "c1", key=7)
        assert len(log) == 2
        assert [e.summary for e in log.events_of(DecisionKind.CANCELLATION)] == ["c1"]

    def test_between(self):
        log = DecisionLog()
        for t in (0.5, 1.5, 2.5):
            log.record(t, DecisionKind.DETECTION, f"at-{t}")
        assert [e.time for e in log.between(1.0, 2.0)] == [1.5]

    def test_capacity_bounds_memory(self):
        log = DecisionLog(capacity=3)
        for i in range(5):
            log.record(float(i), DecisionKind.DETECTION, f"e{i}")
        assert len(log) == 3
        assert log.dropped == 2
        assert log.events[0].summary == "e2"
        assert "2 earlier events dropped" in log.render()

    def test_render_filters_and_limits(self):
        log = DecisionLog()
        log.record(1.0, DecisionKind.DETECTION, "det")
        log.record(2.0, DecisionKind.CANCELLATION, "can")
        only_cancel = log.render(kinds=[DecisionKind.CANCELLATION])
        assert "can" in only_cancel and "det" not in only_cancel
        assert "det" not in log.render(limit=1)

    def test_render_empty(self):
        assert "no decisions" in DecisionLog().render()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DecisionLog(capacity=0)

    def test_event_render_includes_details(self):
        log = DecisionLog()
        e = log.record(1.25, DecisionKind.CANCELLATION, "x", score=2.5)
        assert "score=2.5" in e.render()
        assert "t=   1.250s" in e.render()


class TestKindRoundTrips:
    """Every DecisionKind survives record -> query -> value round-trips."""

    @pytest.mark.parametrize("kind", list(DecisionKind))
    def test_value_round_trip(self, kind):
        assert DecisionKind(kind.value) is kind

    @pytest.mark.parametrize("kind", list(DecisionKind))
    def test_record_query_render(self, kind):
        log = DecisionLog()
        event = log.record(1.0, kind, f"event-{kind.value}", detail=1)
        assert log.events_of(kind) == [event]
        assert kind.value in event.render()

    def test_event_payload_round_trip_all_kinds(self):
        log = DecisionLog()
        for i, kind in enumerate(DecisionKind):
            log.record(float(i), kind, f"e-{kind.value}", index=i)
        rebuilt = [
            DecisionEvent(
                time=e.time,
                kind=DecisionKind(e.kind.value),
                summary=e.summary,
                details=dict(e.details),
            )
            for e in log.events
        ]
        assert rebuilt == log.events
        assert {e.kind for e in rebuilt} == set(DecisionKind)

    def test_adapt_kind_is_logged_by_adaptive_policy(self):
        from repro.core import (
            AdaptiveThresholdPolicy, AtroposConfig, OverloadDetector,
        )
        from repro.sim import Environment

        env = Environment()
        config = AtroposConfig(adaptive_thresholds=True)
        policy = AdaptiveThresholdPolicy(
            OverloadDetector(env, config), config, log := DecisionLog()
        )
        class _Flap:
            kind = "detector-flapping"
        policy.adapt(1.0, {"health_events": [_Flap()]})
        events = log.events_of(DecisionKind.ADAPT)
        assert len(events) == 1
        assert events[0].details["reason"] == "detector-flapping"


class TestAtroposTimeline:
    def test_end_to_end_timeline_on_case(self):
        from repro.baselines import controller_factory
        from repro.cases import get_case

        case = get_case("c4")
        result = case.run(
            controller_factory=controller_factory("atropos", case.slo_latency)
        )
        atropos = result.controller
        timeline = atropos.explain()
        assert "resource overload" in timeline
        assert "cancelled 'select_for_update'" in timeline
        kinds = {e.kind for e in atropos.decision_log.events}
        assert DecisionKind.DETECTION in kinds
        assert DecisionKind.CLASSIFICATION in kinds
        assert DecisionKind.CANCELLATION in kinds
        assert DecisionKind.REEXECUTION in kinds
