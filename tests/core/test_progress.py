"""Tests for task progress models and the future-gain multiplier."""

import pytest

from repro.core import (
    CallbackProgress,
    GetNextProgress,
    TimeBasedProgress,
    UnknownProgress,
    clamp_progress,
    future_gain_multiplier,
)
from repro.core.progress import MAX_PROGRESS, MIN_PROGRESS


class TestClamp:
    def test_clamps_low(self):
        assert clamp_progress(0.0) == MIN_PROGRESS
        assert clamp_progress(-1.0) == MIN_PROGRESS

    def test_clamps_high(self):
        assert clamp_progress(1.0) == MAX_PROGRESS
        assert clamp_progress(2.0) == MAX_PROGRESS

    def test_passes_through_in_range(self):
        assert clamp_progress(0.5) == 0.5


class TestFutureGainMultiplier:
    def test_halfway_is_neutral(self):
        assert future_gain_multiplier(0.5) == pytest.approx(1.0)

    def test_early_task_has_large_multiplier(self):
        assert future_gain_multiplier(0.1) == pytest.approx(9.0)

    def test_late_task_has_small_multiplier(self):
        assert future_gain_multiplier(0.9) == pytest.approx(1 / 9)

    def test_paper_lock_example(self):
        """Held 1s at 40% progress -> estimated gain factor 1.5 (§3.4)."""
        assert 1.0 * future_gain_multiplier(0.4) == pytest.approx(1.5)

    def test_finite_at_extremes(self):
        assert future_gain_multiplier(0.0) < float("inf")
        assert future_gain_multiplier(1.0) >= 0.0


class TestGetNextProgress:
    def test_tracks_rows(self):
        p = GetNextProgress(total_rows=100)
        p.advance(25)
        assert p.value(now=0.0) == pytest.approx(0.25)

    def test_caps_at_total(self):
        p = GetNextProgress(total_rows=10)
        p.advance(50)
        assert p.value(0.0) == MAX_PROGRESS

    def test_revised_total(self):
        p = GetNextProgress(total_rows=100)
        p.advance(50)
        p.set_total(200)
        assert p.value(0.0) == pytest.approx(0.25)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            GetNextProgress(total_rows=0)
        p = GetNextProgress(total_rows=10)
        with pytest.raises(ValueError):
            p.advance(-1)
        with pytest.raises(ValueError):
            p.set_total(0)


class TestTimeBasedProgress:
    def test_elapsed_fraction(self):
        p = TimeBasedProgress(started_at=10.0, expected_duration=20.0)
        assert p.value(now=15.0) == pytest.approx(0.25)

    def test_before_start_clamps(self):
        p = TimeBasedProgress(started_at=10.0, expected_duration=20.0)
        assert p.value(now=5.0) == MIN_PROGRESS

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            TimeBasedProgress(0.0, 0.0)


class TestCallbackAndUnknown:
    def test_callback_is_clamped(self):
        p = CallbackProgress(lambda: 5.0)
        assert p.value(0.0) == MAX_PROGRESS

    def test_unknown_is_halfway(self):
        assert UnknownProgress().value(0.0) == 0.5
