"""Unit tests for the mitigation-lever registry and Atropos wiring."""

import pytest

from repro.core import Atropos, AtroposConfig, CancellationAction
from repro.core.levers import (
    LEVERS,
    CancelLever,
    CompositeLever,
    LockScheduleLever,
    resolve_lever,
)
from repro.sim import Environment
from repro.sim.resources import SyncLock


class TestRegistry:
    def test_known_levers(self):
        assert list(LEVERS) == ["cancel", "lock_reshape", "composite"]
        assert resolve_lever("cancel") is CancelLever
        assert resolve_lever("lock_reshape") is LockScheduleLever
        assert resolve_lever("composite") is CompositeLever

    def test_unknown_lever_names_the_known_ones(self):
        with pytest.raises(KeyError, match="cancel, lock_reshape, composite"):
            resolve_lever("nuke")

    def test_cancellation_action_alias_is_cancel_lever(self):
        # Backward compatibility: the historical action-stage name.
        assert CancellationAction is CancelLever

    def test_config_rejects_unknown_lever(self):
        with pytest.raises(ValueError, match="lever must be one of"):
            AtroposConfig(lever="nuke")


class TestAtroposWiring:
    def test_default_lever_is_cancel(self):
        controller = Atropos(Environment())
        assert type(controller.lever) is CancelLever
        assert controller.pipeline.action is controller.lever

    @pytest.mark.parametrize(
        "name,cls",
        [("lock_reshape", LockScheduleLever), ("composite", CompositeLever)],
    )
    def test_config_selects_lever(self, name, cls):
        controller = Atropos(Environment(), AtroposConfig(lever=name))
        assert type(controller.lever) is cls

    def test_lever_snapshot_in_controller_telemetry(self):
        controller = Atropos(
            Environment(), AtroposConfig(lever="lock_reshape")
        )
        snap = controller.telemetry_snapshot()
        assert snap["lever"]["name"] == "lock_reshape"
        assert snap["lever"]["actions_total"] == 0
        assert snap["lever"]["parked_total"] == 0


class TestLockDiscovery:
    def test_bind_discovers_locks_including_lists(self):
        env = Environment()
        controller = Atropos(env, AtroposConfig(lever="lock_reshape"))

        class App:
            def __init__(self):
                self.one = SyncLock(env, "app.latch")
                self.many = [
                    SyncLock(env, "app.table_lock.0"),
                    SyncLock(env, "app.table_lock.1"),
                ]
                self.other = "not a lock"

        controller.bind(App())
        names = [lock.name for lock in controller.lever._locks]
        assert names == ["app.latch", "app.table_lock.0", "app.table_lock.1"]
        assert [
            lock.name
            for lock in controller.lever._locks_for("app.table_lock")
        ] == ["app.table_lock.0", "app.table_lock.1"]
        assert [
            lock.name for lock in controller.lever._locks_for("app.latch")
        ] == ["app.latch"]
