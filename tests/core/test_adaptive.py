"""Tests for health-driven adaptive thresholds (repro.core.adaptive)."""

import hashlib
import os
import subprocess
import sys
from types import SimpleNamespace

import pytest

from repro.core import (
    AdaptiveThresholdPolicy,
    Atropos,
    AtroposConfig,
    HealthSignalSource,
    NoAdaptation,
    OverloadDetector,
)
from repro.core.decision_log import DecisionKind, DecisionLog
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_policy(env, **overrides):
    settings = dict(
        slo_latency=0.1,
        detection_window=1.0,
        adaptive_thresholds=True,
        adapt_recovery_windows=3,
    )
    settings.update(overrides)
    config = AtroposConfig(**settings)
    detector = OverloadDetector(env, config)
    log = DecisionLog()
    return AdaptiveThresholdPolicy(detector, config, log), detector, log


def health(kind):
    return SimpleNamespace(kind=kind)


class TestAdaptiveThresholdPolicy:
    def test_flapping_widens_detection_window(self, env):
        policy, detector, log = make_policy(env)
        policy.adapt(1.0, {"health_events": [health("detector-flapping")]})
        assert detector.live.detection_window == pytest.approx(1.5)
        assert policy.adaptations == 1
        events = log.events_of(DecisionKind.ADAPT)
        assert len(events) == 1
        assert events[0].details["param"] == "detection_window"
        assert events[0].details["reason"] == "detector-flapping"

    def test_window_widening_is_capped(self, env):
        policy, detector, log = make_policy(
            env, adapt_max_window_multiple=2.0
        )
        for t in range(10):
            policy.adapt(
                float(t), {"health_events": [health("detector-flapping")]}
            )
        assert detector.live.detection_window == pytest.approx(2.0)
        # Once capped, further flapping makes no move and logs no event.
        assert policy.adaptations == len(log.events_of(DecisionKind.ADAPT))
        assert policy.adaptations == 2  # 1.0 -> 1.5 -> 2.0 (capped)

    def test_sustained_p99_tightens_slack(self, env):
        policy, detector, _ = make_policy(env, adapt_p99_sustain=3)
        for t in range(2):
            policy.adapt(float(t), {"health_events": [health("p99-ceiling")]})
        assert detector.live.slo_slack == pytest.approx(1.2)  # not yet
        policy.adapt(2.0, {"health_events": [health("p99-ceiling")]})
        assert detector.live.slo_slack == pytest.approx(1.15)

    def test_slack_floor(self, env):
        policy, detector, _ = make_policy(
            env, adapt_p99_sustain=1, adapt_min_slack=1.1
        )
        for t in range(10):
            policy.adapt(float(t), {"health_events": [health("p99-ceiling")]})
        assert detector.live.slo_slack == pytest.approx(1.1)

    def test_p99_streak_resets_on_healthy_window(self, env):
        policy, detector, _ = make_policy(env, adapt_p99_sustain=3)
        for t in range(2):
            policy.adapt(float(t), {"health_events": [health("p99-ceiling")]})
        policy.adapt(2.0, {"health_events": []})
        policy.adapt(3.0, {"health_events": [health("p99-ceiling")]})
        assert detector.live.slo_slack == pytest.approx(1.2)

    def test_recovery_steps_back_toward_config(self, env):
        policy, detector, log = make_policy(env, adapt_recovery_windows=2)
        policy.adapt(0.0, {"health_events": [health("detector-flapping")]})
        assert detector.live.detection_window == pytest.approx(1.5)
        policy.adapt(1.0, {"health_events": []})
        policy.adapt(2.0, {"health_events": []})
        assert detector.live.detection_window == pytest.approx(1.0)
        reasons = [e.details["reason"] for e in log.events_of(DecisionKind.ADAPT)]
        assert reasons[-1] == "recovery"

    def test_every_move_is_an_adapt_event(self, env):
        policy, _, log = make_policy(env, adapt_p99_sustain=1)
        policy.adapt(0.0, {"health_events": [health("detector-flapping")]})
        policy.adapt(1.0, {"health_events": [health("p99-ceiling")]})
        assert policy.adaptations == 2
        assert len(log.events_of(DecisionKind.ADAPT)) == 2
        assert len(policy.adapt_events) == 2
        for change in policy.adapt_events:
            assert set(change) == {"time", "param", "old", "new", "reason"}

    def test_no_events_no_moves(self, env):
        policy, detector, log = make_policy(env)
        for t in range(50):
            policy.adapt(float(t), {"health_events": []})
        assert policy.adaptations == 0
        assert detector.live.detection_window == pytest.approx(1.0)
        assert detector.live.slo_slack == pytest.approx(1.2)
        assert log.events_of(DecisionKind.ADAPT) == []


class TestHealthSignalSource:
    def test_maps_detector_signals_to_rule_values(self, env):
        from repro.telemetry.health import HealthMonitor, HealthRule

        monitor = HealthMonitor([
            HealthRule(
                name="ceiling",
                kind="p99-ceiling",
                params={"limit": 0.1, "min_samples": 1},
            )
        ])
        source = HealthSignalSource(monitor)
        signals = {
            "potential_overload": True,
            "detector_tail_latency": 0.5,
            "detector_samples": 20,
        }
        source.sample(1.0, signals)
        events = signals["health_events"]
        assert [e.kind for e in events] == ["p99-ceiling"]
        assert source.telemetry_snapshot() == {"health_events": 1}


class TestAtroposWiring:
    def test_adaptive_off_by_default(self, env):
        atropos = Atropos(env, AtroposConfig(slo_latency=0.05))
        assert isinstance(atropos.adaptation, NoAdaptation)
        assert not any(
            isinstance(s, HealthSignalSource) for s in atropos.pipeline.sources
        )

    def test_adaptive_flag_builds_the_policy(self, env):
        atropos = Atropos(
            env,
            AtroposConfig(slo_latency=0.05, adaptive_thresholds=True),
        )
        assert isinstance(atropos.adaptation, AdaptiveThresholdPolicy)
        assert any(
            isinstance(s, HealthSignalSource) for s in atropos.pipeline.sources
        )
        assert atropos.pipeline.adaptation is atropos.adaptation


class TestAdaptiveRuns:
    def test_adaptive_run_diverges_and_audits(self):
        from repro.campaign import execute
        from repro.experiments.case_family import case_spec

        fixed, adaptive = execute([
            case_spec("adapt-test", "c2", 1, atropos_overrides={}),
            case_spec("adapt-test", "c2", 1, atropos_overrides={},
                      adaptive=True),
        ])
        assert fixed.extras.get("adaptations", 0) == 0
        assert adaptive.adaptations > 0
        assert adaptive.extras["adapt_events"]
        assert fixed.summary.p99_latency != adaptive.summary.p99_latency

    def test_fixed_case_unaffected_when_health_never_fires(self):
        # Seed 0 on c2 never trips the health rules: the adaptive run
        # must be outcome-identical to the fixed one.
        from repro.campaign import execute
        from repro.experiments.case_family import case_spec

        fixed, adaptive = execute([
            case_spec("adapt-test", "c2", 0, atropos_overrides={}),
            case_spec("adapt-test", "c2", 0, atropos_overrides={},
                      adaptive=True),
        ])
        assert adaptive.adaptations == 0
        assert fixed.summary == adaptive.summary
        assert fixed.cancels == adaptive.cancels


_DETERMINISM_SCRIPT = """
import json
import os
import sys

os.environ["REPRO_CACHE"] = "0"

from repro.campaign import execute
from repro.experiments.case_family import case_spec

outcome, = execute([
    case_spec("det", "c2", 1, atropos_overrides={}, adaptive=True)
])
payload = outcome.to_payload()
payload.pop("walltime")
payload.pop("worker", None)
sys.stdout.write(json.dumps(payload, sort_keys=True))
"""


def _adaptive_digest(hash_seed):
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    proc = subprocess.run(
        [sys.executable, "-c", _DETERMINISM_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert proc.stdout, proc.stderr
    assert '"adaptations"' in proc.stdout
    return hashlib.sha256(proc.stdout.encode()).hexdigest()


def test_adaptive_run_byte_identical_across_hash_seeds():
    digests = {_adaptive_digest(seed) for seed in ("0", "1", "9973")}
    assert len(digests) == 1
