"""Tests for the cancellable-task abstraction."""

import pytest

from repro.core import BaseController, CancelSignal, TaskKind, TaskState
from repro.core.task import default_initiator
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def controller(env):
    return BaseController(env)


def test_create_cancel_generates_unique_keys(controller):
    t1 = controller.create_cancel()
    t2 = controller.create_cancel()
    assert t1.key != t2.key


def test_create_cancel_accepts_explicit_key(controller):
    t = controller.create_cancel(key="conn-42")
    assert t.key == "conn-42"


def test_create_cancel_captures_active_process(env, controller):
    captured = []

    def proc(env):
        task = controller.create_cancel()
        captured.append(task.process)
        yield env.timeout(0)

    p = env.process(proc(env))
    env.run()
    assert captured == [p]


def test_task_state_transitions(env, controller):
    task = controller.create_cancel()
    assert task.state is TaskState.RUNNING
    assert task.alive
    task.finish()
    assert task.state is TaskState.FINISHED
    assert not task.alive


def test_cancel_transition(env, controller):
    task = controller.create_cancel()
    task.begin_cancel(CancelSignal())
    assert task.state is TaskState.CANCELLING
    assert task.alive
    task.finish()
    assert task.state is TaskState.CANCELLED


def test_finish_is_idempotent(env, controller):
    task = controller.create_cancel()
    task.finish()
    task.finish()
    assert task.state is TaskState.FINISHED


def test_cannot_cancel_finished_task(env, controller):
    task = controller.create_cancel()
    task.finish()
    with pytest.raises(RuntimeError):
        task.begin_cancel(CancelSignal())


def test_cancellable_requires_live_process(env, controller):
    def proc(env):
        yield env.timeout(5.0)

    def creator(env):
        task = controller.create_cancel()
        yield env.timeout(1.0)
        created.append(task)

    created = []
    env.process(creator(env))
    env.run()
    # Process finished; task no longer cancellable.
    assert not created[0].cancellable


def test_cancellable_false_without_process(env, controller):
    # Created outside any process: nothing to interrupt.
    task = controller.create_cancel()
    assert task.process is None
    assert not task.cancellable


def test_fairness_cancelled_once_not_cancellable_again(env, controller):
    def proc(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(100.0)

    def driver(env):
        task = controller.create_cancel()
        yield env.timeout(0)
        tasks.append(task)

    tasks = []

    def body(env):
        task = controller.create_cancel()
        tasks.append(task)
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass

    p = env.process(body(env))

    def killer(env):
        yield env.timeout(1.0)
        task = tasks[0]
        assert task.cancellable
        task.begin_cancel(CancelSignal())
        default_initiator(task, task.cancel_signal)

    env.process(killer(env))
    env.run()
    assert tasks[0].cancel_count == 1
    assert not tasks[0].cancellable


def test_mark_non_cancellable(env, controller):
    def body(env):
        task = controller.create_cancel()
        tasks.append(task)
        yield env.timeout(1.0)

    tasks = []
    env.process(body(env))

    def check(env):
        yield env.timeout(0.5)
        tasks[0].mark_non_cancellable()
        assert not tasks[0].cancellable

    env.process(check(env))
    env.run()


def test_background_kind(controller):
    task = controller.create_cancel(kind=TaskKind.BACKGROUND)
    assert task.kind is TaskKind.BACKGROUND


def test_age_tracks_time(env, controller):
    def body(env):
        task = controller.create_cancel()
        tasks.append(task)
        yield env.timeout(3.0)
        ages.append(task.age)

    tasks, ages = [], []
    env.process(body(env))
    env.run()
    assert ages == [3.0]


def test_free_cancel_removes_from_registry(env, controller):
    task = controller.create_cancel()
    assert controller.live_tasks() == [task]
    controller.free_cancel(task)
    assert controller.live_tasks() == []


def test_free_cancel_idempotent(env, controller):
    task = controller.create_cancel()
    controller.free_cancel(task)
    controller.free_cancel(task)  # no error


def test_default_initiator_interrupts_process(env, controller):
    log = []

    def body(env):
        task = controller.create_cancel()
        tasks.append(task)
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append(exc.cause.reason)

    tasks = []
    env.process(body(env))

    def killer(env):
        yield env.timeout(1.0)
        signal = CancelSignal(reason="test-cancel")
        tasks[0].begin_cancel(signal)
        default_initiator(tasks[0], signal)

    env.process(killer(env))
    env.run()
    assert log == ["test-cancel"]


def test_default_initiator_noop_for_dead_process(env, controller):
    def body(env):
        task = controller.create_cancel()
        tasks.append(task)
        yield env.timeout(0.1)

    tasks = []
    env.process(body(env))
    env.run()
    # Should not raise even though the process is gone.
    default_initiator(tasks[0], CancelSignal())


def test_register_resource_idempotent(controller):
    from repro.core import ResourceType

    h1 = controller.register_resource("buffer_pool", ResourceType.MEMORY)
    h2 = controller.register_resource("buffer_pool", ResourceType.MEMORY)
    assert h1 is h2
    with pytest.raises(ValueError):
        controller.register_resource("buffer_pool", ResourceType.LOCK)
