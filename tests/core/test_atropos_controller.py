"""Tests for the assembled Atropos controller (monitor loop behavior)."""

import pytest

from repro.core import (
    Atropos,
    AtroposConfig,
    GetNextProgress,
    ResourceType,
    TaskKind,
)
from repro.sim import Environment, Interrupt, RequestRecord, RequestStatus


@pytest.fixture
def env():
    return Environment()


def make_atropos(env, **overrides):
    settings = dict(
        slo_latency=0.05,
        detection_period=0.1,
        min_window_samples=5,
        cancel_cooldown=0.05,
        contention_threshold=0.25,
    )
    settings.update(overrides)
    return Atropos(env, AtroposConfig(**settings))


def feed_completions(atropos, n, latency, start=0.0):
    for i in range(n):
        finish = start + i * 0.001
        atropos.observe_completion(
            RequestRecord(
                request_id=i,
                op_name="op",
                client_id="c",
                arrival_time=finish - latency,
                finish_time=finish,
                status=RequestStatus.COMPLETED,
            )
        )


def hog_task(env, atropos, resource, amount, progress_done=0.1):
    """Spawn a live task holding `amount` of `resource`."""
    holder = {}

    def body(env):
        progress = GetNextProgress(100)
        progress.advance(progress_done * 100)
        task = atropos.create_cancel(op_name="hog", progress=progress)
        holder["task"] = task
        atropos.get_resource(task, resource, amount)
        try:
            yield env.timeout(1000.0)
        except Interrupt as exc:
            holder["cancelled_at"] = env.now
            holder["signal"] = exc.cause
        atropos.free_cancel(task)

    env.process(body(env))
    env.run(until=env.now + 1e-6)
    return holder


def test_monitor_cancels_culprit_on_resource_overload(env):
    atropos = make_atropos(env)
    mem = atropos.register_resource("pool", ResourceType.MEMORY)
    atropos.start()
    holder = hog_task(env, atropos, mem, amount=1000)
    # Latency violations + memory contention in the window.
    feed_completions(atropos, 20, latency=1.0)
    atropos.slow_by_resource(holder["task"], mem, delay=0.5, events=500)
    env.run(until=0.5)
    assert atropos.cancels_issued == 1
    assert "cancelled_at" in holder
    assert holder["signal"].resource is mem


def test_no_cancel_without_latency_violation(env):
    # A loose SLO that neither the tail nor the hog's age violates: the
    # contention signal alone must not trigger cancellation (§3.3 gates
    # everything behind the end-to-end performance signal).
    atropos = make_atropos(env, slo_latency=10.0)
    mem = atropos.register_resource("pool", ResourceType.MEMORY)
    atropos.start()
    holder = hog_task(env, atropos, mem, amount=1000)
    feed_completions(atropos, 20, latency=0.001)  # healthy latencies
    atropos.slow_by_resource(holder["task"], mem, delay=0.5, events=500)
    env.run(until=0.5)
    assert atropos.cancels_issued == 0


def test_regular_overload_classified_not_cancelled(env):
    """Latency violation with no contended resource -> regular overload."""
    atropos = make_atropos(env)
    atropos.register_resource("pool", ResourceType.MEMORY)
    atropos.start()
    hog = hog_task(env, atropos, atropos.resources["pool"], amount=0)
    feed_completions(atropos, 20, latency=1.0)
    env.run(until=0.35)
    assert atropos.cancels_issued == 0
    assert atropos.regular_overloads >= 1


def test_fine_mode_follows_overload_state(env):
    atropos = make_atropos(env)
    atropos.register_resource("pool", ResourceType.MEMORY)
    atropos.start()
    assert not atropos.runtime.fine_mode
    feed_completions(atropos, 20, latency=1.0)
    env.run(until=0.15)
    assert atropos.runtime.fine_mode
    # Window ages out (detection_window=1.0): back to coarse mode.
    env.run(until=2.5)
    assert not atropos.runtime.fine_mode


def test_oldest_request_age_ignores_background_tasks(env):
    atropos = make_atropos(env)

    def background(env):
        atropos.create_cancel(kind=TaskKind.BACKGROUND, op_name="purge")
        yield env.timeout(1000.0)

    env.process(background(env))
    env.run(until=1.0)
    assert atropos._oldest_request_age() == 0.0

    def request(env):
        atropos.create_cancel(kind=TaskKind.REQUEST, op_name="query")
        yield env.timeout(1000.0)

    env.process(request(env))
    env.run(until=3.0)
    assert atropos._oldest_request_age() == pytest.approx(2.0)


def test_is_calm_reflects_contention(env):
    atropos = make_atropos(env)
    mem = atropos.register_resource("pool", ResourceType.MEMORY)
    holder = hog_task(env, atropos, mem, amount=100)
    atropos.runtime.task_started  # task already started via create_cancel
    assert atropos._is_calm()
    env.run(until=1.0)
    atropos.slow_by_resource(holder["task"], mem, delay=2.0, events=100)
    assert not atropos._is_calm()


def test_start_is_idempotent(env):
    atropos = make_atropos(env)
    atropos.start()
    atropos.start()
    env.run(until=0.3)  # one monitor loop, no crash


def test_last_assessment_exposed(env):
    atropos = make_atropos(env)
    mem = atropos.register_resource("pool", ResourceType.MEMORY)
    atropos.start()
    holder = hog_task(env, atropos, mem, amount=1000)
    feed_completions(atropos, 20, latency=1.0)
    atropos.slow_by_resource(holder["task"], mem, delay=0.5, events=500)
    env.run(until=0.15)
    assert atropos.last_assessment is not None
    assert atropos.last_assessment.is_resource_overload


def test_cancellation_disabled_still_detects(env):
    atropos = make_atropos(env, cancellation_enabled=False)
    mem = atropos.register_resource("pool", ResourceType.MEMORY)
    atropos.start()
    holder = hog_task(env, atropos, mem, amount=1000)
    feed_completions(atropos, 20, latency=1.0)
    atropos.slow_by_resource(holder["task"], mem, delay=0.5, events=500)
    env.run(until=0.5)
    assert atropos.cancels_issued == 0
    assert atropos.runtime.fine_mode  # tracing escalated anyway


class TestFallbackDelegation:
    """§3.3: regular (demand) overload is delegated to a conventional
    admission controller; resource overload is handled by cancellation."""

    def _demand_overload_run(self, fallback_factory=None):
        """MySQL at ~2x capacity with no culprit: pure demand overload."""
        from repro.apps.mysql import MySQL, light_mix
        from repro.experiments import run_simulation
        from repro.workloads import OpenLoopSource, Workload

        def controller(env):
            fallback = fallback_factory(env) if fallback_factory else None
            return Atropos(
                env,
                AtroposConfig(slo_latency=0.02),
                fallback=fallback,
            )

        return run_simulation(
            lambda env, ctl, rng: MySQL(env, ctl, rng),
            lambda app, rng: Workload(
                [OpenLoopSource(rate=3500.0, mix=light_mix(rng))]
            ),
            controller_factory=controller,
            duration=8.0,
            warmup=2.0,
        )

    @pytest.mark.slow
    def test_demand_overload_without_fallback_is_only_counted(self):
        result = self._demand_overload_run()
        atropos = result.controller
        assert atropos.regular_overloads > 0
        assert atropos.cancels_issued == 0
        assert result.drop_rate == 0.0

    @pytest.mark.slow
    def test_fallback_sheds_load_under_demand_overload(self):
        from repro.baselines import Seda

        result = self._demand_overload_run(
            lambda env: Seda(env, slo_latency=0.02)
        )
        atropos = result.controller
        assert atropos.regular_overloads > 0
        assert atropos.cancels_issued == 0
        # The SEDA fallback rejected excess demand...
        assert result.drop_rate > 0.05
        # ...which keeps the served tail under control vs no fallback.
        uncontrolled = self._demand_overload_run()
        assert result.p99_latency < uncontrolled.p99_latency
