"""Tests for the Breakwater-style overload detector."""

import pytest

from repro.core import AtroposConfig, OverloadDetector
from repro.sim import Environment, RequestRecord, RequestStatus


def record(finish, latency, status=RequestStatus.COMPLETED):
    return RequestRecord(
        request_id=0,
        op_name="op",
        client_id="c",
        arrival_time=finish - latency,
        finish_time=finish,
        status=status,
    )


@pytest.fixture
def env():
    return Environment()


def make_detector(env, **overrides):
    settings = dict(
        slo_latency=0.1,
        slo_slack=1.2,
        min_window_samples=5,
        detection_window=10.0,
    )
    settings.update(overrides)
    return OverloadDetector(env, AtroposConfig(**settings))


def feed(detector, n, latency, start=0.0, spacing=0.01):
    for i in range(n):
        detector.observe_completion(record(start + i * spacing, latency))


def test_no_overload_when_latency_under_slo(env):
    det = make_detector(env)
    feed(det, 50, latency=0.05)
    assert det.check() is False


def test_overload_when_latency_over_slo_and_flat(env):
    det = make_detector(env)
    feed(det, 50, latency=0.5)
    det.check()  # establishes throughput baseline
    # No new completions: throughput is flat while latency violates.
    assert det.check() is True


def test_first_check_with_violation_counts(env):
    """Without a throughput baseline, a latency violation alone triggers."""
    det = make_detector(env)
    feed(det, 50, latency=0.5)
    assert det.check() is True


def test_growing_throughput_suppresses_trigger(env):
    det = make_detector(env)
    feed(det, 20, latency=0.5)
    det.check()
    # Second window has much higher throughput: system still ramping.
    feed(det, 60, latency=0.5, start=0.2, spacing=0.001)
    assert det.check() is False


def test_too_few_samples_never_triggers(env):
    det = make_detector(env)
    feed(det, 3, latency=10.0)
    assert det.check() is False


def test_dropped_requests_not_observed(env):
    det = make_detector(env)
    for i in range(50):
        det.observe_completion(
            record(i * 0.01, 10.0, status=RequestStatus.DROPPED)
        )
    assert det.check() is False


def test_latency_limit_includes_slack(env):
    det = make_detector(env)
    assert det.latency_limit() == pytest.approx(0.12)
    # Latency between SLO and SLO*slack does not trigger.
    feed(det, 50, latency=0.11)
    assert det.check() is False


def test_history_records_samples(env):
    det = make_detector(env)
    feed(det, 50, latency=0.5)
    det.check()
    assert len(det.history) == 1
    sample = det.history[0]
    assert sample.samples == 50
    assert sample.overloaded is True


def test_old_completions_age_out_of_window(env):
    det = make_detector(env, detection_window=1.0)
    feed(det, 50, latency=0.5)  # finishes by t=0.5
    env.run(until=100.0)
    # At t=100, the window is empty: no samples, no trigger.
    assert det.check() is False
