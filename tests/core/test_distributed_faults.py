"""Failure-path tests for distributed cancellation (partition vs crash).

Complements test_distributed.py, which covers the happy paths: here we
pin down what happens when children sit on partitioned or crashed nodes
-- missed signals, per-mode delivery reasons, and retry semantics after
heal/restart.
"""

import pytest

from repro.core import BaseController, CancelSignal
from repro.core.distributed import Node, TaskTree
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def controller(env):
    return BaseController(env)


def spawn(env, controller, name, log):
    holder = {}

    def body(env):
        task = controller.create_cancel(op_name=name)
        holder["task"] = task
        try:
            yield env.timeout(1000.0)
        except Interrupt as exc:
            log.append((name, env.now, exc.cause.reason))
        finally:
            controller.free_cancel(task)

    env.process(body(env))
    env.run(until=env.now + 1e-6)
    return holder["task"]


def run_gen(env, generator, horizon=1.0):
    result = {}

    def driver(env):
        result["value"] = yield from generator

    env.process(driver(env))
    env.run(until=env.now + horizon)
    return result["value"]


def build_tree(env, controller, log, node):
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root)
    child = spawn(env, controller, "child", log)
    tree.add_child(child, node)
    return tree, child


# ----------------------------------------------------------------------
# Failure modes and delivery reasons
# ----------------------------------------------------------------------

def test_partitioned_child_misses_signal(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()

    deliveries = run_gen(env, tree.cancel_all())
    failed = [d for d in deliveries if not d.delivered]
    assert [d.reason for d in failed] == ["node-unreachable"]
    assert child.alive  # the signal never arrived
    assert ("child", *()) not in [(n,) for n, _, _ in log]


def test_crashed_child_reports_crash_reason(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.crash()

    deliveries = run_gen(env, tree.cancel_all())
    failed = [d for d in deliveries if not d.delivered]
    assert [d.reason for d in failed] == ["node-crashed"]
    assert child.alive


def test_heal_does_not_revive_crashed_node():
    node = Node("remote")
    node.partition()
    node.crash()
    node.heal()
    assert not node.reachable
    node.restart()
    assert node.reachable


def test_crash_wins_over_partition_in_reason(env, controller):
    log = []
    node = Node("remote")
    tree, _child = build_tree(env, controller, log, node)
    node.partition()
    node.crash()

    deliveries = run_gen(env, tree.cancel_all())
    failed = [d for d in deliveries if not d.delivered]
    assert failed[0].reason == "node-crashed"


# ----------------------------------------------------------------------
# Retry semantics
# ----------------------------------------------------------------------

def test_retry_after_heal_delivers(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()

    run_gen(env, tree.cancel_all())
    assert tree.undelivered()
    assert child.alive

    node.heal()
    retried = run_gen(env, tree.retry_undelivered())
    assert [d.delivered for d in retried] == [True]
    env.run(until=env.now + 0.1)
    assert not child.alive
    assert tree.fully_cancelled()


def test_retry_after_restart_delivers(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.crash()

    run_gen(env, tree.cancel_all())
    assert [d.reason for d in tree.undelivered()] == ["node-crashed"]

    node.restart()
    retried = run_gen(env, tree.retry_undelivered())
    assert retried and all(d.delivered for d in retried)
    env.run(until=env.now + 0.1)
    assert not child.alive


def test_retry_while_still_down_fails_again(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()

    run_gen(env, tree.cancel_all())
    retried = run_gen(env, tree.retry_undelivered())
    assert retried and not any(d.delivered for d in retried)
    assert child.alive
    # Both attempts are on the permanent delivery record.
    failures = [d for d in tree.deliveries if not d.delivered]
    assert len(failures) == 2


def test_undelivered_skips_tasks_that_finished_anyway(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()
    run_gen(env, tree.cancel_all())
    assert tree.undelivered()

    # The child finishes on its own (completes or times out remotely):
    # nothing is left to retry even though the node is still down.
    signal = CancelSignal(reason="external", decided_at=env.now)
    child.begin_cancel(signal)
    if child.process is not None and child.process.is_alive:
        child.process.interrupt(signal)
    env.run(until=env.now + 0.1)
    assert not child.alive
    assert tree.undelivered() == []
    retried = run_gen(env, tree.retry_undelivered())
    assert retried == []
