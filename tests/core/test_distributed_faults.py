"""Failure-path tests for distributed cancellation (partition vs crash).

Complements test_distributed.py, which covers the happy paths: here we
pin down what happens when children sit on partitioned or crashed nodes
-- missed signals, per-mode delivery reasons, and retry semantics after
heal/restart.
"""

import pytest

from repro.core import BaseController, CancelSignal
from repro.core.distributed import Node, TaskTree
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def controller(env):
    return BaseController(env)


def spawn(env, controller, name, log):
    holder = {}

    def body(env):
        task = controller.create_cancel(op_name=name)
        holder["task"] = task
        try:
            yield env.timeout(1000.0)
        except Interrupt as exc:
            log.append((name, env.now, exc.cause.reason))
        finally:
            controller.free_cancel(task)

    env.process(body(env))
    env.run(until=env.now + 1e-6)
    return holder["task"]


def run_gen(env, generator, horizon=1.0):
    result = {}

    def driver(env):
        result["value"] = yield from generator

    env.process(driver(env))
    env.run(until=env.now + horizon)
    return result["value"]


def build_tree(env, controller, log, node):
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root)
    child = spawn(env, controller, "child", log)
    tree.add_child(child, node)
    return tree, child


# ----------------------------------------------------------------------
# Failure modes and delivery reasons
# ----------------------------------------------------------------------

def test_partitioned_child_misses_signal(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()

    deliveries = run_gen(env, tree.cancel_all())
    failed = [d for d in deliveries if not d.delivered]
    assert [d.reason for d in failed] == ["node-unreachable"]
    assert child.alive  # the signal never arrived
    assert ("child", *()) not in [(n,) for n, _, _ in log]


def test_crashed_child_reports_crash_reason(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.crash()

    deliveries = run_gen(env, tree.cancel_all())
    failed = [d for d in deliveries if not d.delivered]
    assert [d.reason for d in failed] == ["node-crashed"]
    assert child.alive


def test_heal_does_not_revive_crashed_node():
    node = Node("remote")
    node.partition()
    node.crash()
    node.heal()
    assert not node.reachable
    node.restart()
    assert node.reachable


def test_crash_wins_over_partition_in_reason(env, controller):
    log = []
    node = Node("remote")
    tree, _child = build_tree(env, controller, log, node)
    node.partition()
    node.crash()

    deliveries = run_gen(env, tree.cancel_all())
    failed = [d for d in deliveries if not d.delivered]
    assert failed[0].reason == "node-crashed"


# ----------------------------------------------------------------------
# Retry semantics
# ----------------------------------------------------------------------

def test_retry_after_heal_delivers(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()

    run_gen(env, tree.cancel_all())
    assert tree.undelivered()
    assert child.alive

    node.heal()
    retried = run_gen(env, tree.retry_undelivered())
    assert [d.delivered for d in retried] == [True]
    env.run(until=env.now + 0.1)
    assert not child.alive
    assert tree.fully_cancelled()


def test_retry_after_restart_delivers(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.crash()

    run_gen(env, tree.cancel_all())
    assert [d.reason for d in tree.undelivered()] == ["node-crashed"]

    node.restart()
    retried = run_gen(env, tree.retry_undelivered())
    assert retried and all(d.delivered for d in retried)
    env.run(until=env.now + 0.1)
    assert not child.alive


def test_retry_while_still_down_fails_again(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()

    run_gen(env, tree.cancel_all())
    retried = run_gen(env, tree.retry_undelivered())
    assert retried and not any(d.delivered for d in retried)
    assert child.alive
    # Both attempts are on the permanent delivery record.
    failures = [d for d in tree.deliveries if not d.delivered]
    assert len(failures) == 2


def test_partition_heal_crash_sequence(env, controller):
    """partition -> (retry fails) -> heal -> crash -> (retry fails with
    the new reason) -> restart -> retry delivers.  One owed entry per
    child throughout, regardless of how many passes failed."""
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()

    run_gen(env, tree.cancel_all())
    assert [d.reason for d in tree.undelivered()] == ["node-unreachable"]

    retried = run_gen(env, tree.retry_undelivered())
    assert [d.delivered for d in retried] == [False]
    # The failed retry supersedes the original failure; it must not
    # *add* an owed entry (a second pass used to retry the same child
    # once per historical failure).
    assert len(tree.undelivered()) == 1

    node.heal()
    node.crash()  # healed the partition, but the node is down now
    retried = run_gen(env, tree.retry_undelivered())
    assert [d.reason for d in retried] == ["node-crashed"]
    assert len(tree.undelivered()) == 1
    assert child.alive

    node.restart()
    retried = run_gen(env, tree.retry_undelivered())
    assert [d.delivered for d in retried] == [True]
    env.run(until=env.now + 0.1)
    assert tree.fully_cancelled()
    # Final pass: nothing owed, nothing retried.
    assert tree.undelivered() == []
    assert run_gen(env, tree.retry_undelivered()) == []


def test_repeated_failed_retries_do_not_multiply_attempts(env, controller):
    """N failed passes leave exactly one owed delivery per child, and the
    next pass issues exactly one attempt per child."""
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()

    run_gen(env, tree.cancel_all())
    for _ in range(3):
        retried = run_gen(env, tree.retry_undelivered())
        assert len(retried) == 1  # one attempt per pass, not per failure
        assert len(tree.undelivered()) == 1
    # 1 original + 3 retries on the permanent record, all for one child.
    assert len([d for d in tree.deliveries if not d.delivered]) == 4
    assert child.alive


def test_child_already_cancelling_counts_as_delivered(env, controller):
    """A child that began cancellation through another path is not owed a
    delivery: the retry records it as delivered (already-cancelling)
    instead of failing forever while the task unwinds."""
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()
    run_gen(env, tree.cancel_all())
    assert tree.undelivered()

    # Another cancellation path reaches the task first (e.g. the node's
    # local controller); the task is unwinding but still alive.
    child.begin_cancel(CancelSignal(reason="local-cancel", decided_at=env.now))
    assert child.alive and child.cancel_count == 1
    assert tree.undelivered() == []

    node.heal()
    retried = run_gen(env, tree.retry_undelivered())
    assert retried == []
    # A fresh cancel_all pass records it as moot, not failed.
    deliveries = run_gen(env, tree.cancel_all(
        CancelSignal(reason="second-pass", decided_at=env.now)
    ))
    assert deliveries[-1].delivered
    assert deliveries[-1].reason == "already-cancelling"


def test_retry_preserves_registration_order_and_hop_delays(env, controller):
    """Retries fan out in child registration order, paying the same
    per-hop propagation delay as the original cancel_all."""
    log = []
    root = spawn(env, controller, "root", log)
    tree = TaskTree(env, root, propagation_delay=0.01)
    bad_a, bad_b = Node("bad-a"), Node("bad-b")
    first = spawn(env, controller, "first", log)
    second = spawn(env, controller, "second", log)
    tree.add_child(first, bad_a)
    tree.add_child(second, bad_b)
    bad_a.partition()
    bad_b.partition()

    run_gen(env, tree.cancel_all())
    assert [d.task.op_name for d in tree.undelivered()] == ["first", "second"]

    bad_a.heal()
    bad_b.heal()
    start = env.now
    retried = run_gen(env, tree.retry_undelivered())
    assert [d.task.op_name for d in retried] == ["first", "second"]
    assert retried[0].at == pytest.approx(start + 0.01, abs=1e-9)
    assert retried[1].at == pytest.approx(start + 0.02, abs=1e-9)
    cancelled_at = {n: t for n, t, _ in log if n != "root"}
    assert cancelled_at["first"] < cancelled_at["second"]


def test_undelivered_skips_tasks_that_finished_anyway(env, controller):
    log = []
    node = Node("remote")
    tree, child = build_tree(env, controller, log, node)
    node.partition()
    run_gen(env, tree.cancel_all())
    assert tree.undelivered()

    # The child finishes on its own (completes or times out remotely):
    # nothing is left to retry even though the node is still down.
    signal = CancelSignal(reason="external", decided_at=env.now)
    child.begin_cancel(signal)
    if child.process is not None and child.process.is_alive:
        child.process.interrupt(signal)
    env.run(until=env.now + 0.1)
    assert not child.alive
    assert tree.undelivered() == []
    retried = run_gen(env, tree.retry_undelivered())
    assert retried == []
