"""Tests for AtroposConfig construction-time validation."""

import pytest

from repro.core import AtroposConfig


class TestValidation:
    def test_defaults_are_valid(self):
        AtroposConfig()

    def test_zero_detection_window_rejected(self):
        with pytest.raises(ValueError, match="detection_window must be > 0"):
            AtroposConfig(detection_window=0.0)

    def test_negative_slo_rejected(self):
        with pytest.raises(ValueError, match="slo_latency must be > 0"):
            AtroposConfig(slo_latency=-0.1)

    def test_percentile_bounds(self):
        with pytest.raises(ValueError, match="latency_percentile"):
            AtroposConfig(latency_percentile=0.0)
        with pytest.raises(ValueError, match="latency_percentile"):
            AtroposConfig(latency_percentile=101.0)
        AtroposConfig(latency_percentile=100.0)  # inclusive upper bound

    def test_min_window_samples_floor(self):
        with pytest.raises(ValueError, match="min_window_samples"):
            AtroposConfig(min_window_samples=0)

    def test_adaptive_knob_bounds(self):
        with pytest.raises(ValueError, match="adapt_window_widen_factor"):
            AtroposConfig(adapt_window_widen_factor=0.5)
        with pytest.raises(ValueError, match="adapt_p99_sustain"):
            AtroposConfig(adapt_p99_sustain=0)
        with pytest.raises(ValueError, match="adapt_min_slack"):
            AtroposConfig(adapt_min_slack=0.0)

    def test_override_thresholds_validated(self):
        with pytest.raises(
            ValueError, match=r"contention_threshold_overrides\['lock'\]"
        ):
            AtroposConfig(contention_threshold_overrides={"lock": -1.0})

    def test_all_problems_reported_at_once(self):
        with pytest.raises(ValueError) as exc:
            AtroposConfig(
                slo_latency=0.0,
                detection_period=-1.0,
                latency_percentile=200.0,
            )
        message = str(exc.value)
        assert message.startswith("invalid AtroposConfig: ")
        assert "slo_latency" in message
        assert "detection_period" in message
        assert "latency_percentile" in message

    def test_validate_callable_after_mutation(self):
        config = AtroposConfig()
        config.slo_slack = 0.0
        with pytest.raises(ValueError, match="slo_slack"):
            config.validate()
