"""Tests for cancellation policies (Algorithm 1 and ablations)."""

import pytest

from repro.core import (
    BaseController,
    CurrentUsagePolicy,
    GreedyHeuristicPolicy,
    MultiObjectivePolicy,
    ResourceHandle,
    ResourceType,
    dominates,
    non_dominated_set,
)
from repro.core.estimator import (
    OverloadAssessment,
    ResourceReport,
    TaskReport,
)
from repro.sim import Environment

A = ResourceHandle("resA", ResourceType.MEMORY)
B = ResourceHandle("resB", ResourceType.LOCK)


def make_task(env, controller, cancellable=True):
    """Create a task attached to a live process so it is cancellable."""
    holder = {}

    def body(env):
        holder["task"] = controller.create_cancel(cancellable=cancellable)
        yield env.timeout(1000.0)

    env.process(body(env))
    env.run(until=env.now + 0.001)
    return holder["task"]


def report(task, gains):
    return TaskReport(task=task, progress=0.5, gains=dict(gains))


def assessment(resources, task_reports):
    return OverloadAssessment(
        resources=[
            ResourceReport(
                resource=r, contention_raw=c, contention_norm=c, overloaded=c > 0.25
            )
            for r, c in resources
        ],
        tasks=task_reports,
    )


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def controller(env):
    return BaseController(env)


class TestDominance:
    def test_strictly_better_dominates(self, env, controller):
        t1 = report(make_task(env, controller), {A: 5.0, B: 2.0})
        t2 = report(make_task(env, controller), {A: 4.0, B: 1.0})
        assert dominates(t1, t2, [A, B])
        assert not dominates(t2, t1, [A, B])

    def test_equal_does_not_dominate(self, env, controller):
        t1 = report(make_task(env, controller), {A: 5.0})
        t2 = report(make_task(env, controller), {A: 5.0})
        assert not dominates(t1, t2, [A])

    def test_tradeoff_neither_dominates(self, env, controller):
        t1 = report(make_task(env, controller), {A: 3.0, B: 0.0})
        t2 = report(make_task(env, controller), {A: 2.0, B: 2.0})
        assert not dominates(t1, t2, [A, B])
        assert not dominates(t2, t1, [A, B])

    def test_non_dominated_set(self, env, controller):
        t1 = report(make_task(env, controller), {A: 3.0, B: 0.0})
        t2 = report(make_task(env, controller), {A: 2.0, B: 2.0})
        t3 = report(make_task(env, controller), {A: 1.0, B: 1.0})  # dominated by t2
        nds = non_dominated_set([t1, t2, t3], [A, B])
        assert t1 in nds and t2 in nds and t3 not in nds


class TestMultiObjectivePolicy:
    def test_paper_scalarization_example(self, env, controller):
        """§3.5: C_mem=0.6, C_lock=0.4; A=(3,1) scores 2.2 beats B=(2,2)=2.0."""
        task_a = make_task(env, controller)
        task_b = make_task(env, controller)
        assess = assessment(
            [(A, 0.6), (B, 0.4)],
            [report(task_a, {A: 3.0, B: 1.0}), report(task_b, {A: 2.0, B: 2.0})],
        )
        policy = MultiObjectivePolicy()
        selected, score = policy.select(assess)
        assert selected is task_a
        assert score == pytest.approx(2.2)

    def test_skips_non_cancellable_tasks(self, env, controller):
        frozen = make_task(env, controller, cancellable=False)
        target = make_task(env, controller)
        assess = assessment(
            [(A, 0.6)],
            [report(frozen, {A: 100.0}), report(target, {A: 1.0})],
        )
        selected, _ = MultiObjectivePolicy().select(assess)
        assert selected is target

    def test_returns_none_without_candidates(self, env, controller):
        frozen = make_task(env, controller, cancellable=False)
        assess = assessment([(A, 0.6)], [report(frozen, {A: 5.0})])
        assert MultiObjectivePolicy().select(assess) is None

    def test_returns_none_when_all_gains_zero(self, env, controller):
        t = make_task(env, controller)
        assess = assessment([(A, 0.6)], [report(t, {})])
        assert MultiObjectivePolicy().select(assess) is None

    def test_min_age_excludes_young_tasks(self, env, controller):
        young = make_task(env, controller)  # age ~0.001
        assess = assessment([(A, 0.6)], [report(young, {A: 5.0})])
        assert MultiObjectivePolicy(min_age=1.0).select(assess) is None
        selected, _ = MultiObjectivePolicy(min_age=0.0).select(assess)
        assert selected is young

    def test_zero_weight_resource_contributes_nothing(self, env, controller):
        t1 = make_task(env, controller)
        t2 = make_task(env, controller)
        assess = assessment(
            [(A, 0.5), (B, 0.0)],
            [report(t1, {B: 100.0}), report(t2, {A: 1.0})],
        )
        selected, _ = MultiObjectivePolicy().select(assess)
        assert selected is t2


class TestGreedyHeuristicPolicy:
    def test_picks_max_gain_on_hottest_resource(self, env, controller):
        """Greedy ignores combined gains -- the limitation Fig 13 shows."""
        t1 = make_task(env, controller)
        t2 = make_task(env, controller)
        assess = assessment(
            [(A, 0.6), (B, 0.55)],
            [
                report(t1, {A: 3.0, B: 0.0}),
                report(t2, {A: 2.9, B: 5.0}),  # better overall, worse on A
            ],
        )
        greedy_pick, _ = GreedyHeuristicPolicy().select(assess)
        assert greedy_pick is t1
        moo_pick, _ = MultiObjectivePolicy().select(assess)
        assert moo_pick is t2

    def test_none_when_no_gain_on_hottest(self, env, controller):
        t = make_task(env, controller)
        assess = assessment([(A, 0.6), (B, 0.1)], [report(t, {B: 5.0})])
        assert GreedyHeuristicPolicy().select(assess) is None


class TestCurrentUsagePolicy:
    def test_flag_requests_current_usage(self):
        assert CurrentUsagePolicy().uses_future_gain is False
        assert MultiObjectivePolicy().uses_future_gain is True

    def test_same_selection_logic(self, env, controller):
        t1 = make_task(env, controller)
        t2 = make_task(env, controller)
        assess = assessment(
            [(A, 1.0)],
            [report(t1, {A: 5.0}), report(t2, {A: 3.0})],
        )
        selected, _ = CurrentUsagePolicy().select(assess)
        assert selected is t1
