"""Tests for the composable control-plane pipeline (repro.core.pipeline)."""

import pytest

from repro.core import (
    ActionPolicy,
    ControlPipeline,
    LatencyWindowSource,
    NoAdaptation,
    SignalSource,
)
from repro.core.pipeline import AdaptationPolicy
from repro.sim import Environment, RequestRecord, RequestStatus


def record(finish, latency, status=RequestStatus.COMPLETED):
    return RequestRecord(
        request_id=0,
        op_name="op",
        client_id="c",
        arrival_time=finish - latency,
        finish_time=finish,
        status=status,
    )


@pytest.fixture
def env():
    return Environment()


class RecordingSource(SignalSource):
    def __init__(self, name, trace, key=None, value=None):
        self.name = name
        self.trace = trace
        self.key = key
        self.value = value
        self.completions = []

    def observe_completion(self, rec):
        self.completions.append(rec)

    def sample(self, now, signals):
        self.trace.append(f"sample:{self.name}")
        if self.key is not None:
            signals[self.key] = self.value

    def roll(self, now):
        self.trace.append(f"roll:{self.name}")


class ReadingSource(SignalSource):
    """Reads a key an earlier source produced (pipeline ordering)."""

    def __init__(self, trace):
        self.trace = trace
        self.seen = []

    def sample(self, now, signals):
        self.trace.append("sample:reader")
        self.seen.append(signals.get("upstream"))


class RecordingAdaptation(AdaptationPolicy):
    def __init__(self, trace):
        self.trace = trace

    def adapt(self, now, signals):
        self.trace.append("adapt")


class RecordingAction(ActionPolicy):
    def __init__(self, trace):
        self.trace = trace
        self.bound = []

    def bind(self, app):
        self.bound.append(app)

    def act(self, now, signals):
        self.trace.append("act")


class TestTickOrder:
    def test_sample_adapt_act_roll(self, env):
        trace = []
        pipeline = ControlPipeline(
            env,
            period=1.0,
            sources=[
                RecordingSource("a", trace),
                RecordingSource("b", trace),
            ],
            adaptation=RecordingAdaptation(trace),
            action=RecordingAction(trace),
        )
        pipeline.tick()
        assert trace == [
            "sample:a", "sample:b", "adapt", "act", "roll:a", "roll:b",
        ]

    def test_sources_share_one_signal_map(self, env):
        trace = []
        reader = ReadingSource(trace)
        pipeline = ControlPipeline(
            env,
            period=1.0,
            sources=[
                RecordingSource("w", trace, key="upstream", value=42),
                reader,
            ],
        )
        signals = pipeline.tick()
        assert reader.seen == [42]
        assert signals["upstream"] == 42
        assert pipeline.last_signals is signals

    def test_fresh_signal_map_each_tick(self, env):
        pipeline = ControlPipeline(
            env, period=1.0, sources=[RecordingSource("a", [], "k", 1)]
        )
        first = pipeline.tick()
        second = pipeline.tick()
        assert first is not second

    def test_default_adaptation_is_fixed(self, env):
        pipeline = ControlPipeline(env, period=1.0)
        assert isinstance(pipeline.adaptation, NoAdaptation)
        # NoAdaptation and a source-less, action-less tick are no-ops.
        assert pipeline.tick() == {}


class TestLifecycle:
    def test_periodic_loop_ticks_each_period(self, env):
        trace = []
        pipeline = ControlPipeline(
            env, period=1.0, sources=[RecordingSource("a", trace)]
        )
        pipeline.start()
        env.run(until=3.5)
        assert trace.count("sample:a") == 3

    def test_start_is_idempotent(self, env):
        trace = []
        pipeline = ControlPipeline(
            env, period=1.0, sources=[RecordingSource("a", trace)]
        )
        pipeline.start()
        pipeline.start()
        env.run(until=2.5)
        # A second start() must not spawn a second monitor process.
        assert trace.count("sample:a") == 2

    def test_no_period_means_no_loop(self, env):
        trace = []
        pipeline = ControlPipeline(
            env, period=None, sources=[RecordingSource("a", trace)]
        )
        pipeline.start()
        env.run(until=5.0)
        assert trace == []

    def test_completions_fan_out_to_all_sources(self, env):
        a = RecordingSource("a", [])
        b = RecordingSource("b", [])
        pipeline = ControlPipeline(env, period=1.0, sources=[a, b])
        rec = record(1.0, 0.1)
        pipeline.observe_completion(rec)
        assert a.completions == [rec]
        assert b.completions == [rec]

    def test_bind_reaches_the_action(self, env):
        action = RecordingAction([])
        pipeline = ControlPipeline(env, period=None, action=action)
        app = object()
        pipeline.bind(app)
        assert action.bound == [app]

    def test_bind_without_action_is_noop(self, env):
        ControlPipeline(env, period=None).bind(object())


class TestLatencyWindowSource:
    def test_signals_from_completions(self, env):
        source = LatencyWindowSource(env, horizon=10.0, percentile=50)
        for i in range(10):
            source.observe_completion(record(0.1 * i, latency=0.2))
        signals = {}
        source.sample(1.0, signals)
        assert signals["samples"] == 10
        assert signals["throughput"] == pytest.approx(1.0)
        assert signals["mean_latency"] == pytest.approx(0.2)
        assert signals["tail_latency"] == pytest.approx(0.2)

    def test_ignores_non_completed_records(self, env):
        source = LatencyWindowSource(env)
        source.observe_completion(
            record(0.5, 0.1, status=RequestStatus.CANCELLED)
        )
        signals = {}
        source.sample(1.0, signals)
        assert signals["samples"] == 0

    def test_telemetry_snapshot_keys(self, env):
        source = LatencyWindowSource(env, horizon=10.0)
        source.observe_completion(record(0.0, 0.05))
        snap = source.telemetry_snapshot()
        assert set(snap) == {"throughput", "samples", "tail_latency"}
        assert snap["samples"] == 1
