"""Tests for contention-level and resource-gain estimation."""

import pytest

from repro.core import (
    AtroposConfig,
    Estimator,
    GetNextProgress,
    ResourceType,
    RuntimeManager,
)
from repro.core.controller import BaseController
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def setup(env):
    config = AtroposConfig()
    runtime = RuntimeManager(env, config)
    estimator = Estimator(env, runtime, config)
    controller = BaseController(env)
    return runtime, estimator, controller


def live_task(env, controller, progress=None, **kwargs):
    holder = {}

    def body(env):
        holder["task"] = controller.create_cancel(progress=progress, **kwargs)
        yield env.timeout(1000.0)

    env.process(body(env))
    env.run(until=env.now + 1e-6)
    return holder["task"]


def advance(env, dt):
    env.run(until=env.now + dt)


class TestMemoryContention:
    def test_eviction_ratio(self, env, setup):
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        task = live_task(env, controller)
        runtime.record_get(task, mem, 100)
        runtime.record_slow_by(task, mem, delay=0.1, events=50)
        # 50 evictions per 100 pages acquired -> contention 0.5.
        assert estimator.contention_raw(mem) == pytest.approx(0.5)

    def test_no_acquisitions_means_no_contention(self, env, setup):
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        assert estimator.contention_raw(mem) == 0.0

    def test_normalized_contention_scales_with_exec_time(self, env, setup):
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        task = live_task(env, controller)
        runtime.task_started(task)
        advance(env, 1.0)  # 1 task-second of execution in the window
        runtime.record_get(task, mem, 100)
        runtime.record_slow_by(task, mem, delay=0.5, events=100)
        # Eviction ratio 1.0, stall 0.5s over ~1s exec -> norm ~0.5.
        assert estimator.contention_norm(mem) == pytest.approx(0.5, abs=0.05)


class TestLockContention:
    def test_wait_over_use_ratio(self, env, setup):
        runtime, estimator, controller = setup
        lock = controller.register_resource("tbl", ResourceType.LOCK)
        holder = live_task(env, controller)
        waiter = live_task(env, controller)
        runtime.record_get(holder, lock, 1)
        advance(env, 2.0)
        runtime.record_free(holder, lock, 1)  # used 2s
        runtime.record_slow_by(waiter, lock, delay=4.0)
        assert estimator.contention_raw(lock) == pytest.approx(2.0)

    def test_open_hold_counts_as_usage(self, env, setup):
        runtime, estimator, controller = setup
        lock = controller.register_resource("tbl", ResourceType.LOCK)
        holder = live_task(env, controller)
        runtime.record_get(holder, lock, 1)
        advance(env, 2.0)
        runtime.record_slow_by(holder, lock, delay=1.0)
        # Open hold of 2s counts as usage -> ratio 0.5.
        assert estimator.contention_raw(lock) == pytest.approx(0.5)

    def test_wait_with_no_usage_is_severe(self, env, setup):
        runtime, estimator, controller = setup
        lock = controller.register_resource("tbl", ResourceType.LOCK)
        waiter = live_task(env, controller)
        runtime.record_slow_by(waiter, lock, delay=1.0)
        assert estimator.contention_raw(lock) > 100.0


class TestResourceGain:
    def test_memory_gain_uses_future_multiplier(self, env, setup):
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        prog = GetNextProgress(total_rows=100)
        prog.advance(10)  # 10% done -> multiplier 9
        task = live_task(env, controller, progress=prog)
        runtime.record_get(task, mem, 50)
        runtime.record_free(task, mem, 10)  # holds 40 pages
        assert estimator.resource_gain(task, mem) == pytest.approx(40 * 9.0)

    def test_nearly_done_task_has_small_gain(self, env, setup):
        """The Query A vs Query B example of §3.4."""
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        prog_a = GetNextProgress(100)
        prog_a.advance(90)  # 90% done
        prog_b = GetNextProgress(100)
        prog_b.advance(10)  # 10% done
        a = live_task(env, controller, progress=prog_a)
        b = live_task(env, controller, progress=prog_b)
        runtime.record_get(a, mem, 60)  # A holds more...
        runtime.record_get(b, mem, 30)
        # ...but B has the larger future gain.
        assert estimator.resource_gain(b, mem) > estimator.resource_gain(a, mem)

    def test_lock_gain_paper_example(self, env, setup):
        """Held 1s at 40% progress -> gain 1.5s (§3.4)."""
        runtime, estimator, controller = setup
        lock = controller.register_resource("tbl", ResourceType.LOCK)
        prog = GetNextProgress(100)
        prog.advance(40)
        task = live_task(env, controller, progress=prog)
        runtime.record_get(task, lock, 1)
        advance(env, 1.0)
        assert estimator.resource_gain(task, lock) == pytest.approx(1.5)

    def test_current_usage_ignores_progress(self, env, setup):
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        prog = GetNextProgress(100)
        prog.advance(90)
        task = live_task(env, controller, progress=prog)
        runtime.record_get(task, mem, 60)
        assert estimator.current_usage(task, mem) == 60

    def test_cpu_gain_uses_consumed_seconds(self, env, setup):
        runtime, estimator, controller = setup
        cpu = controller.register_resource("cpu", ResourceType.CPU)
        task = live_task(env, controller)  # UnknownProgress -> 0.5 -> x1
        runtime.record_get(task, cpu, 3.0)
        assert estimator.resource_gain(task, cpu) == pytest.approx(3.0)


class TestAssessment:
    def test_assess_reports_overloaded_resources(self, env, setup):
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        task = live_task(env, controller)
        runtime.task_started(task)
        advance(env, 1.0)
        runtime.record_get(task, mem, 100)
        runtime.record_slow_by(task, mem, delay=0.9, events=100)
        assess = estimator.assess([mem], [task])
        assert assess.is_resource_overload
        assert assess.most_contended().resource is mem

    def test_assess_without_contention_is_regular(self, env, setup):
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        task = live_task(env, controller)
        runtime.task_started(task)
        advance(env, 1.0)
        runtime.record_get(task, mem, 100)  # no evictions
        assess = estimator.assess([mem], [task])
        assert not assess.is_resource_overload

    def test_assess_respects_use_future_gain_flag(self, env, setup):
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        prog = GetNextProgress(100)
        prog.advance(10)
        task = live_task(env, controller, progress=prog)
        runtime.record_get(task, mem, 10)
        future = estimator.assess([mem], [task], use_future_gain=True)
        current = estimator.assess([mem], [task], use_future_gain=False)
        assert future.tasks[0].gain(mem) == pytest.approx(90.0)
        assert current.tasks[0].gain(mem) == pytest.approx(10.0)


class TestWindowRoll:
    def test_roll_clears_window_contention(self, env, setup):
        runtime, estimator, controller = setup
        mem = controller.register_resource("pool", ResourceType.MEMORY)
        task = live_task(env, controller)
        runtime.record_get(task, mem, 100)
        runtime.record_slow_by(task, mem, delay=0.5, events=100)
        assert estimator.contention_raw(mem) > 0
        runtime.roll_window()
        assert estimator.contention_raw(mem) == 0.0
        # But gains (cumulative) survive the roll.
        assert estimator.resource_gain(task, mem) > 0


class TestConcentration:
    """Resource vs regular overload: the gain-concentration discriminator."""

    def _assess(self, env, setup, rtype, gains_by_task):
        runtime, estimator, controller = setup
        res = controller.register_resource("res", rtype)
        tasks = []
        for gain in gains_by_task:
            task = live_task(env, controller)
            if rtype is ResourceType.MEMORY:
                runtime.record_get(task, res, gain)
            elif rtype is ResourceType.IO:
                runtime.record_get(task, res, gain)
            else:
                # Time-typed: open a hold of the given duration.
                runtime.ledger.record_get(
                    id(task), res, 1, env.now - gain
                )
            tasks.append(task)
        return estimator.assess([res], tasks), res

    def test_time_typed_monopolist_is_concentrated(self, env, setup):
        # One task holding the queue for 2s (>> SLO 0.1*1.5).
        assessment, _ = self._assess(
            env, setup, ResourceType.QUEUE, [2.0, 2.0, 2.0]
        )
        report = assessment.resources[0]
        assert report.concentrated

    def test_time_typed_uniform_small_gains_are_demand(self, env, setup):
        # Everyone holds for ~5ms: aggregate demand, no culprit.
        assessment, _ = self._assess(
            env, setup, ResourceType.QUEUE, [0.005] * 10
        )
        assert not assessment.resources[0].concentrated

    def test_memory_skewed_gains_concentrated(self, env, setup):
        assessment, _ = self._assess(
            env, setup, ResourceType.MEMORY, [2000, 3, 2, 4, 3, 2]
        )
        assert assessment.resources[0].concentrated

    def test_memory_uniform_gains_not_concentrated(self, env, setup):
        assessment, _ = self._assess(
            env, setup, ResourceType.MEMORY, [10, 11, 9, 10, 12, 10]
        )
        assert not assessment.resources[0].concentrated

    def test_memory_single_gainer_concentrated(self, env, setup):
        assessment, _ = self._assess(env, setup, ResourceType.MEMORY, [500])
        assert assessment.resources[0].concentrated
        assert assessment.resources[0].gain_skew == float("inf")

    def test_no_gainers_not_concentrated(self, env, setup):
        runtime, estimator, controller = setup
        res = controller.register_resource("res", ResourceType.MEMORY)
        assessment = estimator.assess([res], [])
        assert not assessment.resources[0].concentrated

    def test_is_resource_overload_requires_concentration(self, env, setup):
        """Contended but unconcentrated -> regular overload."""
        runtime, estimator, controller = setup
        res = controller.register_resource("q", ResourceType.QUEUE)
        tasks = []
        for _ in range(10):
            task = live_task(env, controller)
            runtime.task_started(task)
            tasks.append(task)
        advance(env, 1.0)
        for task in tasks:
            # Everyone waits a lot (contended) but holds only briefly.
            runtime.record_slow_by(task, res, delay=0.4)
            runtime.ledger.record_get(id(task), res, 1, env.now - 0.005)
        assessment = estimator.assess([res], tasks)
        assert assessment.resources[0].overloaded
        assert not assessment.resources[0].concentrated
        assert not assessment.is_resource_overload
