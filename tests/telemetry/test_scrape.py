"""Integration tests: the scraper attached to real harness runs."""

import pytest

from repro.apps.mysql import MySQL, light_mix
from repro.core import Atropos, AtroposConfig
from repro.experiments import run_simulation
from repro.sim.metrics import window_count
from repro.telemetry import (
    HealthRule,
    TelemetrySession,
    get_active_telemetry,
    live_line,
    telemetry_session,
)
from repro.workloads import OpenLoopSource, Workload


def run_mysql(duration=3.0, seed=0, controller_factory=None, rate=150.0):
    return run_simulation(
        lambda env, ctl, rng: MySQL(env, ctl, rng),
        lambda app, rng: Workload(
            [OpenLoopSource(rate=rate, mix=light_mix(rng))]
        ),
        controller_factory,
        duration=duration,
        seed=seed,
    )


class TestScraperAttachment:
    def test_runs_are_recorded_with_expected_window_count(self):
        session = TelemetrySession(interval=0.4)
        with telemetry_session(session):
            result = run_mysql(duration=3.0)
        assert result.telemetry is session.runs[0]
        run = session.runs[0]
        # Finalize takes a trailing partial scrape, so the series
        # always covers [0, duration] under the shared ceil convention.
        assert len(run.windows) == window_count(3.0, 0.4)
        assert run.windows[-1].t == pytest.approx(3.0)
        assert run.duration == pytest.approx(3.0)

    def test_no_session_records_nothing(self):
        result = run_mysql(duration=1.0)
        assert result.telemetry is None
        assert get_active_telemetry().enabled is False

    def test_max_runs_caps_attachment(self):
        session = TelemetrySession(interval=0.5, max_runs=1)
        with telemetry_session(session):
            first = run_mysql(duration=1.0)
            second = run_mysql(duration=1.0)
        assert first.telemetry is not None
        assert second.telemetry is None
        assert len(session.runs) == 1

    def test_discovers_resources_but_not_the_controller(self):
        session = TelemetrySession(interval=0.5)
        with telemetry_session(session):
            run_mysql(duration=1.0)
        run = session.runs[0]
        assert len(run.resource_names) >= 3
        # The app's controller back-reference must not be scraped as a
        # resource even though it exposes telemetry_snapshot().
        assert "overload" not in run.resource_names
        window = run.windows[-1]
        for name in run.resource_names:
            assert f"util:{name}" in window.values


class TestWindowValues:
    def test_core_value_keys_present(self):
        session = TelemetrySession(interval=0.5)
        with telemetry_session(session):
            run_mysql(duration=2.0)
        window = session.runs[0].windows[0]
        for key in (
            "event_queue_depth",
            "processes_alive",
            "inflight",
            "offered_window",
            "completed_window",
            "throughput",
            "goodput",
            "p99",
        ):
            assert key in window.values, key

    def test_window_counts_sum_to_run_totals(self):
        session = TelemetrySession(interval=0.5)
        with telemetry_session(session):
            result = run_mysql(duration=3.0)
        run = session.runs[0]
        completed = sum(
            w.values["completed_window"] for w in run.windows
        )
        assert completed == result.summary.completed
        offered = sum(w.values["offered_window"] for w in run.windows)
        assert offered == result.collector.offered

    def test_scraping_does_not_perturb_results(self):
        plain = run_mysql(duration=3.0, seed=7)
        session = TelemetrySession(interval=0.25)
        with telemetry_session(session):
            scraped = run_mysql(duration=3.0, seed=7)
        assert scraped.summary == plain.summary
        assert len(scraped.collector.records) == len(
            plain.collector.records
        )


class TestControllerScrape:
    def test_detector_state_lands_in_windows(self):
        session = TelemetrySession(interval=0.5)
        with telemetry_session(session):
            run_mysql(
                duration=2.0,
                controller_factory=lambda env: Atropos(
                    env, AtroposConfig(slo_latency=0.05)
                ),
            )
        run = session.runs[0]
        window = run.windows[-1]
        assert "detector_overloaded" in window.values
        assert "cancels_total" in window.values
        families = {name for name, *_ in run.registry.collect()}
        assert "repro_detector_overloaded" in families

    def test_health_events_mirror_into_decision_log(self):
        # A floor no workload can meet: fires on every loaded window.
        rules = [
            HealthRule(
                name="impossible-goodput", kind="goodput-floor",
                params={"floor": 1e9},
            )
        ]
        session = TelemetrySession(interval=0.5, health_rules=rules)
        with telemetry_session(session):
            result = run_mysql(
                duration=2.0,
                controller_factory=lambda env: Atropos(
                    env, AtroposConfig(slo_latency=0.05)
                ),
            )
        run = session.runs[0]
        assert run.health_events
        assert all(
            e.kind == "goodput-floor" for e in run.health_events
        )
        log = result.controller.decision_log
        health = [
            e for e in log.events if e.kind.value == "health"
        ]
        assert len(health) == len(run.health_events)


class TestLiveSink:
    def test_sink_called_per_scrape_and_line_renders(self):
        lines = []
        session = TelemetrySession(
            interval=0.5,
            live_sink=lambda run, window: lines.append(
                live_line(run, window)
            ),
        )
        with telemetry_session(session):
            run_mysql(duration=2.0)
        assert len(lines) == len(session.runs[0].windows)
        assert all("tput=" in line and "p99=" in line for line in lines)
