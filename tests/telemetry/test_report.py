"""HTML report tests: structure, self-containment, sparkline panels."""

from html.parser import HTMLParser

from repro.core import Atropos, AtroposConfig
from repro.telemetry import (
    render_html_report,
    TelemetrySession,
    telemetry_session,
)

from .test_scrape import run_mysql


class _Auditor(HTMLParser):
    """Counts tags and records external references while parsing."""

    def __init__(self):
        super().__init__()
        self.tags = {}
        self.external = []

    def handle_starttag(self, tag, attrs):
        self.tags[tag] = self.tags.get(tag, 0) + 1
        for name, value in attrs:
            if name in ("src", "href") and value:
                self.external.append(value)


def audit(html_text):
    auditor = _Auditor()
    auditor.feed(html_text)
    return auditor


def scraped_session():
    session = TelemetrySession(interval=0.5)
    with telemetry_session(session):
        run_mysql(
            duration=2.0,
            controller_factory=lambda env: Atropos(
                env, AtroposConfig(slo_latency=0.05)
            ),
        )
    return session


class TestHtmlReport:
    def test_empty_report_still_valid(self):
        text = render_html_report([])
        assert text.startswith("<!DOCTYPE html>")
        assert "No telemetry captured" in text
        assert audit(text).tags.get("html") == 1

    def test_report_has_at_least_four_sparkline_panels(self):
        session = scraped_session()
        text = render_html_report(session.runs)
        auditor = audit(text)
        # throughput, p99, queue depth, cancellations, plus one
        # utilization panel per resource; timeline adds one more svg.
        assert auditor.tags.get("svg", 0) >= 5
        assert auditor.tags.get("polyline", 0) >= 4
        assert "health timeline" in text

    def test_report_is_self_contained(self):
        text = render_html_report(scraped_session().runs)
        auditor = audit(text)
        assert auditor.external == []
        assert auditor.tags.get("style") == 1
        assert "<script" not in text

    def test_run_metadata_and_title_rendered(self):
        session = scraped_session()
        text = render_html_report(session.runs, title="smoke <report>")
        assert "smoke &lt;report&gt;" in text
        assert session.runs[0].label in text
        assert f"{len(session.runs[0].windows)} windows" in text

    def test_deterministic_rendering(self):
        session = scraped_session()
        assert render_html_report(session.runs) == render_html_report(
            session.runs
        )
