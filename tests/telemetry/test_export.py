"""Exporter format tests: Prometheus text and JSONL series."""

import json

from repro.telemetry import (
    jsonl_series,
    prometheus_text,
    TelemetrySession,
    telemetry_session,
)

from .test_scrape import run_mysql


def scraped_session(**kwargs):
    session = TelemetrySession(interval=0.5)
    with telemetry_session(session):
        run_mysql(duration=2.0, **kwargs)
    return session


class TestPrometheusText:
    def test_empty_session_renders_empty(self):
        assert prometheus_text([]) == ""

    def test_families_have_type_and_carry_run_label(self):
        session = scraped_session()
        text = prometheus_text(session.runs)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert any(
            line.startswith("# TYPE repro_scrapes_total counter")
            for line in lines
        )
        samples = [line for line in lines if not line.startswith("#")]
        assert samples
        assert all('run="' in line for line in samples)

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        session = scraped_session()
        text = prometheus_text(session.runs)
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_request_latency_seconds_bucket")
        ]
        count = next(
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_request_latency_seconds_count")
        )
        assert buckets == sorted(buckets)
        assert buckets[-1] == count
        assert count > 0
        assert 'le="+Inf"' in text

    def test_summary_quantiles_rendered(self):
        text = prometheus_text(scraped_session().runs)
        assert 'quantile="0.99"' in text
        assert "repro_request_latency_sum" in text

    def test_headers_deduplicated_across_runs(self):
        session = TelemetrySession(interval=0.5)
        with telemetry_session(session):
            run_mysql(duration=1.0, seed=0)
            run_mysql(duration=1.0, seed=1)
        text = prometheus_text(session.runs)
        type_lines = [
            line for line in text.splitlines()
            if line == "# TYPE repro_scrapes_total counter"
        ]
        assert len(type_lines) == 1


class TestJsonlSeries:
    def test_lines_parse_and_cover_all_kinds(self):
        session = scraped_session()
        text = jsonl_series(session.runs)
        rows = [json.loads(line) for line in text.splitlines()]
        kinds = [row["kind"] for row in rows]
        assert kinds[0] == "run"
        assert "window" in kinds

    def test_run_header_describes_the_series(self):
        session = scraped_session()
        header = json.loads(
            jsonl_series(session.runs).splitlines()[0]
        )
        run = session.runs[0]
        assert header["windows"] == len(run.windows)
        assert header["resources"] == run.resource_names
        assert header["interval"] == 0.5

    def test_values_are_json_safe_and_sorted(self):
        session = scraped_session()
        for line in jsonl_series(session.runs).splitlines():
            row = json.loads(line)
            if row["kind"] != "window":
                continue
            keys = list(row["values"])
            assert keys == sorted(keys)
            for value in row["values"].values():
                assert value is None or isinstance(value, (int, float))

    def test_empty_session_renders_empty(self):
        assert jsonl_series([]) == ""
