"""Telemetry exports must be byte-identical across PYTHONHASHSEEDs.

The registry/export layers promise determinism: metric identity is
(name, sorted labels), collection is sorted, floats render via ``repr``.
Any reliance on dict/set iteration order or ``id()`` anywhere along the
scrape -> registry -> export path would show up here as a byte diff
between interpreters with different hash seeds.
"""

import hashlib
import os
import subprocess
import sys

_SCRIPT = """
import sys
from repro.apps.mysql import MySQL, light_mix
from repro.core import Atropos, AtroposConfig
from repro.experiments import run_simulation
from repro.telemetry import (
    TelemetrySession, jsonl_series, prometheus_text, render_html_report,
    telemetry_session,
)
from repro.workloads import OpenLoopSource, Workload

session = TelemetrySession(interval=0.5)
with telemetry_session(session):
    run_simulation(
        lambda env, ctl, rng: MySQL(env, ctl, rng),
        lambda app, rng: Workload(
            [OpenLoopSource(rate=200.0, mix=light_mix(rng))]
        ),
        lambda env: Atropos(env, AtroposConfig(slo_latency=0.05)),
        duration=3.0,
        seed=3,
        label="det",
    )
sys.stdout.write(prometheus_text(session.runs))
sys.stdout.write("\\x00")
sys.stdout.write(jsonl_series(session.runs))
sys.stdout.write("\\x00")
sys.stdout.write(render_html_report(session.runs))
"""


def _export_digest(hash_seed):
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert proc.stdout, proc.stderr
    return hashlib.sha256(proc.stdout.encode()).hexdigest()


def test_exports_byte_identical_across_hash_seeds():
    digests = {_export_digest(seed) for seed in ("0", "1", "9973")}
    assert len(digests) == 1
