"""Unit tests for the declarative health-rule engine."""

import pytest

from repro.telemetry import (
    HealthEvent,
    HealthMonitor,
    HealthRule,
    default_health_rules,
    slo_of,
    worst_severity,
)


def rule(kind, **params):
    return HealthRule(name=kind, kind=kind, params=params)


class TestP99Ceiling:
    def test_fires_over_ceiling_with_enough_samples(self):
        monitor = HealthMonitor(
            [rule("p99-ceiling", limit=0.1, min_samples=3)]
        )
        fired = monitor.evaluate(
            1.0, {"p99": 0.5, "completed_window": 10.0}
        )
        assert len(fired) == 1
        assert fired[0].kind == "p99-ceiling"
        assert fired[0].value == pytest.approx(0.5)

    def test_respects_min_samples_and_nan(self):
        monitor = HealthMonitor(
            [rule("p99-ceiling", limit=0.1, min_samples=3)]
        )
        assert monitor.evaluate(
            1.0, {"p99": 0.5, "completed_window": 2.0}
        ) == []
        assert monitor.evaluate(
            2.0, {"p99": float("nan"), "completed_window": 10.0}
        ) == []

    def test_quiet_under_ceiling(self):
        monitor = HealthMonitor([rule("p99-ceiling", limit=1.0)])
        assert monitor.evaluate(
            1.0, {"p99": 0.5, "completed_window": 5.0}
        ) == []


class TestGoodputFloor:
    def test_fires_only_while_load_is_offered(self):
        monitor = HealthMonitor([rule("goodput-floor", floor=50.0)])
        assert monitor.evaluate(
            1.0, {"goodput": 10.0, "offered_window": 0.0}
        ) == []
        fired = monitor.evaluate(
            2.0, {"goodput": 10.0, "offered_window": 5.0}
        )
        assert [e.kind for e in fired] == ["goodput-floor"]

    def test_quiet_at_or_above_floor(self):
        monitor = HealthMonitor([rule("goodput-floor", floor=50.0)])
        assert monitor.evaluate(
            1.0, {"goodput": 50.0, "offered_window": 5.0}
        ) == []


class TestCancelStorm:
    def test_fires_at_threshold(self):
        monitor = HealthMonitor([rule("cancel-storm", max_per_window=3)])
        assert monitor.evaluate(1.0, {"cancels_window": 2.0}) == []
        fired = monitor.evaluate(2.0, {"cancels_window": 3.0})
        assert [e.kind for e in fired] == ["cancel-storm"]


class TestDetectorFlapping:
    def test_fires_after_enough_transitions(self):
        monitor = HealthMonitor(
            [rule("detector-flapping", transitions=3, lookback=8)]
        )
        fired = []
        for i, state in enumerate([0.0, 1.0, 0.0, 1.0]):
            fired = monitor.evaluate(
                float(i), {"detector_overloaded": state}
            )
        assert [e.kind for e in fired] == ["detector-flapping"]
        assert fired[0].value == 3.0

    def test_stable_detector_never_fires(self):
        monitor = HealthMonitor([rule("detector-flapping")])
        for i in range(10):
            assert monitor.evaluate(
                float(i), {"detector_overloaded": 1.0}
            ) == []


class TestWrongCulpritRate:
    def test_fires_on_unexpected_op(self):
        monitor = HealthMonitor(
            [rule("wrong-culprit-rate", expected=("backup",))]
        )
        assert monitor.evaluate(1.0, {}, cancelled_ops=["backup"]) == []
        fired = monitor.evaluate(2.0, {}, cancelled_ops=["point_read"])
        assert [e.kind for e in fired] == ["wrong-culprit-rate"]
        assert "point_read" in fired[0].message

    def test_rate_is_cumulative_across_windows(self):
        monitor = HealthMonitor(
            [rule("wrong-culprit-rate", expected=("backup",),
                  max_rate=0.5)]
        )
        # 3 right then 1 wrong: rate 0.25 <= 0.5, quiet.
        monitor.evaluate(1.0, {}, cancelled_ops=["backup"] * 3)
        assert monitor.evaluate(2.0, {}, cancelled_ops=["scan"]) == []
        # Two more wrong: cumulative rate 3/6 still quiet, then 4/7 fires.
        assert monitor.evaluate(3.0, {}, cancelled_ops=["scan", "scan"]) == []
        fired = monitor.evaluate(4.0, {}, cancelled_ops=["scan"])
        assert len(fired) == 1


class TestMonitorPlumbing:
    def test_unknown_kind_raises(self):
        monitor = HealthMonitor([rule("no-such-rule")])
        with pytest.raises(ValueError):
            monitor.evaluate(1.0, {})

    def test_events_accumulate_on_monitor(self):
        monitor = HealthMonitor([rule("cancel-storm", max_per_window=1)])
        monitor.evaluate(1.0, {"cancels_window": 1.0})
        monitor.evaluate(2.0, {"cancels_window": 1.0})
        assert len(monitor.events) == 2

    def test_event_to_dict_is_json_safe(self):
        event = HealthEvent(
            time=1.0, rule="r", kind="p99-ceiling", severity="warn",
            value=float("nan"), threshold=0.1, message="m",
        )
        assert event.to_dict()["value"] is None


class TestDefaults:
    def test_base_rules_without_slo(self):
        kinds = {r.kind for r in default_health_rules()}
        assert kinds == {"cancel-storm", "detector-flapping"}

    def test_slo_and_culprits_add_rules(self):
        rules = default_health_rules(
            slo=0.05, expected_culprits=["backup"], goodput_floor=10.0
        )
        kinds = {r.kind for r in rules}
        assert "p99-ceiling" in kinds
        assert "goodput-floor" in kinds
        assert "wrong-culprit-rate" in kinds
        ceiling = next(r for r in rules if r.kind == "p99-ceiling")
        assert ceiling.params["limit"] == pytest.approx(0.25)

    def test_slo_of_reads_controller_config(self):
        class Config:
            slo_latency = 0.05

        class Controller:
            config = Config()

        assert slo_of(Controller()) == pytest.approx(0.05)
        assert slo_of(object()) is None

    def test_worst_severity(self):
        warn = HealthEvent(0, "r", "k", "warn", 1, 1, "m")
        crit = HealthEvent(0, "r", "k", "critical", 1, 1, "m")
        assert worst_severity([]) is None
        assert worst_severity([warn]) == "warn"
        assert worst_severity([warn, crit]) == "critical"
