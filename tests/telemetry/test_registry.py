"""Unit tests for the deterministic metrics registry."""

import math

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    log_buckets,
)


class TestLogBuckets:
    def test_covers_range_and_is_sorted(self):
        bounds = log_buckets(1e-4, 10.0, 3)
        assert bounds[0] == pytest.approx(1e-4)
        assert bounds[-1] >= 10.0
        assert list(bounds) == sorted(bounds)

    def test_deterministic(self):
        assert log_buckets(1e-3, 1.0, 4) == log_buckets(1e-3, 1.0, 4)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 10.0, per_decade=0)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_gauge_set_and_inc(self):
        g = Gauge()
        g.set(4.0)
        g.inc(-1.5)
        assert g.value == pytest.approx(2.5)


class TestHistogram:
    def test_observations_land_in_first_covering_bucket(self):
        h = Histogram(buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 3.0, 99.0):
            h.observe(value)
        # counts: <=1: {0.5, 1.0}, <=2: {1.5}, <=4: {3.0}, +Inf: {99.0}
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(105.0)

    def test_cumulative_is_monotone_and_ends_at_count(self):
        h = Histogram(buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 5.0, 50.0):
            h.observe(value)
        cum = h.cumulative()
        counts = [c for _, c in cum]
        assert counts == sorted(counts)
        assert cum[-1][0] == float("inf")
        assert cum[-1][1] == h.count

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[1.0, 0.5])
        with pytest.raises(ValueError):
            Histogram(buckets=[1.0, 1.0])


class TestQuantileSketch:
    def test_exact_below_cap(self):
        s = QuantileSketch(cap=64)
        for i in range(50):
            s.observe(float(i))
        assert s.quantile(0.0) == 0.0
        assert s.quantile(1.0) == 49.0
        assert s.quantile(0.5) == pytest.approx(25.0, abs=1.0)

    def test_compaction_preserves_count_and_never_underestimates_tail(self):
        s = QuantileSketch(cap=16)
        values = [float(i % 97) for i in range(500)]
        for value in values:
            s.observe(value)
        assert s.count == 500
        assert s.sum == pytest.approx(sum(values))
        assert len(s._items) <= s.cap
        exact_p99 = sorted(values)[int(0.99 * (len(values) - 1))]
        # Compaction merges into the upper sample, biasing tails up.
        assert s.quantile(0.99) >= exact_p99 - 1.0

    def test_empty_is_nan_and_bad_q_raises(self):
        s = QuantileSketch()
        assert math.isnan(s.quantile(0.5))
        with pytest.raises(ValueError):
            s.quantile(1.5)

    def test_rejects_tiny_cap(self):
        with pytest.raises(ValueError):
            QuantileSketch(cap=4)

    def test_deterministic_for_identical_streams(self):
        a, b = QuantileSketch(cap=16), QuantileSketch(cap=16)
        for i in range(300):
            value = (i * 37 % 101) / 10.0
            a.observe(value)
            b.observe(value)
        assert a._items == b._items


class TestMetricsRegistry:
    def test_get_or_create_returns_same_child(self):
        reg = MetricsRegistry()
        first = reg.counter("x_total", op="read")
        first.inc(3)
        assert reg.counter("x_total", op="read") is first
        assert reg.counter("x_total", op="write") is not first

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", a="1", b="2")
        b = reg.gauge("g", b="2", a="1")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_collect_is_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("zzz")
        reg.counter("aaa", op="b")
        reg.counter("aaa", op="a")
        families = list(reg.collect())
        assert [name for name, *_ in families] == ["aaa", "zzz"]
        _, _, _, children = families[0]
        assert [key for key, _ in children] == [
            (("op", "a"),), (("op", "b"),)
        ]
