"""Tests for the ``repro bench`` subsystem (cases, runner, gate)."""

import json

import pytest

from repro.bench import (
    STANDARD_MIX,
    BenchReport,
    calibrate,
    case_names,
    check_regression,
    get_bench_case,
    run_bench,
    run_case,
    speedups,
    write_report,
)
from repro.bench.cases import BenchCase, _timeout_churn


def tiny(name="tiny", quick_scale=500, full_scale=500):
    return BenchCase(
        name,
        "tiny timeout churn for tests",
        _timeout_churn,
        quick_scale=quick_scale,
        full_scale=full_scale,
    )


def tiny_report():
    return run_bench(quick=True, repeats=1, cases=[tiny()])


def test_standard_mix_names_unique_and_resolvable():
    names = case_names()
    assert len(names) == len(set(names)) == len(STANDARD_MIX)
    for name in names:
        assert get_bench_case(name).name == name
    with pytest.raises(KeyError):
        get_bench_case("no-such-case")


def test_run_case_counts_events_and_time():
    result = run_case(tiny(), quick=True, repeats=2)
    assert result.scale == 500
    assert result.events >= 500  # at least one event per timeout wait
    assert result.wall_s > 0
    assert result.sim_time > 0
    assert result.events_per_sec == result.events / result.wall_s
    assert result.repeats == 2


def test_every_standard_case_runs_at_tiny_scale():
    # Shrink each case far below quick scale so the whole mix stays fast;
    # this still executes every case body end to end.  The floor of 5
    # keeps every case above its internal granularity: the 500-process
    # waves of process-storm survive the //20, and macro-case-c1 (units
    # of simulated seconds, quick scale already 5) must stay longer than
    # its 2 s warm-up.
    for case in STANDARD_MIX:
        shrunk = BenchCase(
            case.name,
            case.description,
            case.body,
            quick_scale=max(case.quick_scale // 20, 5),
            full_scale=case.full_scale,
        )
        result = run_case(shrunk, quick=True, repeats=1)
        assert result.events > 0, case.name
        assert result.sim_time > 0, case.name


def test_non_mix_case_reported_but_excluded_from_aggregate():
    extra = BenchCase(
        "extra",
        "non-mix case for tests",
        _timeout_churn,
        quick_scale=500,
        full_scale=500,
        in_mix=False,
    )
    report = run_bench(quick=True, repeats=1, cases=[tiny(), extra])
    assert [c.name for c in report.cases] == ["tiny", "extra"]
    assert [c.name for c in report.mix_cases] == ["tiny"]
    assert report.mix_events == report.cases[0].events
    payload = report.to_dict()
    assert payload["cases"][0]["in_mix"] is True
    assert payload["cases"][1]["in_mix"] is False
    assert payload["mix"]["events"] == report.cases[0].events
    text = report.format()
    assert "extra*" in text
    assert "excluded from the mix" in text


def test_report_dict_schema(tmp_path):
    report = tiny_report()
    payload = report.to_dict()
    assert payload["schema"] == 1
    assert payload["mode"] == "quick"
    assert payload["calibration_events_per_sec"] > 0
    [case] = payload["cases"]
    assert case["name"] == "tiny"
    assert case["events_per_sec"] > 0
    mix = payload["mix"]
    assert mix["events"] == case["events"]
    assert mix["normalized"] == pytest.approx(
        mix["events_per_sec"] / payload["calibration_events_per_sec"],
        rel=1e-3,
    )
    # format() is the CLI's human rendering; smoke it.
    text = report.format()
    assert "tiny" in text and "normalized" in text


def test_write_report_embeds_baseline_and_speedups(tmp_path):
    report = tiny_report()
    baseline = {
        "cases": [{"name": "tiny", "events_per_sec": 1.0}],
        "mix": {"events_per_sec": 1.0},
    }
    out = tmp_path / "bench.json"
    write_report(report, str(out), baseline=baseline)
    payload = json.loads(out.read_text())
    assert payload["baseline"] == baseline
    assert payload["speedup"]["per_case"]["tiny"] > 0
    assert payload["speedup"]["mix"] > 0
    assert payload["speedup"]["mix"] == pytest.approx(
        payload["mix"]["events_per_sec"], rel=0.01
    )


def test_speedups_skips_unknown_cases():
    current = {
        "cases": [{"name": "a", "events_per_sec": 10.0}],
        "mix": {"events_per_sec": 10.0},
    }
    baseline = {
        "cases": [{"name": "b", "events_per_sec": 5.0}],
        "mix": {},
    }
    out = speedups(current, baseline)
    assert out["per_case"] == {}
    assert "mix" not in out


def test_check_regression_passes_same_machine(tmp_path):
    report = tiny_report()
    out = tmp_path / "bench.json"
    write_report(report, str(out))
    assert check_regression(report, str(out), max_regression=0.2) == []


def slowed(report, factor):
    """A copy of ``report`` whose cases took ``factor``x the wall time
    (same calibration): both raw and normalized mix drop by 1/factor."""
    from repro.bench import CaseResult

    return BenchReport(
        mode=report.mode,
        repeats=report.repeats,
        calibration_events_per_sec=report.calibration_events_per_sec,
        cases=[
            CaseResult(
                name=c.name,
                description=c.description,
                scale=c.scale,
                events=c.events,
                wall_s=c.wall_s * factor,
                sim_time=c.sim_time,
                repeats=c.repeats,
            )
            for c in report.cases
        ],
    )


def test_check_regression_flags_real_slowdown(tmp_path):
    report = tiny_report()
    out = tmp_path / "bench.json"
    write_report(report, str(out))
    failures = check_regression(slowed(report, 2.0), str(out))
    assert failures and "mix regression" in failures[0]


def test_check_regression_is_two_sided(tmp_path):
    # Only the normalized number degraded (e.g. calibration caught a CPU
    # burst the cases missed): raw throughput is unchanged, so no fail.
    report = tiny_report()
    out = tmp_path / "bench.json"
    write_report(report, str(out))
    norm_only = BenchReport(
        mode=report.mode,
        repeats=report.repeats,
        calibration_events_per_sec=report.calibration_events_per_sec * 10,
        cases=report.cases,
    )
    assert check_regression(norm_only, str(out)) == []
    # Only the raw number degraded (e.g. a uniformly slower host): the
    # normalized number is unchanged, so no fail either.
    raw_only = slowed(report, 2.0)
    raw_only.calibration_events_per_sec /= 2.0
    assert check_regression(raw_only, str(out)) == []


def test_check_regression_fails_closed_on_bad_baseline(tmp_path):
    report = tiny_report()
    missing = tmp_path / "nope.json"
    assert check_regression(report, str(missing))
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    assert check_regression(report, str(corrupt))
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    failures = check_regression(report, str(empty))
    assert failures and "no mix/normalized numbers" in failures[0]


def test_calibration_is_positive_and_repeatable():
    a = calibrate(entries=5_000)
    assert a > 0
