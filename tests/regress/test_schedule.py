"""Tests for history-mined threshold schedules and their in-run loop."""

import pytest

from repro.core.adaptive import HistoryScheduleSource
from repro.core.config import AtroposConfig
from repro.regress.baseline import CaseCapture, RegressBaseline
from repro.regress.schedule import (
    BASE_SLACK,
    TIGHT_SLACK,
    derive_schedule,
    derive_schedules,
    schedule_overrides,
)


def _capture_with_p99(p99s, slo=0.02, window=0.5, throughput=20.0):
    n = len(p99s)
    return CaseCapture(
        name="case:cx",
        spec={"experiment": "t", "family": "case",
              "params": {"case_id": "c1"}, "seed": 1},
        series={
            "window": window,
            "end": [round(window * (i + 1), 9) for i in range(n)],
            "slo": slo,
            "throughput": [throughput] * n,
            "p99": list(p99s),
            "goodput": [throughput] * n,
            "cancels": [0] * n,
        },
    )


class TestDeriveSchedule:
    def test_healthy_history_yields_no_schedule(self):
        capture = _capture_with_p99([0.01] * 10)
        assert derive_schedule(capture) == []

    def test_sustained_violation_brackets_the_phase(self):
        # Windows 3..6 blow past 5x the 0.02 SLO.
        p99s = [0.01] * 3 + [0.2] * 4 + [0.01] * 3
        schedule = derive_schedule(_capture_with_p99(p99s))
        assert len(schedule) == 2
        tighten, relax = schedule
        assert tighten["param"] == "slo_slack"
        assert tighten["value"] == TIGHT_SLACK
        # Tighten lands at the *start* of the first violating window.
        assert tighten["time"] == pytest.approx(1.5)
        assert relax["value"] == BASE_SLACK
        # Relax lands one window after the phase's last window end.
        assert relax["time"] == pytest.approx(4.0)

    def test_short_blip_ignored(self):
        p99s = [0.01] * 4 + [0.2] * 2 + [0.01] * 4
        assert derive_schedule(_capture_with_p99(p99s)) == []

    def test_sparse_windows_not_trusted(self):
        # Violating p99 but almost no completions backing it.
        capture = _capture_with_p99([0.2] * 6, throughput=1.0)
        assert derive_schedule(capture) == []

    def test_empty_window_p99_none_skipped(self):
        p99s = [None] * 3 + [0.2] * 4 + [None] * 3
        schedule = derive_schedule(_capture_with_p99(p99s))
        assert len(schedule) == 2

    def test_no_series_or_slo_is_empty(self):
        capture = _capture_with_p99([0.2] * 6)
        capture.series = None
        assert derive_schedule(capture) == []
        capture = _capture_with_p99([0.2] * 6)
        capture.series["slo"] = None
        assert derive_schedule(capture) == []

    def test_derive_schedules_omits_empty(self):
        healthy = _capture_with_p99([0.01] * 10)
        bad = _capture_with_p99([0.2] * 6)
        bad.name = "case:bad"
        baseline = RegressBaseline(name="b", cases=[healthy, bad])
        schedules = derive_schedules(baseline)
        assert list(schedules) == ["case:bad"]

    def test_schedule_overrides_enable_adaptive(self):
        schedule = [{"time": 1.0, "param": "slo_slack", "value": 1.05}]
        overrides = schedule_overrides(schedule)
        assert overrides["adaptive_thresholds"] is True
        assert overrides["history_schedule"] == schedule
        # The payload must construct a valid config as-is.
        AtroposConfig(**overrides)


class TestConfigValidation:
    def test_schedule_requires_adaptive(self):
        with pytest.raises(ValueError, match="adaptive_thresholds"):
            AtroposConfig(
                history_schedule=[
                    {"time": 1.0, "param": "slo_slack", "value": 1.1}
                ]
            )

    def test_bad_entries_rejected(self):
        for entry in (
            {"time": 1.0, "param": "bogus", "value": 1.1},
            {"time": -1.0, "param": "slo_slack", "value": 1.1},
            {"time": 1.0, "param": "slo_slack", "value": 0.0},
            "not-a-dict",
        ):
            with pytest.raises(ValueError, match="history_schedule"):
                AtroposConfig(
                    adaptive_thresholds=True, history_schedule=[entry]
                )

    def test_valid_schedule_accepted(self):
        config = AtroposConfig(
            adaptive_thresholds=True,
            history_schedule=[
                {"time": 0.0, "param": "detection_window", "value": 2.0},
                {"time": 3, "param": "slo_slack", "value": 1.05},
            ],
        )
        assert len(config.history_schedule) == 2


class TestHistoryScheduleSource:
    def test_publishes_due_entries_once(self):
        source = HistoryScheduleSource(
            [
                {"time": 2.0, "param": "slo_slack", "value": 1.05},
                {"time": 1.0, "param": "detection_window", "value": 2.0},
            ]
        )
        signals = {}
        source.sample(0.5, signals)
        assert "history_targets" not in signals
        signals = {}
        source.sample(1.5, signals)
        assert [e["param"] for e in signals["history_targets"]] == \
            ["detection_window"]
        signals = {}
        source.sample(2.5, signals)
        assert [e["param"] for e in signals["history_targets"]] == \
            ["slo_slack"]
        # Exhausted: nothing further is ever republished.
        signals = {}
        source.sample(99.0, signals)
        assert "history_targets" not in signals

    def test_entries_sorted_and_batched(self):
        source = HistoryScheduleSource(
            [
                {"time": 2.0, "param": "slo_slack", "value": 1.05},
                {"time": 1.0, "param": "slo_slack", "value": 1.1},
            ]
        )
        signals = {}
        source.sample(5.0, signals)
        values = [e["value"] for e in signals["history_targets"]]
        assert values == [1.1, 1.05]  # time order preserved

    def test_telemetry_snapshot_counts(self):
        source = HistoryScheduleSource(
            [{"time": 1.0, "param": "slo_slack", "value": 1.05}]
        )
        assert source.telemetry_snapshot() == {
            "schedule_entries": 1,
            "schedule_published": 0,
        }
        source.sample(2.0, {})
        assert source.telemetry_snapshot()["schedule_published"] == 1


class TestEndToEndScheduleRun:
    def test_scheduled_moves_land_as_audited_adapts(self):
        from repro.campaign.runner import _execute_one
        from repro.campaign.spec import RunSpec
        from repro.experiments.case_family import case_spec

        spec = case_spec(
            "t", "c2", 1,
            atropos_overrides={
                "adaptive_thresholds": True,
                "history_schedule": [
                    {"time": 1.5, "param": "slo_slack", "value": 1.05},
                    {"time": 2.5, "param": "detection_window",
                     "value": 2.0},
                ],
            },
        )
        spec = RunSpec(
            experiment=spec.experiment, family=spec.family,
            params=spec.params, seed=spec.seed,
            duration=4.0, warmup=1.0,
        )
        payload = _execute_one(spec)
        events = [
            e for e in payload["extras"].get("adapt_events", [])
            if e["reason"] == "history-schedule"
        ]
        assert len(events) == 2
        assert {e["param"] for e in events} == \
            {"slo_slack", "detection_window"}
        # Applied at the first detector tick at/after the scheduled time.
        for event in events:
            assert event["time"] >= 1.5
        # And the moves are in the audited decision mix.
        assert payload["extras"]["decision_mix"].get("adapt", 0) >= 2
