"""Tests for capture/recapture and the seeded-perturbation hook."""

import pytest

from repro.campaign.spec import RunSpec
from repro.experiments.case_family import case_spec
from repro.experiments.regressable import (
    REGRESS_CASES,
    regress_entries,
)
from repro.regress.capture import (
    apply_perturbation,
    capture,
    parse_perturbations,
    recapture,
)
from repro.regress.compare import compare


def _short_case_spec(case_id="c1", seed=1, **overrides):
    """A real case spec clipped to a few simulated seconds for speed.

    c1's culprit phase starts early enough that five simulated seconds
    include real overload (and therefore real sensitivity to the
    detection-threshold perturbation the drift tests seed).
    """
    spec = case_spec("regress-test", case_id, seed,
                     atropos_overrides=overrides or {})
    return RunSpec(
        experiment=spec.experiment,
        family=spec.family,
        params=spec.params,
        seed=spec.seed,
        duration=5.0,
        warmup=1.0,
    )


class TestParsePerturbations:
    def test_json_values(self):
        parsed = parse_perturbations(
            ["slo_slack=0.8", "adaptive_thresholds=true",
             "min_window_samples=5"]
        )
        assert parsed == {"slo_slack": 0.8, "adaptive_thresholds": True,
                          "min_window_samples": 5}

    def test_unparseable_value_stays_string(self):
        assert parse_perturbations(["mode=fast"]) == {"mode": "fast"}

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="KEY=VALUE"):
            parse_perturbations(["no-equals-sign"])
        with pytest.raises(ValueError, match="KEY=VALUE"):
            parse_perturbations(["=5"])


class TestApplyPerturbation:
    def test_case_spec_identity_changes(self):
        spec = _short_case_spec()
        perturbed = apply_perturbation(spec, {"contention_threshold": 0.6})
        assert perturbed.identity() != spec.identity()
        assert perturbed.params["atropos_overrides"] == \
            {"contention_threshold": 0.6}
        # Everything else rides along untouched.
        assert perturbed.seed == spec.seed
        assert perturbed.duration == spec.duration

    def test_merges_over_existing_overrides(self):
        spec = _short_case_spec(cancel_cooldown=0.1)
        perturbed = apply_perturbation(spec, {"contention_threshold": 0.6})
        assert perturbed.params["atropos_overrides"] == {
            "cancel_cooldown": 0.1,
            "contention_threshold": 0.6,
        }

    def test_non_case_family_passes_through(self):
        spec = RunSpec(experiment="t", family="dag", params={})
        assert apply_perturbation(spec, {"slo_slack": 0.8}) is spec

    def test_empty_overrides_pass_through(self):
        spec = _short_case_spec()
        assert apply_perturbation(spec, {}) is spec


class TestRegressEntries:
    def test_default_targets_cover_cases(self):
        entries = regress_entries()
        names = [name for name, _ in entries]
        assert names == [f"case:{cid}" for cid in REGRESS_CASES]

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            regress_entries(targets=("bogus",))

    def test_dag_and_cluster_targets(self):
        entries = regress_entries(targets=("dag", "cluster"))
        families = {spec.family for _, spec in entries}
        assert families == {"dag", "cluster"}

    def test_lever_target_pins_non_default_levers(self):
        entries = regress_entries(targets=("lever",))
        names = [name for name, _ in entries]
        assert names == ["lever:c17-lock_reshape", "lever:c17-composite"]
        assert [spec.lever for _, spec in entries] == [
            "lock_reshape", "composite",
        ]


class TestCaptureLoop:
    def test_unchanged_tree_recapture_passes(self):
        entries = [("case:c1", _short_case_spec())]
        baseline = capture("t", entries, jobs=1, meta={"seed": 1})
        current = recapture(baseline, jobs=1)
        report = compare(baseline, current)
        assert not report.drifted, report.format()
        # Identical runs must compare exactly equal, not just within
        # tolerance: that is what makes the verdict hash-seed stable.
        assert baseline.cases[0].to_dict() == current.cases[0].to_dict()

    def test_perturbed_recapture_drifts(self):
        entries = [("case:c1", _short_case_spec())]
        baseline = capture("t", entries, jobs=1)
        current = recapture(
            baseline, jobs=1, perturb={"contention_threshold": 0.6}
        )
        report = compare(baseline, current)
        assert report.drifted, report.format()
        assert report.drifting_names()
        assert current.meta["perturb"] == {"contention_threshold": 0.6}

    def test_recapture_replays_baseline_specs(self):
        entries = [("case:c1", _short_case_spec())]
        baseline = capture("t", entries, jobs=1)
        current = recapture(baseline, jobs=1)
        assert current.cases[0].spec == baseline.cases[0].spec
        assert current.meta["checked_against"] == "t"


class TestTelemetryCapture:
    def test_telemetry_capture_snapshots_window_summaries(self):
        entries = [("case:c1", _short_case_spec())]
        baseline = capture("t", entries, jobs=1, telemetry=True)
        telemetry = baseline.cases[0].telemetry
        assert telemetry is not None
        assert telemetry["interval"] == 0.25
        assert telemetry["windows"] > 0
        p99 = telemetry["values"]["p99"]
        assert p99["n"] <= telemetry["windows"]
        assert p99["min"] <= p99["mean"] <= p99["max"]
        # The block round-trips through the baseline JSON form.
        from repro.regress.baseline import RegressBaseline

        reread = RegressBaseline.from_dict(baseline.to_dict())
        assert reread.cases[0].telemetry == telemetry

    def test_telemetry_capture_is_deterministic(self):
        entries = [("case:c1", _short_case_spec())]
        first = capture("t", entries, jobs=1, telemetry=True)
        second = capture("t", entries, jobs=1, telemetry=True)
        assert first.cases[0].to_dict() == second.cases[0].to_dict()

    def test_plain_capture_has_no_telemetry_block(self):
        entries = [("case:c1", _short_case_spec())]
        baseline = capture("t", entries, jobs=1)
        assert baseline.cases[0].telemetry is None
        assert "telemetry" not in baseline.cases[0].to_dict()
