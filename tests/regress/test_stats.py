"""Tests for the shared drift statistics (`repro.regress.stats`)."""

import math

from repro.regress.stats import (
    bootstrap_mean_ci,
    count_drift,
    paired_series_drift,
    scalar_drift,
    two_sided_regressed,
)


class TestTwoSidedGate:
    def test_not_regressed_when_both_above_floor(self):
        assert not two_sided_regressed(100.0, 100.0, 100.0, 100.0, 0.1)

    def test_regressed_only_when_both_fall(self):
        assert two_sided_regressed(80.0, 80.0, 100.0, 100.0, 0.1)
        # Raw fell but normalized held: host variance, not a regression.
        assert not two_sided_regressed(80.0, 100.0, 100.0, 100.0, 0.1)
        # Normalized fell but raw held: calibration noise.
        assert not two_sided_regressed(100.0, 80.0, 100.0, 100.0, 0.1)

    def test_floor_is_exclusive(self):
        assert not two_sided_regressed(90.0, 90.0, 100.0, 100.0, 0.1)


class TestBootstrapCI:
    def test_deterministic_across_calls(self):
        deltas = [0.1, -0.2, 0.3, 0.05, -0.1, 0.2]
        assert bootstrap_mean_ci(deltas) == bootstrap_mean_ci(deltas)

    def test_single_delta_degenerates(self):
        assert bootstrap_mean_ci([0.5]) == (0.5, 0.5)

    def test_empty_is_nan(self):
        lo, hi = bootstrap_mean_ci([])
        assert math.isnan(lo) and math.isnan(hi)

    def test_ci_brackets_obvious_shift(self):
        lo, hi = bootstrap_mean_ci([1.0, 1.1, 0.9, 1.05, 0.95] * 4)
        assert 0.8 < lo <= hi < 1.2


class TestPairedSeriesDrift:
    def test_identical_series_short_circuit(self):
        series = [1.0, 2.0, 3.0, 4.0]
        result = paired_series_drift(series, series)
        assert not result["drifted"]
        assert result["ci"] == [0.0, 0.0]

    def test_large_shift_drifts(self):
        base = [1.0] * 20
        cur = [1.5] * 19 + [1.4]
        result = paired_series_drift(base, cur)
        assert result["drifted"]
        assert result["rel_change"] > 0.4

    def test_small_shift_within_tolerance_passes(self):
        base = [1.0] * 20
        cur = [1.01] * 20
        assert not paired_series_drift(base, cur)["drifted"]

    def test_none_windows_skipped(self):
        base = [1.0, None, 2.0, None]
        cur = [1.0, 5.0, 2.0, None]
        result = paired_series_drift(base, cur)
        assert result["n"] == 2
        assert not result["drifted"]

    def test_empty_series_no_drift(self):
        result = paired_series_drift([], [])
        assert not result["drifted"]
        assert result["n"] == 0

    def test_noise_without_mean_shift_passes(self):
        base = [1.0, 2.0] * 10
        cur = [2.0, 1.0] * 10
        assert not paired_series_drift(base, cur)["drifted"]


class TestCountDrift:
    def test_identical_counts(self):
        assert not count_drift(10, 10)["drifted"]

    def test_tiny_absolute_changes_never_drift(self):
        assert not count_drift(0, 2)["drifted"]
        assert not count_drift(1, 0)["drifted"]

    def test_large_jump_drifts(self):
        result = count_drift(5, 50)
        assert result["drifted"]
        assert result["z"] > 3.0

    def test_proportional_noise_passes(self):
        assert not count_drift(100, 110)["drifted"]

    def test_zero_zero(self):
        assert not count_drift(0, 0)["drifted"]


class TestScalarDrift:
    def test_equal_values(self):
        assert not scalar_drift(1.0, 1.0)["drifted"]

    def test_both_missing(self):
        assert not scalar_drift(None, None)["drifted"]
        nan = float("nan")
        assert not scalar_drift(nan, nan)["drifted"]

    def test_one_missing_drifts(self):
        assert scalar_drift(None, 1.0)["drifted"]
        assert scalar_drift(1.0, None)["drifted"]

    def test_relative_tolerance(self):
        assert not scalar_drift(1.0, 1.04)["drifted"]
        assert scalar_drift(1.0, 1.06)["drifted"]

    def test_zero_baseline_uses_abs_tol(self):
        assert not scalar_drift(0.0, 0.0)["drifted"]
        assert scalar_drift(0.0, 0.1)["drifted"]
