"""Tests for the regress baseline snapshot format."""

import json

import pytest

from repro.regress.baseline import (
    REGRESS_SCHEMA,
    CaseCapture,
    RegressBaseline,
)


def _capture(name="case:c1", **over):
    fields = dict(
        name=name,
        spec={
            "experiment": "regress",
            "family": "case",
            "params": {"case_id": "c1", "atropos_overrides": {}},
            "seed": 1,
        },
        summary={"throughput": 100.0, "p99_latency": 0.02},
        series={
            "window": 0.5,
            "end": [0.5, 1.0],
            "slo": 0.02,
            "throughput": [100.0, 102.0],
            "p99": [0.01, 0.02],
            "goodput": [99.0, 100.0],
            "cancels": [0, 1],
        },
        health_counts={"p99-ceiling": 0, "cancel-storm": 0},
        decision_mix={"detection": 10, "cancellation": 1},
        audit_mix={"cancelled": 1},
        digest=None,
    )
    fields.update(over)
    return CaseCapture(**fields)


class TestRoundTrip:
    def test_json_round_trip_is_identity(self, tmp_path):
        baseline = RegressBaseline(
            name="standard",
            cases=[_capture(), _capture(name="case:c2")],
            meta={"seed": 1},
        )
        path = tmp_path / "b.json"
        baseline.write(str(path))
        loaded = RegressBaseline.read(str(path))
        assert loaded.to_dict() == baseline.to_dict()
        # And the canonical text form is stable under a second cycle.
        loaded.write(str(path))
        assert RegressBaseline.read(str(path)).to_json() == \
            baseline.to_json()

    def test_json_is_canonical(self, tmp_path):
        baseline = RegressBaseline(name="b", cases=[_capture()])
        text = baseline.to_json()
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(
            json.dumps(json.loads(text), sort_keys=True)
        )

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            RegressBaseline.from_dict(
                {"schema": REGRESS_SCHEMA + 1, "name": "x", "cases": []}
            )

    def test_case_lookup(self):
        baseline = RegressBaseline(
            name="b", cases=[_capture(), _capture(name="case:c2")]
        )
        assert baseline.case("case:c2").name == "case:c2"
        assert baseline.case("nope") is None

    def test_specs_are_replayable(self):
        baseline = RegressBaseline(name="b", cases=[_capture()])
        (spec,) = baseline.specs()
        assert spec.family == "case"
        assert spec.params["case_id"] == "c1"
        assert spec.seed == 1


class TestFromOutcome:
    def test_capture_from_real_outcome(self):
        from repro.campaign import execute
        from repro.experiments.case_family import case_spec

        spec = case_spec("t", "c2", 1, atropos_overrides={})
        (outcome,) = execute([spec], jobs=1)
        capture = CaseCapture.from_outcome("case:c2", outcome)
        assert capture.name == "case:c2"
        assert capture.spec == spec.to_dict()
        assert capture.summary["completed"] > 0
        assert capture.series is not None
        assert len(capture.series["throughput"]) == \
            len(capture.series["p99"])
        assert capture.decision_mix.get("detection", 0) > 0
        assert "p99-ceiling" in capture.health_counts
        assert capture.digest is None

    def test_nan_summary_serializes_as_none(self):
        class Summary:
            throughput = 1.0
            p50_latency = float("nan")
            p99_latency = float("nan")
            mean_latency = float("nan")
            drop_rate = 0.0
            completed = 0
            dropped = 0
            cancelled = 0
            timed_out = 0

        class Outcome:
            summary = Summary()
            extras = {}

            class spec:
                @staticmethod
                def to_dict():
                    return {"family": "case"}

        capture = CaseCapture.from_outcome("x", Outcome())
        assert capture.summary["p99_latency"] is None
        assert capture.summary["throughput"] == 1.0
        json.dumps(capture.to_dict())  # must stay JSON-able
