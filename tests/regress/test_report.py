"""Tests for the HTML regress diff report."""

import copy

from repro.regress.baseline import CaseCapture, RegressBaseline
from repro.regress.compare import compare
from repro.regress.report import render_diff_report, write_diff_report


def _capture(name="case:c1", **over):
    fields = dict(
        name=name,
        spec={"experiment": "regress", "family": "case",
              "params": {"case_id": "c1"}, "seed": 1},
        summary={"throughput": 100.0, "p99_latency": 0.02,
                 "completed": 1000, "cancelled": 5},
        series={
            "window": 0.5,
            "end": [0.5 * (i + 1) for i in range(20)],
            "slo": 0.02,
            "throughput": [100.0] * 20,
            "p99": [0.01] * 20,
            "goodput": [99.0] * 20,
            "cancels": [0] * 20,
        },
        health_counts={"p99-ceiling": 0},
        decision_mix={"detection": 100},
        audit_mix={},
        digest=None,
    )
    fields.update(over)
    return CaseCapture(**fields)


def _render(base_capture, cur_capture):
    baseline = RegressBaseline(name="base", cases=[base_capture])
    current = RegressBaseline(name="cur", cases=[cur_capture])
    report = compare(baseline, current)
    return report, render_diff_report(report, baseline, current)


class TestDiffReport:
    def test_pass_verdict_rendered(self):
        _, html_text = _render(_capture(), copy.deepcopy(_capture()))
        assert "PASS" in html_text
        assert "verdict-pass" in html_text
        assert html_text.startswith("<!DOCTYPE html>")
        assert html_text.count("<svg") == 4  # one panel per series key

    def test_drifting_series_named_up_front(self):
        cur = _capture()
        cur.series = dict(cur.series, p99=[0.015] * 20)
        report, html_text = _render(_capture(), cur)
        assert report.drifted
        assert "DRIFT" in html_text
        assert "series:p99" in html_text
        assert "title drift" in html_text  # the p99 panel is flagged
        assert "(drift)" in html_text

    def test_both_series_overlaid(self):
        cur = _capture()
        cur.series = dict(cur.series, throughput=[120.0] * 20)
        _, html_text = _render(_capture(), cur)
        assert html_text.count('stroke="#8a97a5"') == 4  # baseline grey
        assert html_text.count('stroke="#2255a4"') == 4  # current blue

    def test_drift_table_marks_rows(self):
        cur = _capture()
        cur.summary = dict(cur.summary, p99_latency=0.03)
        _, html_text = _render(_capture(), cur)
        assert 'class="drifted"' in html_text
        assert "summary:p99_latency" in html_text

    def test_missing_case_section(self):
        baseline = RegressBaseline(name="base", cases=[_capture()])
        current = RegressBaseline(name="cur", cases=[])
        report = compare(baseline, current)
        html_text = render_diff_report(report, baseline, current)
        assert "no matching capture" in html_text

    def test_digest_only_family_renders(self):
        base = _capture(series=None, digest="aaa111")
        cur = _capture(series=None, digest="bbb222")
        _, html_text = _render(base, cur)
        assert "digest-compared family" in html_text
        assert "aaa111" in html_text and "bbb222" in html_text

    def test_render_is_deterministic(self):
        cur = _capture()
        cur.series = dict(cur.series, p99=[0.013] * 20)
        first = _render(_capture(), copy.deepcopy(cur))[1]
        second = _render(_capture(), copy.deepcopy(cur))[1]
        assert first == second

    def test_write_diff_report(self, tmp_path):
        baseline = RegressBaseline(name="base", cases=[_capture()])
        current = RegressBaseline(
            name="cur", cases=[copy.deepcopy(_capture())]
        )
        report = compare(baseline, current)
        path = tmp_path / "diff.html"
        write_diff_report(report, baseline, current, str(path),
                          title="custom title")
        text = path.read_text()
        assert "custom title" in text
        assert text.endswith("</html>\n")
