"""Tests for baseline-vs-current drift comparison."""

import copy

from repro.regress.baseline import CaseCapture, RegressBaseline
from repro.regress.compare import compare


def _capture(name="case:c1", **over):
    fields = dict(
        name=name,
        spec={"experiment": "regress", "family": "case",
              "params": {"case_id": "c1"}, "seed": 1},
        summary={
            "throughput": 100.0,
            "p50_latency": 0.005,
            "p99_latency": 0.02,
            "mean_latency": 0.007,
            "drop_rate": 0.0,
            "completed": 1000,
            "dropped": 0,
            "cancelled": 5,
            "timed_out": 0,
        },
        series={
            "window": 0.5,
            "end": [0.5 * (i + 1) for i in range(20)],
            "slo": 0.02,
            "throughput": [100.0] * 20,
            "p99": [0.01] * 20,
            "goodput": [99.0] * 20,
            "cancels": [0] * 20,
        },
        health_counts={"p99-ceiling": 0, "cancel-storm": 0},
        decision_mix={"detection": 100, "cancellation": 5},
        audit_mix={"cancelled": 5},
        digest=None,
    )
    fields.update(over)
    return CaseCapture(**fields)


def _baseline(*captures, name="base"):
    return RegressBaseline(name=name, cases=list(captures))


class TestCompare:
    def test_identical_capture_passes(self):
        base = _baseline(_capture())
        current = _baseline(copy.deepcopy(_capture()), name="cur")
        report = compare(base, current)
        assert not report.drifted
        assert report.drifting_names() == []
        assert report.format().endswith("verdict: PASS")

    def test_series_shift_drifts_and_is_named(self):
        cur = _capture()
        cur.series = dict(cur.series, p99=[0.015] * 20)
        report = compare(_baseline(_capture()), _baseline(cur))
        assert report.drifted
        assert "case:c1/series:p99" in report.drifting_names()
        assert "series:p99" in report.format()
        assert "verdict: DRIFT" in report.format()

    def test_missing_case_is_drift(self):
        report = compare(_baseline(_capture()), _baseline())
        assert report.drifted
        assert report.drifting_names() == ["case:c1/missing"]

    def test_window_grid_mismatch_is_drift(self):
        cur = _capture()
        cur.series = dict(cur.series, window=1.0)
        report = compare(_baseline(_capture()), _baseline(cur))
        assert "case:c1/series:grid" in report.drifting_names()

    def test_count_jump_drifts(self):
        cur = _capture()
        cur.health_counts = {"p99-ceiling": 40, "cancel-storm": 0}
        report = compare(_baseline(_capture()), _baseline(cur))
        assert "case:c1/count:health:p99-ceiling" in \
            report.drifting_names()

    def test_decision_mix_kind_appearing_drifts(self):
        cur = _capture()
        cur.decision_mix = dict(cur.decision_mix, adapt=50)
        report = compare(_baseline(_capture()), _baseline(cur))
        assert "case:c1/count:decision:adapt" in report.drifting_names()

    def test_scalar_shift_drifts(self):
        cur = _capture()
        cur.summary = dict(cur.summary, p99_latency=0.03)
        report = compare(_baseline(_capture()), _baseline(cur))
        assert "case:c1/summary:p99_latency" in report.drifting_names()

    def test_digest_mismatch_drifts(self):
        base = _capture(digest="aaa", series=None)
        cur = _capture(digest="bbb", series=None)
        report = compare(_baseline(base), _baseline(cur))
        assert report.drifting_names() == ["case:c1/digest"]

    def test_digest_match_passes(self):
        base = _capture(digest="aaa", series=None)
        cur = _capture(digest="aaa", series=None)
        assert not compare(_baseline(base), _baseline(cur)).drifted

    def test_small_noise_everywhere_passes(self):
        cur = _capture()
        cur.summary = dict(cur.summary, throughput=101.0)
        cur.decision_mix = dict(cur.decision_mix, detection=102)
        assert not compare(_baseline(_capture()), _baseline(cur)).drifted

    def test_report_dict_is_jsonable(self):
        import json

        cur = _capture()
        cur.summary = dict(cur.summary, p99_latency=0.03)
        report = compare(_baseline(_capture()), _baseline(cur))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["drifted"] is True
        assert payload["cases"][0]["name"] == "case:c1"

    def test_verdict_deterministic(self):
        cur = _capture()
        cur.series = dict(cur.series, p99=[0.013] * 20)
        first = compare(_baseline(_capture()), _baseline(cur)).to_dict()
        second = compare(_baseline(_capture()), _baseline(cur)).to_dict()
        assert first == second
