#!/usr/bin/env python3
"""Markdown cross-reference checker (stdlib only; used by the CI docs job).

Scans the repo's documentation for links -- inline ``[text](target)``,
reference-style ``[text][ref]`` / ``[ref][]`` with their ``[ref]:
target`` definitions -- and verifies

* relative file targets exist (``docs/RESILIENCE.md``, ``src/...``),
* intra-document and cross-document anchors (``#fault-model``) resolve
  to a real heading, using GitHub's slugification rules; anchors may
  come from ATX (``## Heading``) or setext (underlined) headings, or
  from explicit HTML ``<a id=...>`` / ``<a name=...>`` tags,
* every reference-style usage has a matching definition.

External (``http(s)://``, ``mailto:``) links are skipped -- CI must not
depend on the network.  Exit status is the number of broken links.

Usage::

    python tools/check_docs.py [FILE_OR_DIR ...]   # default: repo docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Checked by default: the user-facing documentation set.
DEFAULT_TARGETS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs",
]

#: Checked-in data anchors: each must exist at the repo root AND be
#: referenced somewhere in the default documentation set (an anchor
#: nobody documents is an anchor nobody regenerates correctly).
REQUIRED_ANCHORS = [
    "REGRESS_BASELINE.json",
]

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
#: Setext underline: a line of = or - under a paragraph line.
SETEXT_RE = re.compile(r"^ {0,3}(=+|-+)\s*$")
#: Reference-style definition: [label]: target
REF_DEF_RE = re.compile(r"^ {0,3}\[([^\]]+)\]:\s*(\S+)")
#: Reference-style usage: [text][label] or collapsed [label][]
REF_USE_RE = re.compile(r"(?<!\!)\[([^\]]*)\]\[([^\]]*)\]")
#: Explicit HTML anchor targets.
HTML_ANCHOR_RE = re.compile(r"<a\s+(?:id|name)=[\"']([^\"']+)[\"']")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _rel(path: Path) -> str:
    """Repo-relative display path; absolute when outside the repo."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_markdown(paths: List[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = (REPO_ROOT / raw).resolve() if not Path(raw).is_absolute() \
            else Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"warning: no such doc target {raw!r}", file=sys.stderr)
    return files


def parse(path: Path) -> Tuple[Set[str], List[Tuple[int, str]], List[str]]:
    """Parse one file's anchors and link targets.

    Returns ``(anchors, [(line_number, link_target)], problems)`` where
    *problems* are self-contained errors (reference-style usages with no
    matching definition).
    """
    anchors: Set[str] = set()
    seen: Dict[str, int] = {}
    links: List[Tuple[int, str]] = []
    problems: List[str] = []

    # Strip fenced code up front; reference definitions may appear
    # anywhere in the document, so usages need a full-file def map.
    visible: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            visible.append((lineno, line))

    ref_defs: Dict[str, str] = {}
    for lineno, line in visible:
        match = REF_DEF_RE.match(line)
        if match:
            ref_defs[match.group(1).lower()] = match.group(2)
            links.append((lineno, match.group(2)))

    def add_heading(text: str) -> None:
        slug = slugify(text)
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")

    prev_line = ""
    for lineno, line in visible:
        match = HEADING_RE.match(line)
        if match:
            add_heading(match.group(2))
        elif (
            SETEXT_RE.match(line)
            and prev_line.strip()
            and not HEADING_RE.match(prev_line)
            and not REF_DEF_RE.match(prev_line)
            and not prev_line.lstrip().startswith(("-", "*", ">", "|"))
        ):
            add_heading(prev_line)
        for tag in HTML_ANCHOR_RE.finditer(line):
            anchors.add(tag.group(1).lower())
        for link in LINK_RE.finditer(line):
            links.append((lineno, link.group(1)))
        if REF_DEF_RE.match(line):
            prev_line = line
            continue  # the definition line itself is not a usage
        for use in REF_USE_RE.finditer(line):
            label = (use.group(2) or use.group(1)).lower()
            # A defined label's target is already checked (once) at its
            # definition line; a usage only needs the label to exist.
            if label not in ref_defs:
                problems.append(
                    f"{_rel(path)}:{lineno}: undefined link reference "
                    f"[{label}]"
                )
        prev_line = line
    return anchors, links, problems


def check(paths: List[str]) -> List[str]:
    files = collect_markdown(paths)
    anchor_index: Dict[Path, Set[str]] = {}
    link_index: Dict[Path, List[Tuple[int, str]]] = {}
    errors: List[str] = []
    for path in files:
        anchor_index[path], link_index[path], problems = parse(path)
        errors.extend(problems)
    for path, links in link_index.items():
        for lineno, target in links:
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            where = f"{_rel(path)}:{lineno}"
            file_part, _, anchor = target.partition("#")
            if not file_part:  # intra-document anchor
                resolved = path
            else:
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    errors.append(f"{where}: broken link -> {target}")
                    continue
            if anchor:
                if resolved.suffix.lower() != ".md":
                    continue
                if resolved not in anchor_index and resolved.exists():
                    anchor_index[resolved], _, _ = parse(resolved)
                if anchor.lower() not in anchor_index.get(resolved, set()):
                    errors.append(
                        f"{where}: broken anchor -> {target} "
                        f"(no heading #{anchor} in {_rel(resolved)})"
                    )
    return errors


def check_anchors(
    files: List[Path], anchors: List[str] = None
) -> List[str]:
    """Verify the required data anchors exist and are documented."""
    errors: List[str] = []
    texts = [path.read_text(encoding="utf-8") for path in files]
    for anchor in REQUIRED_ANCHORS if anchors is None else anchors:
        if not (REPO_ROOT / anchor).exists():
            errors.append(
                f"required anchor {anchor} is missing from the repo root"
            )
        if not any(anchor in text for text in texts):
            errors.append(
                f"required anchor {anchor} is not referenced by any "
                "checked document"
            )
    return errors


def main(argv: List[str]) -> int:
    targets = argv or DEFAULT_TARGETS
    errors = check(targets)
    if not argv:
        # Anchor integrity is a repo-level property; skip it when the
        # caller asked to lint specific files.
        errors += check_anchors(collect_markdown(targets))
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(collect_markdown(targets))
    print(f"checked {checked} markdown file(s): "
          f"{len(errors)} broken link(s)")
    return min(len(errors), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
