#!/usr/bin/env python3
"""Markdown cross-reference checker (stdlib only; used by the CI docs job).

Scans the repo's documentation for ``[text](target)`` links and verifies

* relative file targets exist (``docs/RESILIENCE.md``, ``src/...``),
* intra-document and cross-document anchors (``#fault-model``) resolve
  to a real heading, using GitHub's slugification rules.

External (``http(s)://``, ``mailto:``) links are skipped -- CI must not
depend on the network.  Exit status is the number of broken links.

Usage::

    python tools/check_docs.py [FILE_OR_DIR ...]   # default: repo docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Checked by default: the user-facing documentation set.
DEFAULT_TARGETS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs",
]

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _rel(path: Path) -> str:
    """Repo-relative display path; absolute when outside the repo."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_markdown(paths: List[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = (REPO_ROOT / raw).resolve() if not Path(raw).is_absolute() \
            else Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"warning: no such doc target {raw!r}", file=sys.stderr)
    return files


def parse(path: Path) -> Tuple[Set[str], List[Tuple[int, str]]]:
    """Return (heading anchors, [(line_number, link_target)]) for a file."""
    anchors: Set[str] = set()
    seen: Dict[str, int] = {}
    links: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slug = slugify(match.group(2))
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            anchors.add(slug if count == 0 else f"{slug}-{count}")
        for link in LINK_RE.finditer(line):
            links.append((lineno, link.group(1)))
    return anchors, links


def check(paths: List[str]) -> List[str]:
    files = collect_markdown(paths)
    anchor_index: Dict[Path, Set[str]] = {}
    link_index: Dict[Path, List[Tuple[int, str]]] = {}
    for path in files:
        anchor_index[path], link_index[path] = parse(path)

    errors: List[str] = []
    for path, links in link_index.items():
        for lineno, target in links:
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            where = f"{_rel(path)}:{lineno}"
            file_part, _, anchor = target.partition("#")
            if not file_part:  # intra-document anchor
                resolved = path
            else:
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    errors.append(f"{where}: broken link -> {target}")
                    continue
            if anchor:
                if resolved.suffix.lower() != ".md":
                    continue
                if resolved not in anchor_index and resolved.exists():
                    anchor_index[resolved], _ = parse(resolved)
                if anchor.lower() not in anchor_index.get(resolved, set()):
                    errors.append(
                        f"{where}: broken anchor -> {target} "
                        f"(no heading #{anchor} in {_rel(resolved)})"
                    )
    return errors


def main(argv: List[str]) -> int:
    targets = argv or DEFAULT_TARGETS
    errors = check(targets)
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(collect_markdown(targets))
    print(f"checked {checked} markdown file(s): "
          f"{len(errors)} broken link(s)")
    return min(len(errors), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
