"""The standard kernel case mix measured by ``repro bench``.

Each case is a self-contained micro-simulation exercising one hot slice
of the DES engine (see docs/PERFORMANCE.md for the hot-path tour):

* ``timeout-churn``   -- the generator yield/resume cycle on Timeouts.
* ``process-storm``   -- process creation, start, finish, and join.
* ``condition-fanin`` -- AllOf/AnyOf composite event trees.
* ``lock-handoff``    -- SyncLock convoy handoffs (grant machinery).
* ``arrival-flood``   -- the full request path: arrival stream ->
  driver -> cancellable task -> handler -> metrics record.
* ``macro-case-c1``   -- one real paper case (MySQL backup overload),
  keeping the mix honest about end-to-end engine cost.
* ``cluster-fanout``  -- a 3-node coordinated fleet run (repro.cluster),
  timed individually but excluded from the mix aggregate so the 6-case
  mix stays comparable with pre-cluster baselines.

Cases express a *workload*, not an engine strategy: the same case runs
on any engine generation, so events/sec is comparable across kernels.
All randomness is seeded; a case run is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..apps.base import Application, Operation
from ..core.controller import NullController
from ..sim.environment import Environment
from ..sim.metrics import MetricsCollector
from ..sim.resources.lock import SyncLock
from ..sim.rng import Rng
from ..workloads.driver import Driver
from ..workloads.spec import MixEntry, OpenLoopSource, Workload


def events_scheduled(env: Environment) -> int:
    """Total events the environment has scheduled (engine-agnostic).

    Prefers the fast-path kernel's counter; falls back to consuming one
    value from a generator-based sequence counter (only done after the
    run, so the probe never perturbs results).
    """
    n = getattr(env, "events_scheduled", None)
    if n is not None:
        return int(n)
    return next(env._eid)


#: A case body: given a scale, build + run the simulation and return
#: (environment, simulated_seconds).  The *whole* body is timed, so
#: engines may trade setup cost for per-event cost but cannot hide it.
CaseBody = Callable[[int], Tuple[Environment, float]]


@dataclass(frozen=True)
class BenchCase:
    """One member of the standard mix."""

    name: str
    description: str
    body: CaseBody
    #: Scale (case-specific unit, roughly "units of work") per mode.
    quick_scale: int
    full_scale: int
    #: Whether the case counts toward the mix aggregate.  Cases added
    #: after a checked-in baseline run with ``in_mix=False`` so the mix
    #: events/sec stays comparable against that baseline; they are still
    #: timed, reported, and speedup-tracked individually.
    in_mix: bool = True

    def scale(self, quick: bool) -> int:
        return self.quick_scale if quick else self.full_scale


# ----------------------------------------------------------------------
# Kernel-pure cases
# ----------------------------------------------------------------------

def _timeout_churn(scale: int) -> Tuple[Environment, float]:
    """``scale`` Timeout waits spread over 100 concurrent processes."""
    env = Environment()
    procs = 100
    waits = scale // procs

    def churn(env: Environment, delay: float, n: int):
        for _ in range(n):
            yield env.timeout(delay)

    for i in range(procs):
        # Distinct delays keep heap times distinct (the common regime).
        env.process(churn(env, 0.001 + i * 1e-6, waits))
    env.run()
    return env, env.now


def _process_storm(scale: int) -> Tuple[Environment, float]:
    """``scale`` short-lived processes, spawned in waves and joined."""
    env = Environment()
    wave = 500
    waves = scale // wave

    def worker(env: Environment, delay: float):
        yield env.timeout(delay)

    def spawner(env: Environment):
        for w in range(waves):
            procs = [
                env.process(worker(env, 0.0005 + i * 1e-7))
                for i in range(wave)
            ]
            yield env.all_of(procs)

    env.process(spawner(env))
    env.run()
    return env, env.now


def _condition_fanin(scale: int) -> Tuple[Environment, float]:
    """``scale`` composite conditions over 8-way timeout fans."""

    env = Environment()

    def fanner(env: Environment):
        for i in range(scale):
            fan = [env.timeout(0.0001 * (j + 1)) for j in range(8)]
            if i % 2:
                yield env.any_of(fan)
            else:
                yield env.all_of(fan)

    env.process(fanner(env))
    env.run()
    return env, env.now


def _lock_handoff(scale: int) -> Tuple[Environment, float]:
    """``scale`` exclusive acquire/hold/release handoffs on one lock."""
    env = Environment()
    lock = SyncLock(env, "bench-lock")
    procs = 50
    rounds = scale // procs

    def contender(env: Environment, hold: float):
        for _ in range(rounds):
            with lock.acquire(owner=None, exclusive=True) as grant:
                yield grant
                yield env.timeout(hold)

    for i in range(procs):
        env.process(contender(env, 0.0001 + i * 1e-7))
    env.run()
    return env, env.now


# ----------------------------------------------------------------------
# Full request-path cases
# ----------------------------------------------------------------------

class _BenchApp(Application):
    """Minimal application: one handler burning a fixed service time."""

    name = "benchapp"

    def __init__(self, env, controller, rng) -> None:
        super().__init__(env, controller, rng)
        self.register_handler("noop", self._noop)

    def _noop(self, task, service: float = 0.002):
        yield self.env.timeout(service)


def _arrival_flood(scale: int) -> Tuple[Environment, float]:
    """~``scale`` open-loop Poisson arrivals through the full driver.

    Uses the driver's pre-generated arrival-stream path when the engine
    provides one (``Driver.run_arrivals``), else the classic generator
    source -- the workload (arrival times, operations, service times)
    is draw-identical either way.
    """
    rate = 2000.0
    duration = scale / rate
    env = Environment()
    rng = Rng(0)
    controller = NullController(env)
    app = _BenchApp(env, controller, rng)
    driver = Driver(env, app, controller, MetricsCollector())
    mix = [MixEntry(lambda: Operation("noop"), 1.0)]
    if hasattr(driver, "run_arrivals"):
        from ..workloads.spec import poisson_arrival_stream

        stream = poisson_arrival_stream(
            rng.fork("arrivals:client"),
            rate=rate,
            stop_time=duration,
            mix=mix,
        )
        driver.run_arrivals(stream)
    else:  # pragma: no cover - pre-fast-path engines only
        workload = Workload(
            [OpenLoopSource(rate=rate, mix=mix, stop_time=duration)]
        )
        driver.run_workload(workload)
    env.run(until=duration)
    return env, duration


class _FleetEnvProxy:
    """Engine-agnostic event-count carrier for multi-environment cases."""

    __slots__ = ("events_scheduled",)

    def __init__(self, events: int) -> None:
        self.events_scheduled = events


def _cluster_fanout(scale: int) -> Tuple[Environment, float]:
    """``scale`` seconds of a 3-node coordinated fleet run (serial).

    Exercises the cluster tier end to end -- LB routing, per-node app
    models, epoch advances, coordinator attribution -- on one process so
    the number is an engine cost, not an IPC cost.  Event counts are
    summed across the fleet's per-node environments.
    """
    from ..cluster import Fleet, demo_fleet

    duration = float(scale)
    spec = demo_fleet(
        n_nodes=3,
        duration=duration,
        warmup=min(2.0, duration / 2),
        mode="coordinated",
    )
    fleet = Fleet(spec)
    fleet.run()
    total = sum(events_scheduled(node.env) for node in fleet.nodes)
    return _FleetEnvProxy(total), duration


def _macro_case_c1(scale: int) -> Tuple[Environment, float]:
    """``scale`` seconds of the paper's case c1 (MySQL backup), overload
    baseline -- the engine running a real app model end to end."""
    from ..cases import get_case

    case = get_case("c1")
    result = case.run(controller_factory=None, seed=0, duration=float(scale))
    return result.driver.env, float(scale)


#: The standard case mix, in report order.
STANDARD_MIX: List[BenchCase] = [
    BenchCase(
        "timeout-churn",
        "generator timeout waits, 100 concurrent processes",
        _timeout_churn,
        quick_scale=50_000,
        full_scale=400_000,
    ),
    BenchCase(
        "process-storm",
        "short-lived process create/start/finish/join waves",
        _process_storm,
        quick_scale=10_000,
        full_scale=60_000,
    ),
    BenchCase(
        "condition-fanin",
        "AllOf/AnyOf composites over 8-way timeout fans",
        _condition_fanin,
        quick_scale=4_000,
        full_scale=25_000,
    ),
    BenchCase(
        "lock-handoff",
        "exclusive SyncLock convoy handoffs, 50 contenders",
        _lock_handoff,
        quick_scale=10_000,
        full_scale=50_000,
    ),
    BenchCase(
        "arrival-flood",
        "open-loop Poisson arrivals through the full request path",
        _arrival_flood,
        quick_scale=10_000,
        full_scale=80_000,
    ),
    BenchCase(
        "macro-case-c1",
        "paper case c1 (MySQL backup overload), uncontrolled",
        _macro_case_c1,
        quick_scale=5,
        full_scale=20,
    ),
    BenchCase(
        "cluster-fanout",
        "3-node coordinated fleet: LB + app models + attribution",
        _cluster_fanout,
        quick_scale=8,
        full_scale=20,
        # Keeps the 6-case mix aggregate comparable with the BENCH_6
        # baseline; timed and speedup-tracked individually.
        in_mix=False,
    ),
]


def case_names() -> List[str]:
    return [case.name for case in STANDARD_MIX]


def get_bench_case(name: str) -> BenchCase:
    for case in STANDARD_MIX:
        if case.name == name:
            return case
    raise KeyError(
        f"unknown bench case {name!r}; known: {case_names()}"
    )
