"""Kernel microbenchmark: the standard case mix behind ``repro bench``.

See docs/PERFORMANCE.md for how to run it and read its output.
"""

from .cases import (
    STANDARD_MIX,
    BenchCase,
    case_names,
    events_scheduled,
    get_bench_case,
)
from .runner import (
    DEFAULT_BENCH_PATH,
    BenchReport,
    CaseResult,
    calibrate,
    check_regression,
    run_bench,
    run_case,
    speedups,
    write_report,
)

__all__ = [
    "STANDARD_MIX",
    "BenchCase",
    "BenchReport",
    "CaseResult",
    "DEFAULT_BENCH_PATH",
    "calibrate",
    "case_names",
    "check_regression",
    "events_scheduled",
    "get_bench_case",
    "run_bench",
    "run_case",
    "speedups",
    "write_report",
]
