"""Kernel microbenchmark runner: time the standard mix, emit BENCH JSON.

``repro bench`` exists so the repo has a *perf trajectory*: every run
reports events/sec per case and for the whole mix, and the checked-in
``BENCH_<n>.json`` snapshots let future sessions (and the CI
``bench-smoke`` job) see whether the engine got faster or slower.

Cross-machine comparability: absolute events/sec numbers are only
comparable on one machine.  Every report therefore embeds a
*calibration* number -- events/sec of a fixed pure-Python heap+generator
loop timed in the same process -- and regression checks compare
``mix / calibration`` ratios, which factor out most of the host-speed
difference between (say) a laptop and a CI runner.
"""

from __future__ import annotations

import heapq
import json
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .cases import STANDARD_MIX, BenchCase, events_scheduled

#: Default output path at the repo root (n = the PR that added/refreshed
#: the snapshot; keep history, bump n on re-anchors).
DEFAULT_BENCH_PATH = "BENCH_7.json"

#: Bench report schema version.
SCHEMA = 1


@dataclass
class CaseResult:
    """Timing for one case of the mix."""

    name: str
    description: str
    scale: int
    events: int
    wall_s: float
    sim_time: float
    repeats: int
    #: Mirrors :attr:`BenchCase.in_mix`: whether this case counts toward
    #: the mix aggregate (regression-gated); False = reported only.
    in_mix: bool = True

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else float("inf")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "scale": self.scale,
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "sim_time": round(self.sim_time, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "repeats": self.repeats,
            "in_mix": self.in_mix,
        }


@dataclass
class BenchReport:
    """One full bench run (the mix plus host calibration)."""

    mode: str
    repeats: int
    calibration_events_per_sec: float
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def mix_cases(self) -> List[CaseResult]:
        """Cases counted in the mix aggregate (``in_mix=True`` only)."""
        return [case for case in self.cases if case.in_mix]

    @property
    def mix_events(self) -> int:
        return sum(case.events for case in self.mix_cases)

    @property
    def mix_wall_s(self) -> float:
        return sum(case.wall_s for case in self.mix_cases)

    @property
    def mix_events_per_sec(self) -> float:
        wall = self.mix_wall_s
        return self.mix_events / wall if wall > 0 else float("inf")

    @property
    def normalized_mix(self) -> float:
        """Mix events/sec relative to the calibration loop (host-neutral)."""
        return self.mix_events_per_sec / self.calibration_events_per_sec

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "generated_by": "repro bench",
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "mode": self.mode,
            "repeats": self.repeats,
            "calibration_events_per_sec": round(
                self.calibration_events_per_sec, 1
            ),
            "cases": [case.to_dict() for case in self.cases],
            "mix": {
                "events": self.mix_events,
                "wall_s": round(self.mix_wall_s, 6),
                "events_per_sec": round(self.mix_events_per_sec, 1),
                "normalized": round(self.normalized_mix, 6),
            },
        }

    def format(self) -> str:
        lines = [
            f"repro bench ({self.mode} mode, best of {self.repeats}; "
            f"calibration {self.calibration_events_per_sec:,.0f} ev/s)",
            "",
            f"{'case':<18} {'events':>9} {'wall':>9} {'events/sec':>12} "
            f"{'sim-time':>9}",
        ]
        extras = False
        for case in self.cases:
            marker = "" if case.in_mix else "*"
            extras = extras or not case.in_mix
            lines.append(
                f"{case.name + marker:<18} {case.events:>9,} "
                f"{case.wall_s:>8.3f}s {case.events_per_sec:>12,.0f} "
                f"{case.sim_time:>8.2f}s"
            )
        lines.append("-" * len(lines[2]))
        lines.append(
            f"{'mix':<18} {self.mix_events:>9,} {self.mix_wall_s:>8.3f}s "
            f"{self.mix_events_per_sec:>12,.0f} "
            f"{'(normalized ' + format(self.normalized_mix, '.3f') + ')':>9}"
        )
        if extras:
            lines.append("* timed individually, excluded from the mix")
        return "\n".join(lines)


def calibrate(entries: int = 500_000, passes: int = 3) -> float:
    """Events/sec of a fixed minimal heap+generator loop (best of passes).

    This is the irreducible skeleton of any Python DES step loop -- pop,
    advance a generator, push -- with no kernel code involved, so it
    tracks host interpreter speed, not engine quality.  Used to
    normalize mix numbers across machines.

    Best-of-``passes`` mirrors the best-of-repeats case walls: both
    sides of the ``mix/calibration`` ratio are quiet-machine numbers,
    otherwise one noisy scheduler moment during the single calibration
    run skews every normalized figure of the report.  The default
    ``entries`` makes one pass a few hundred milliseconds -- the same
    duration scale as the case runs -- so a brief CPU-frequency burst
    cannot be captured by calibration yet missed by every case.
    """

    def gen(n: int):
        for _ in range(n):
            yield 0.001

    def one_pass() -> float:
        streams = 100
        per = entries // streams
        queue = [(0.0, i, gen(per)) for i in range(streams)]
        heapq.heapify(queue)
        seq = streams
        pop, push = heapq.heappop, heapq.heappush
        processed = 0
        start = time.perf_counter()
        while queue:
            now, _, g = pop(queue)
            processed += 1
            try:
                delay = next(g)
            except StopIteration:
                continue
            seq += 1
            push(queue, (now + delay, seq, g))
        wall = time.perf_counter() - start
        return processed / wall

    return max(one_pass() for _ in range(max(1, passes)))


def run_case(case: BenchCase, quick: bool, repeats: int = 3) -> CaseResult:
    """Time one case (best wall time of ``repeats`` runs).

    The timed region covers construction + run, so an engine that moves
    per-event work into batched setup still pays for it here.
    """
    scale = case.scale(quick)
    best_wall = float("inf")
    events = 0
    sim_time = 0.0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        env, sim_time = case.body(scale)
        wall = time.perf_counter() - start
        events = events_scheduled(env)
        best_wall = min(best_wall, wall)
    return CaseResult(
        name=case.name,
        description=case.description,
        scale=scale,
        events=events,
        wall_s=best_wall,
        sim_time=sim_time,
        repeats=max(1, repeats),
        in_mix=case.in_mix,
    )


def run_bench(
    quick: bool = False,
    repeats: int = 3,
    cases: Optional[List[BenchCase]] = None,
    progress=None,
) -> BenchReport:
    """Run the standard mix (or ``cases``) and return the report."""
    report = BenchReport(
        mode="quick" if quick else "full",
        repeats=max(1, repeats),
        calibration_events_per_sec=calibrate(),
    )
    for case in cases if cases is not None else STANDARD_MIX:
        result = run_case(case, quick=quick, repeats=repeats)
        report.cases.append(result)
        if progress is not None:
            progress(result)
    return report


def write_report(
    report: BenchReport,
    path: str,
    baseline: Optional[Dict[str, object]] = None,
) -> None:
    """Write the report JSON; ``baseline`` (pre-PR numbers measured on
    the same machine) is embedded verbatim with per-case speedups."""
    payload = report.to_dict()
    if baseline is not None:
        payload["baseline"] = baseline
        payload["speedup"] = speedups(payload, baseline)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def speedups(
    current: Dict[str, object], baseline: Dict[str, object]
) -> Dict[str, object]:
    """Per-case and mix events/sec ratios current/baseline."""
    base_cases = {
        c["name"]: c for c in baseline.get("cases", [])
    }
    per_case = {}
    for case in current.get("cases", []):
        base = base_cases.get(case["name"])
        if base and base.get("events_per_sec"):
            per_case[case["name"]] = round(
                case["events_per_sec"] / base["events_per_sec"], 2
            )
    out: Dict[str, object] = {"per_case": per_case}
    base_mix = baseline.get("mix", {}).get("events_per_sec")
    cur_mix = current.get("mix", {}).get("events_per_sec")
    if base_mix and cur_mix:
        out["mix"] = round(cur_mix / base_mix, 2)
    return out


def check_regression(
    report: BenchReport,
    baseline_path: str,
    max_regression: float = 0.2,
) -> List[str]:
    """Compare against a checked-in report; return failure messages.

    Two-sided gate: the mix counts as regressed only if **both** the raw
    events/sec *and* the calibration-normalized events/sec fall more
    than ``max_regression`` below the baseline.  The decision itself is
    :func:`repro.regress.stats.two_sided_regressed` -- one shared
    definition of "regression" for bench and the regress observatory
    (see that module for the rationale).  A missing/corrupt baseline is
    a failure (the gate must not silently pass).
    """
    from ..regress.stats import two_sided_regressed

    try:
        with open(baseline_path) as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot read baseline {baseline_path!r}: {exc}"]

    snap_norm = snapshot.get("mix", {}).get("normalized")
    snap_mix = snapshot.get("mix", {}).get("events_per_sec")
    if not snap_norm:
        calib = snapshot.get("calibration_events_per_sec")
        if calib and snap_mix:
            snap_norm = snap_mix / calib
    if not snap_norm or not snap_mix:
        return [
            f"baseline {baseline_path!r} has no mix/normalized numbers"
        ]
    tolerance = 1.0 - max_regression
    norm_floor = snap_norm * tolerance
    mix_floor = snap_mix * tolerance
    current_norm = report.normalized_mix
    current_mix = report.mix_events_per_sec
    if two_sided_regressed(
        current_raw=current_mix,
        current_norm=current_norm,
        baseline_raw=snap_mix,
        baseline_norm=snap_norm,
        max_regression=max_regression,
    ):
        return [
            "mix regression vs "
            f"{baseline_path} (tolerance {max_regression:.0%}): "
            f"normalized {current_norm:.3f} < floor {norm_floor:.3f} "
            f"(baseline {snap_norm:.3f}) AND raw {current_mix:,.0f} ev/s "
            f"< floor {mix_floor:,.0f} (baseline {snap_mix:,.0f})"
        ]
    return []
