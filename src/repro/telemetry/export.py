"""Telemetry exporters: Prometheus text format and JSONL time series.

Both formats are deterministic: families sorted by name, children by
label key, windows in simulated-time order, floats rendered with
``repr`` (shortest round-trip, platform-stable for IEEE doubles), and
JSON with sorted keys.  Same seed -> byte-identical files.
"""

from __future__ import annotations

import json
from typing import IO, List, Union

from .registry import LabelKey
from .scrape import RunTelemetry

#: Sketch quantiles exported as Prometheus summary lines.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


def _fmt(value: float) -> str:
    """Prometheus-style number rendering (deterministic)."""
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(runs: List[RunTelemetry]) -> str:
    """Render every run's final registry in Prometheus text format.

    Each run's metrics carry a ``run`` label, so a multi-run campaign
    exports as one well-formed exposition document.
    """
    lines: List[str] = []
    seen_header = set()
    for run in runs:
        run_label = f'run="{run.label}"'
        for name, kind, help_text, children in run.registry.collect():
            if name not in seen_header:
                seen_header.add(name)
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
            for key, metric in children:
                base = list(key) + [("run", run.label)]
                base_key: LabelKey = tuple(sorted(base))
                if kind in ("counter", "gauge"):
                    lines.append(
                        f"{name}{_labels(base_key)} {_fmt(metric.value)}"
                    )
                elif kind == "histogram":
                    for bound, cum in metric.cumulative():
                        le = 'le="' + _fmt(bound) + '"'
                        lines.append(
                            f"{name}_bucket{_labels(base_key, le)} {cum}"
                        )
                    lines.append(
                        f"{name}_sum{_labels(base_key)} {_fmt(metric.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_labels(base_key)} {metric.count}"
                    )
                elif kind == "summary":
                    for q in SUMMARY_QUANTILES:
                        qlabel = 'quantile="' + str(q) + '"'
                        lines.append(
                            f"{name}{_labels(base_key, qlabel)}"
                            f" {_fmt(metric.quantile(q))}"
                        )
                    lines.append(
                        f"{name}_sum{_labels(base_key)} {_fmt(metric.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_labels(base_key)} {metric.count}"
                    )
    return "\n".join(lines) + "\n" if lines else ""


def _clean(value: float) -> Union[float, None]:
    """JSON-safe value: NaN/inf become null (json allow_nan=False)."""
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return round(value, 9)


def jsonl_series(runs: List[RunTelemetry]) -> str:
    """One JSON line per run header / scrape window / health event."""
    dumps = lambda obj: json.dumps(  # noqa: E731
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    lines: List[str] = []
    for run in runs:
        lines.append(dumps({
            "kind": "run",
            "run": run.label,
            "interval": round(run.interval, 9),
            "duration": round(run.duration, 9),
            "resources": run.resource_names,
            "windows": len(run.windows),
        }))
        for window in run.windows:
            lines.append(dumps({
                "kind": "window",
                "run": run.label,
                "t": round(window.t, 9),
                "values": {
                    key: _clean(val)
                    for key, val in sorted(window.values.items())
                },
            }))
        for event in run.health_events:
            payload = event.to_dict()
            payload.update({"kind": "health", "run": run.label})
            lines.append(dumps(payload))
        for fault in run.fault_events:
            payload = dict(fault)
            payload.update({"kind": "fault", "run": run.label})
            lines.append(dumps(payload))
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(runs: List[RunTelemetry], path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(runs))


def write_jsonl(runs: List[RunTelemetry], path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(jsonl_series(runs))
