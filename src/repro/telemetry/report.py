"""Self-contained HTML run reports with inline-SVG sparklines.

:func:`render_html_report` turns a telemetry session's runs into one
HTML document with zero external references (inline CSS, inline SVG):
per run, sparkline panels for throughput / p99 / per-resource
utilization / kernel queue depth / cancellations, a colour-banded
health timeline, fault inject/restore markers, and the decision-audit
table.  Deterministic: no wall clock, fixed float formatting.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence, Tuple

from .health import worst_severity
from .scrape import RunTelemetry

SPARK_W = 260
SPARK_H = 48
_PAD = 3.0

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 1080px; color: #1c2733; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em;
     border-bottom: 1px solid #d8dee6; padding-bottom: .2em; }
.meta { color: #5a6b7b; font-size: .85em; }
.panels { display: flex; flex-wrap: wrap; gap: 14px; }
.panel { border: 1px solid #d8dee6; border-radius: 6px;
         padding: 8px 10px; background: #fbfcfe; }
.panel .title { font-size: .8em; color: #44525f; margin-bottom: 2px; }
.panel .last { font-size: .9em; font-weight: 600; }
table.audits { border-collapse: collapse; font-size: .82em;
               margin-top: .6em; }
table.audits th, table.audits td { border: 1px solid #d8dee6;
               padding: 3px 8px; text-align: left; }
table.audits th { background: #eef2f7; }
.sev-warn { color: #9a6b00; } .sev-critical { color: #b00020; }
.healthlist { font-size: .85em; }
"""


def _fmt(value: float, digits: int = 3) -> str:
    if value != value:
        return "--"
    return f"{value:.{digits}g}"


def _spark_points(
    series: Sequence[Tuple[float, float]], duration: float
) -> Tuple[str, float, float]:
    """SVG polyline points for (t, value) series; returns (pts, lo, hi)."""
    finite = [(t, v) for t, v in series if v == v]
    if not finite or duration <= 0:
        return "", float("nan"), float("nan")
    lo = min(v for _, v in finite)
    hi = max(v for _, v in finite)
    span = (hi - lo) or 1.0
    pts = []
    for t, v in finite:
        x = _PAD + (SPARK_W - 2 * _PAD) * min(t / duration, 1.0)
        y = SPARK_H - _PAD - (SPARK_H - 2 * _PAD) * ((v - lo) / span)
        pts.append(f"{x:.1f},{y:.1f}")
    return " ".join(pts), lo, hi


def spark_points(
    series: Sequence[Tuple[float, float]],
    duration: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Public sparkline geometry (shared with ``repro.regress.report``).

    Like :func:`_spark_points` but with an optional fixed value range,
    so two series (baseline vs current) can be overlaid on one scale.
    """
    finite = [(t, v) for t, v in series if v == v]
    if not finite or duration <= 0:
        return ""
    lo = min(v for _, v in finite) if lo is None else lo
    hi = max(v for _, v in finite) if hi is None else hi
    span = (hi - lo) or 1.0
    pts = []
    for t, v in finite:
        x = _PAD + (SPARK_W - 2 * _PAD) * min(t / duration, 1.0)
        y = SPARK_H - _PAD - (SPARK_H - 2 * _PAD) * ((v - lo) / span)
        pts.append(f"{x:.1f},{y:.1f}")
    return " ".join(pts)


def _sparkline(
    title: str,
    series: Sequence[Tuple[float, float]],
    duration: float,
    fault_times: Sequence[Tuple[float, str]] = (),
    unit: str = "",
) -> str:
    pts, lo, hi = _spark_points(series, duration)
    markers = []
    for t, phase in fault_times:
        if duration <= 0:
            continue
        x = _PAD + (SPARK_W - 2 * _PAD) * min(t / duration, 1.0)
        colour = "#b00020" if phase == "inject" else "#2e7d32"
        markers.append(
            f'<line x1="{x:.1f}" y1="1" x2="{x:.1f}" y2="{SPARK_H - 1}" '
            f'stroke="{colour}" stroke-width="1" stroke-dasharray="2,2"/>'
        )
    poly = (
        f'<polyline points="{pts}" fill="none" stroke="#2255a4" '
        f'stroke-width="1.3"/>' if pts else ""
    )
    finite = [v for _, v in series if v == v]
    last = finite[-1] if finite else float("nan")
    return (
        '<div class="panel">'
        f'<div class="title">{html.escape(title)}</div>'
        f'<svg class="spark" width="{SPARK_W}" height="{SPARK_H}" '
        f'viewBox="0 0 {SPARK_W} {SPARK_H}">'
        f'{"".join(markers)}{poly}</svg>'
        f'<div class="last">last {_fmt(last)}{unit} '
        f'<span class="meta">(min {_fmt(lo)}, max {_fmt(hi)})</span></div>'
        "</div>"
    )


def _health_timeline(run: RunTelemetry) -> str:
    """Colour strip: one cell per scrape window, worst severity wins."""
    if not run.windows:
        return '<p class="meta">no scrape windows</p>'
    width = SPARK_W * 2
    cell = width / len(run.windows)
    cells = []
    for i, window in enumerate(run.windows):
        sev = worst_severity(window.health)
        colour = {"critical": "#d32f2f", "warn": "#f9a825"}.get(
            sev, "#7cb342"
        )
        cells.append(
            f'<rect x="{i * cell:.1f}" y="0" width="{cell:.2f}" '
            f'height="14" fill="{colour}"/>'
        )
    return (
        '<div class="panel"><div class="title">health timeline '
        "(green ok / amber warn / red critical)</div>"
        f'<svg width="{width}" height="14">{"".join(cells)}</svg>'
        "</div>"
    )


def _health_list(run: RunTelemetry, limit: int = 40) -> str:
    if not run.health_events:
        return '<p class="meta">no health events</p>'
    items = []
    for event in run.health_events[:limit]:
        items.append(
            f'<li class="sev-{html.escape(event.severity)}">'
            f"t={event.time:.2f}s <b>{html.escape(event.rule)}</b>: "
            f"{html.escape(event.message)}</li>"
        )
    extra = len(run.health_events) - limit
    more = f'<li class="meta">... {extra} more</li>' if extra > 0 else ""
    return f'<ul class="healthlist">{"".join(items)}{more}</ul>'


def _audit_table(run: RunTelemetry, limit: int = 25) -> str:
    if not run.audits:
        return '<p class="meta">no decision audits recorded</p>'
    rows = []
    for audit in run.audits[:limit]:
        detector = audit.get("detector") or {}
        tail = detector.get("tail_latency")
        tail_txt = f"{tail * 1000:.1f}ms" if isinstance(
            tail, (int, float)
        ) else "--"
        rows.append(
            "<tr>"
            f"<td>{audit.get('time', 0):.2f}s</td>"
            f"<td>{html.escape(str(audit.get('verdict', '?')))}</td>"
            f"<td>{html.escape(str(audit.get('culprit_resource') or '-'))}"
            "</td>"
            f"<td>{html.escape(str(audit.get('cancelled_op_name') or '-'))}"
            "</td>"
            f"<td>{tail_txt}</td>"
            "</tr>"
        )
    extra = len(run.audits) - limit
    more = (
        f'<p class="meta">... {extra} more audits</p>' if extra > 0 else ""
    )
    return (
        '<table class="audits"><tr><th>t</th><th>verdict</th>'
        "<th>culprit resource</th><th>cancelled op</th>"
        "<th>tail latency</th></tr>"
        f'{"".join(rows)}</table>{more}'
    )


def _run_section(run: RunTelemetry) -> str:
    duration = run.duration or (
        run.windows[-1].t if run.windows else 0.0
    )
    faults = [
        (f.get("time", 0.0), f.get("phase", ""))
        for f in run.fault_events
        if f.get("applied", True)
    ]
    panels = [
        _sparkline("throughput (req/s)", run.series("throughput"),
                   duration, faults),
        _sparkline(
            "p99 latency (ms)",
            [(t, v * 1000 if v == v else v)
             for t, v in run.series("p99")],
            duration, faults, unit="ms",
        ),
        _sparkline("event-queue depth", run.series("event_queue_depth"),
                   duration, faults),
        _sparkline("cancellations (cumulative)",
                   run.series("cancels_total"), duration, faults),
    ]
    for name in run.resource_names:
        series = run.series(f"util:{name}")
        if series:
            panels.append(
                _sparkline(f"utilization {name}", series, duration, faults)
            )
    fault_note = ""
    if faults:
        fault_note = (
            '<p class="meta">fault markers: red dashes = inject, '
            "green dashes = restore</p>"
        )
    return (
        f"<h2>{html.escape(run.label)}</h2>"
        f'<p class="meta">duration {duration:.2f}s · '
        f"scrape interval {run.interval:g}s · "
        f"{len(run.windows)} windows · "
        f"{len(run.health_events)} health events · "
        f"{len(run.audits)} audits</p>"
        f'<div class="panels">{"".join(panels)}</div>'
        f"{fault_note}"
        f"{_health_timeline(run)}"
        "<h3>Health events</h3>"
        f"{_health_list(run)}"
        "<h3>Decision audits</h3>"
        f"{_audit_table(run)}"
    )


def render_html_report(
    runs: List[RunTelemetry], title: Optional[str] = None
) -> str:
    """Render a complete, self-contained HTML report for the runs."""
    heading = title or "repro telemetry report"
    sections = "".join(_run_section(run) for run in runs)
    if not runs:
        sections = "<p>No telemetry captured (no runs executed).</p>"
    total_events = sum(len(run.health_events) for run in runs)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(heading)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(heading)}</h1>"
        f'<p class="meta">{len(runs)} run(s) · '
        f"{total_events} health event(s) · generated by repro.telemetry"
        "</p>"
        f"{sections}"
        "</body></html>\n"
    )


def write_html_report(
    runs: List[RunTelemetry], path, title: Optional[str] = None
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_html_report(runs, title))
