"""Window-series serialization: one JSON payload per run.

:func:`window_series` condenses a run's completion records (plus the
delivered-cancellation times) into fixed per-window arrays on the
shared ceil-based window grid (:func:`repro.sim.metrics.window_count`),
so cached campaign extras carry the same per-window p99 / goodput /
cancel-rate shape the telemetry scraper would have produced -- without
requiring a (serial, uncached) telemetered run.  ``repro regress``
snapshots and diffs exactly this payload.

All floats are rounded to 9 decimals and every list is windows-ordered,
so the payload is byte-identical across interpreters and hash seeds.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from ..sim.metrics import completion_windows, percentile, window_count

#: The canonical window width used by campaign extras (matches the
#: harness timeline and the fault-recovery series).
DEFAULT_WINDOW = 0.5

#: The per-window value keys a serialized series carries, in order.
SERIES_KEYS = ("throughput", "p99", "goodput", "cancels")


def window_series(
    records: Iterable[Any],
    duration: float,
    slo: Optional[float] = None,
    cancel_times: Sequence[float] = (),
    window: float = DEFAULT_WINDOW,
) -> Dict[str, Any]:
    """Serialize per-window series over ``[0, duration]``.

    Args:
        records: completion records (``RequestRecord``-shaped: needs
            ``completed``, ``finish_time``, ``latency``); typically the
            warm-up-trimmed collector records so the series matches the
            run summary.
        duration: run horizon covered by the window grid.
        slo: goodput counts completions with latency <= ``slo``; with
            no SLO every completion is "good" (goodput == throughput).
        cancel_times: delivery times of cancellations, bucketed on the
            same grid (the cancel-rate series).
        window: window width in simulated seconds.

    Returns a dict with ``window``, ``slo``, ``end`` (window ends) and
    one windows-aligned list per :data:`SERIES_KEYS` (``p99`` is None
    for empty windows; everything else is a number).
    """
    windows = completion_windows(list(records), window, duration)
    n = window_count(duration, window)
    cancels = [0] * n
    for t in cancel_times:
        idx = min(int(t // window), n - 1)
        cancels[idx] += 1
    ends = []
    throughput = []
    p99s = []
    goodput = []
    for end, latencies in windows:
        ends.append(round(end, 9))
        throughput.append(round(len(latencies) / window, 9))
        if latencies:
            p99s.append(round(percentile(latencies, 99), 9))
        else:
            p99s.append(None)
        good = (
            len(latencies)
            if slo is None
            else sum(1 for lat in latencies if lat <= slo)
        )
        goodput.append(round(good / window, 9))
    return {
        "window": round(window, 9),
        "slo": None if slo is None else round(slo, 9),
        "end": ends,
        "throughput": throughput,
        "p99": p99s,
        "goodput": goodput,
        "cancels": cancels,
    }
