"""Online health monitoring: declarative SLO/invariant rules per window.

The :class:`HealthMonitor` evaluates a list of :class:`HealthRule`
against every telemetry scrape window *while the simulation runs*,
producing a typed :class:`HealthEvent` stream.  Events land in three
places (wired by the scraper): the obs trace (``telemetry:health``
instants), the controller's decision log (``DecisionKind.HEALTH``), and
-- via ``extract_extras`` -- the campaign cache extras.

Built-in rule kinds (the ``params`` each understands):

==================  ====================================================
``p99-ceiling``     ``limit`` (seconds), ``min_samples`` (default 1):
                    window p99 above the ceiling.
``goodput-floor``   ``floor`` (req/s): windowed goodput below the floor
                    while load is offered.
``cancel-storm``    ``max_per_window`` (default 3): too many
                    cancellations inside one scrape window.
``detector-flapping``  ``transitions`` (default 3), ``lookback``
                    (default 8): the overload trigger toggled too often
                    across the trailing windows.
``wrong-culprit-rate``  ``expected`` (op names), ``max_rate``
                    (default 0.0): delivered cancellations hit ops
                    outside the expected culprit set too often.
==================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class HealthRule:
    """One declarative health rule (see module docstring for kinds)."""

    name: str
    kind: str
    severity: str = "warn"
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class HealthEvent:
    """One rule violation observed in one scrape window."""

    time: float
    rule: str
    kind: str
    severity: str
    value: float
    threshold: float
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": round(self.time, 9),
            "rule": self.rule,
            "kind": self.kind,
            "severity": self.severity,
            "value": None if self.value != self.value
            else round(self.value, 9),
            "threshold": round(self.threshold, 9),
            "message": self.message,
        }


def slo_of(controller: Any) -> Optional[float]:
    """Best-effort SLO latency of a controller (None when unknown)."""
    config = getattr(controller, "config", None)
    slo = getattr(config, "slo_latency", None)
    if slo is None:
        slo = getattr(controller, "slo_latency", None)
    if slo is None:
        slo = getattr(controller, "slo", None)
    return float(slo) if isinstance(slo, (int, float)) and slo > 0 else None


def default_health_rules(
    slo: Optional[float] = None,
    expected_culprits: Optional[Sequence[str]] = None,
    goodput_floor: Optional[float] = None,
) -> List[HealthRule]:
    """The standard rule set; SLO-dependent rules appear only with a SLO."""
    rules = [
        HealthRule(
            name="cancel-storm", kind="cancel-storm", severity="critical",
            params={"max_per_window": 3},
        ),
        HealthRule(
            name="detector-flapping", kind="detector-flapping",
            params={"transitions": 3, "lookback": 8},
        ),
    ]
    if slo is not None:
        rules.append(
            HealthRule(
                name="p99-ceiling", kind="p99-ceiling", severity="critical",
                params={"limit": 5.0 * slo, "min_samples": 3},
            )
        )
    if goodput_floor is not None:
        rules.append(
            HealthRule(
                name="goodput-floor", kind="goodput-floor",
                params={"floor": goodput_floor},
            )
        )
    if expected_culprits:
        rules.append(
            HealthRule(
                name="wrong-culprit", kind="wrong-culprit-rate",
                severity="critical",
                params={"expected": tuple(expected_culprits),
                        "max_rate": 0.0},
            )
        )
    return rules


def adaptation_rules(slo: Optional[float] = None) -> List[HealthRule]:
    """The rule subset the adaptive controller mode evaluates in-loop.

    :class:`repro.core.adaptive.AdaptiveThresholdPolicy` runs its own
    :class:`HealthMonitor` over the detector's windows (one evaluation
    per detection period, independent of any telemetry session), using
    the same rule engine and the same parameters as the scraper's
    defaults: detector-flapping always, p99-ceiling at ``5 x SLO``.
    """
    rules = [
        HealthRule(
            name="detector-flapping", kind="detector-flapping",
            params={"transitions": 3, "lookback": 8},
        ),
    ]
    if slo is not None:
        rules.append(
            HealthRule(
                name="p99-ceiling", kind="p99-ceiling", severity="critical",
                params={"limit": 5.0 * slo, "min_samples": 3},
            )
        )
    return rules


class HealthMonitor:
    """Evaluates rules against successive scrape windows.

    Stateful where a rule needs memory (flapping lookback, cumulative
    culprit accounting); all state is derived from window values, so the
    event stream is as deterministic as the windows themselves.
    """

    def __init__(self, rules: Sequence[HealthRule]) -> None:
        self.rules = list(rules)
        self.events: List[HealthEvent] = []
        self._overload_history: List[float] = []
        self._cancels_total = 0
        self._wrong_total = 0

    def evaluate(
        self,
        t: float,
        values: Mapping[str, float],
        cancelled_ops: Sequence[str] = (),
    ) -> List[HealthEvent]:
        """Evaluate all rules for the window ending at ``t``.

        Args:
            t: window end (simulated seconds).
            values: the window's flat value map (see Scraper).
            cancelled_ops: ops of cancellations *delivered* this window.
        """
        self._overload_history.append(
            values.get("detector_overloaded", 0.0)
        )
        fired: List[HealthEvent] = []
        for rule in self.rules:
            event = self._evaluate_one(rule, t, values, cancelled_ops)
            if event is not None:
                fired.append(event)
        # Cumulative culprit accounting rolls forward once per window.
        self._account_culprits(cancelled_ops)
        self.events.extend(fired)
        return fired

    # ------------------------------------------------------------------
    # Rule evaluators
    # ------------------------------------------------------------------
    def _evaluate_one(
        self,
        rule: HealthRule,
        t: float,
        values: Mapping[str, float],
        cancelled_ops: Sequence[str],
    ) -> Optional[HealthEvent]:
        params = rule.params
        if rule.kind == "p99-ceiling":
            p99 = values.get("p99", float("nan"))
            limit = float(params["limit"])
            enough = values.get("completed_window", 0.0) >= float(
                params.get("min_samples", 1)
            )
            if enough and p99 == p99 and p99 > limit:
                return self._event(
                    rule, t, p99, limit,
                    f"window p99 {p99 * 1000:.1f}ms over ceiling "
                    f"{limit * 1000:.1f}ms",
                )
        elif rule.kind == "goodput-floor":
            floor = float(params["floor"])
            goodput = values.get("goodput", float("nan"))
            offered = values.get("offered_window", 0.0)
            if offered > 0 and goodput == goodput and goodput < floor:
                return self._event(
                    rule, t, goodput, floor,
                    f"goodput {goodput:.1f}/s under floor {floor:.1f}/s",
                )
        elif rule.kind == "cancel-storm":
            limit = float(params.get("max_per_window", 3))
            cancels = values.get("cancels_window", 0.0)
            if cancels >= limit:
                return self._event(
                    rule, t, cancels, limit,
                    f"{int(cancels)} cancellations in one window",
                )
        elif rule.kind == "detector-flapping":
            lookback = int(params.get("lookback", 8))
            limit = float(params.get("transitions", 3))
            recent = self._overload_history[-lookback:]
            transitions = sum(
                1 for a, b in zip(recent, recent[1:]) if a != b
            )
            if transitions >= limit:
                return self._event(
                    rule, t, float(transitions), limit,
                    f"detector toggled {transitions}x over "
                    f"{len(recent)} windows",
                )
        elif rule.kind == "wrong-culprit-rate":
            expected = set(params.get("expected", ()))
            max_rate = float(params.get("max_rate", 0.0))
            wrong_now = [op for op in cancelled_ops if op not in expected]
            if wrong_now:
                total = self._cancels_total + len(cancelled_ops)
                wrong = self._wrong_total + len(wrong_now)
                rate = wrong / total if total else 0.0
                if rate > max_rate:
                    return self._event(
                        rule, t, rate, max_rate,
                        f"cancelled non-culprit op(s) "
                        f"{sorted(set(wrong_now))} "
                        f"(wrong-culprit rate {rate:.2f})",
                    )
        else:
            raise ValueError(f"unknown health-rule kind {rule.kind!r}")
        return None

    def _account_culprits(self, cancelled_ops: Sequence[str]) -> None:
        for rule in self.rules:
            if rule.kind == "wrong-culprit-rate":
                expected = set(rule.params.get("expected", ()))
                self._cancels_total += len(cancelled_ops)
                self._wrong_total += sum(
                    1 for op in cancelled_ops if op not in expected
                )
                break

    def _event(
        self,
        rule: HealthRule,
        t: float,
        value: float,
        threshold: float,
        message: str,
    ) -> HealthEvent:
        return HealthEvent(
            time=t,
            rule=rule.name,
            kind=rule.kind,
            severity=rule.severity,
            value=value,
            threshold=threshold,
            message=message,
        )


def series_rules(slo: Optional[float] = None) -> List[HealthRule]:
    """The rule subset computable post-hoc from a serialized series.

    A :func:`repro.telemetry.series.window_series` payload carries
    per-window p99 / completion / cancellation values but no live
    detector trigger, so ``detector-flapping`` (an in-loop signal) is
    excluded; the parameters match :func:`default_health_rules`.
    """
    rules = [
        HealthRule(
            name="cancel-storm", kind="cancel-storm", severity="critical",
            params={"max_per_window": 3},
        ),
    ]
    if slo is not None:
        rules.append(
            HealthRule(
                name="p99-ceiling", kind="p99-ceiling", severity="critical",
                params={"limit": 5.0 * slo, "min_samples": 3},
            )
        )
    return rules


def series_health_counts(
    series: Mapping[str, Any],
    rules: Optional[Sequence[HealthRule]] = None,
) -> Dict[str, int]:
    """Health-event counts by rule over a serialized window series.

    Replays the window rules against a
    :func:`repro.telemetry.series.window_series` payload (the shape
    campaign extras cache), so ``repro regress`` gets per-rule event
    counts from cached runs without a telemetry session.  Every rule in
    play appears in the result, zero-count rules included, keys sorted.
    """
    window = float(series.get("window") or 0.0) or 1.0
    if rules is None:
        rules = series_rules(series.get("slo"))
    monitor = HealthMonitor(rules)
    p99s = series.get("p99", ())
    throughputs = series.get("throughput", ())
    cancels = series.get("cancels", ())
    for i, end in enumerate(series.get("end", ())):
        p99 = p99s[i] if i < len(p99s) else None
        values = {
            "p99": float("nan") if p99 is None else float(p99),
            "completed_window": (
                float(throughputs[i]) * window
                if i < len(throughputs) else 0.0
            ),
            "cancels_window": (
                float(cancels[i]) if i < len(cancels) else 0.0
            ),
        }
        monitor.evaluate(float(end), values)
    counts = {rule.name: 0 for rule in rules}
    for event in monitor.events:
        counts[event.rule] = counts.get(event.rule, 0) + 1
    return {name: counts[name] for name in sorted(counts)}


def worst_severity(events: Sequence[HealthEvent]) -> Optional[str]:
    """'critical' > 'warn' > None, for timeline colouring."""
    if any(e.severity == "critical" for e in events):
        return "critical"
    if events:
        return "warn"
    return None
