"""Sim-time scraping: sample every layer into the registry per window.

The :class:`Scraper` is a simulation process that wakes every
``interval`` simulated seconds and pulls state from each layer of an
assembled run -- the kernel (event-queue depth, processes alive), every
resource exposing ``telemetry_snapshot()``, the workload driver
(offered/completed/cancelled per op), the controller (detector trigger
state, blame scores, cancellation signals), and the fault injector
(active faults).  Pull-based scraping keeps the hot path untouched:
when no telemetry session is active nothing here runs at all, matching
the ``NullTracer`` fast-path discipline.

Each scrape produces one :class:`ScrapeWindow` (a flat, deterministic
value map), updates the run's :class:`~repro.telemetry.registry.
MetricsRegistry`, and feeds the window to the
:class:`~repro.telemetry.health.HealthMonitor`; fired
:class:`~repro.telemetry.health.HealthEvent` instances are mirrored
into the obs trace and the controller's decision log.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.metrics import RequestStatus, percentile
from .health import HealthEvent, HealthMonitor, HealthRule, worst_severity
from .registry import MetricsRegistry


class ScrapeWindow:
    """One scrape: window end time + the flat value map sampled there."""

    __slots__ = ("t", "values", "health")

    def __init__(self, t: float, values: Dict[str, float]) -> None:
        self.t = t
        self.values = values
        #: Health events fired in this window (set by the scraper).
        self.health: List[HealthEvent] = []


class RunTelemetry:
    """Everything telemetry collected for one simulation run."""

    def __init__(self, label: str, interval: float) -> None:
        self.label = label
        self.interval = interval
        self.registry = MetricsRegistry()
        self.windows: List[ScrapeWindow] = []
        self.health_events: List[HealthEvent] = []
        #: Fault injector events (dicts), filled at finalize.
        self.fault_events: List[Dict[str, Any]] = []
        #: Decision-audit payloads (dicts), filled at finalize.
        self.audits: List[Dict[str, Any]] = []
        self.duration = 0.0
        #: Names of the resources that were scraped (report ordering).
        self.resource_names: List[str] = []

    def series(self, key: str) -> List[Tuple[float, float]]:
        """(t, value) pairs of one window-value key across all windows."""
        return [
            (w.t, w.values[key]) for w in self.windows if key in w.values
        ]


def live_line(run: RunTelemetry, window: ScrapeWindow) -> str:
    """One compact TTY dashboard line for a scrape window."""
    v = window.values
    p99 = v.get("p99", float("nan"))
    p99_txt = f"{p99 * 1000:6.1f}ms" if p99 == p99 else "      --"
    utils = [
        (key[5:], val) for key, val in v.items() if key.startswith("util:")
    ]
    hottest = max(utils, key=lambda item: item[1]) if utils else None
    hot_txt = (
        f"  hot={hottest[0]}:{hottest[1]:.2f}" if hottest else ""
    )
    health = worst_severity(window.health)
    health_txt = f"  !{health}" if health else ""
    return (
        f"[{run.label}] t={window.t:7.2f}s "
        f"tput={v.get('throughput', 0.0):7.1f}/s p99={p99_txt} "
        f"q={int(v.get('event_queue_depth', 0)):4d} "
        f"cancels={int(v.get('cancels_total', 0)):3d}"
        f"{hot_txt}{health_txt}"
    )


class Scraper:
    """Periodically samples an assembled run into a :class:`RunTelemetry`."""

    def __init__(
        self,
        env: Any,
        run: RunTelemetry,
        rules: Sequence[HealthRule],
        slo: Optional[float] = None,
        live_sink: Optional[Callable[[RunTelemetry, ScrapeWindow], None]]
        = None,
    ) -> None:
        self.env = env
        self.run = run
        self.monitor = HealthMonitor(rules)
        self.slo = slo
        self.live_sink = live_sink
        self._app: Any = None
        self._driver: Any = None
        self._controller: Any = None
        self._faults: Any = None
        #: (attr_name, resource) pairs, sorted by attribute name.
        self._resources: List[Tuple[str, Any]] = []
        self._last_t = 0.0
        # Incremental cursors / previous cumulative values.
        self._record_idx = 0
        self._cancel_log_idx = 0
        self._prev: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(
        self,
        app: Any = None,
        driver: Any = None,
        controller: Any = None,
        faults: Any = None,
    ) -> None:
        """Bind the run's components; discovers scrapeable resources."""
        self._app = app
        self._driver = driver
        self._controller = controller
        self._faults = faults
        self._resources = []
        if app is not None:
            for attr in sorted(vars(app)):
                obj = getattr(app, attr)
                if obj is controller:
                    # The app's back-reference to its controller; scraped
                    # separately (its snapshot nests detector/blame dicts).
                    continue
                if callable(getattr(obj, "telemetry_snapshot", None)):
                    self._resources.append((attr, obj))
        self.run.resource_names = [
            getattr(obj, "name", attr) for attr, obj in self._resources
        ]

    def start(self) -> None:
        """Spawn the scrape loop as a simulation process."""
        self.env.process(self._loop())

    def _loop(self):
        interval = self.run.interval
        while True:
            yield self.env.timeout(interval)
            self.scrape()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _counter_delta(self, key: str, total: float) -> float:
        """Delta since the previous scrape of a cumulative value."""
        prev = self._prev.get(key, 0.0)
        self._prev[key] = total
        return total - prev

    def scrape(self) -> ScrapeWindow:
        """Sample every attached layer; returns the new window."""
        env = self.env
        reg = self.run.registry
        now = env.now
        elapsed = now - self._last_t
        values: Dict[str, float] = {}

        # -- sim kernel ------------------------------------------------
        qdepth = float(getattr(env, "queue_depth", 0))
        alive = float(getattr(env, "alive_processes", 0))
        values["event_queue_depth"] = qdepth
        values["processes_alive"] = alive
        reg.gauge("repro_event_queue_depth",
                  "Scheduled events in the kernel heap").set(qdepth)
        reg.gauge("repro_processes_alive",
                  "Live simulated processes").set(alive)
        reg.counter("repro_scrapes_total", "Telemetry scrapes taken").inc()

        # -- workload driver -------------------------------------------
        self._scrape_driver(values, elapsed)

        # -- resources -------------------------------------------------
        for attr, resource in self._resources:
            name = getattr(resource, "name", attr)
            snap = resource.telemetry_snapshot()
            for key in sorted(snap):
                val = float(snap[key])
                if key.endswith("_total"):
                    delta = self._counter_delta(f"res:{name}:{key}", val)
                    if delta > 0:
                        reg.counter(
                            f"repro_resource_{key}",
                            "Per-resource cumulative total",
                            resource=name,
                        ).inc(delta)
                else:
                    reg.gauge(
                        f"repro_resource_{key}",
                        "Per-resource level", resource=name,
                    ).set(val)
                if key in ("utilization", "queue_depth"):
                    short = "util" if key == "utilization" else "qdepth"
                    values[f"{short}:{name}"] = val

        # -- controller (detector / estimator / cancellation) ----------
        self._scrape_controller(values)

        # -- fault injector --------------------------------------------
        self._scrape_faults(values)

        # -- health ----------------------------------------------------
        window = ScrapeWindow(now, values)
        cancelled_ops = self._window_cancelled_ops()
        window.health = self.monitor.evaluate(now, values, cancelled_ops)
        self.run.health_events.extend(window.health)
        self._emit_health(window)
        self.run.windows.append(window)
        self._last_t = now
        if self.live_sink is not None:
            self.live_sink(self.run, window)
        return window

    def _scrape_driver(self, values: Dict[str, float], elapsed: float) -> None:
        driver = self._driver
        if driver is None:
            return
        reg = self.run.registry
        collector = driver.collector
        values["inflight"] = float(driver.inflight)
        reg.gauge("repro_inflight_requests",
                  "Requests currently in flight").set(driver.inflight)

        offered_total = float(collector.offered)
        values["offered_window"] = self._counter_delta(
            "driver:offered", offered_total
        )
        for op in sorted(collector.offered_by_op):
            total = float(collector.offered_by_op[op])
            delta = self._counter_delta(f"driver:offered:{op}", total)
            if delta > 0:
                reg.counter(
                    "repro_offered_total",
                    "Requests offered (including rejected)", op=op,
                ).inc(delta)

        # Incremental pass over new terminal records.
        records = collector.records
        latencies: List[float] = []
        good = 0
        by_status = {status: 0 for status in RequestStatus}
        hist = reg.histogram(
            "repro_request_latency_seconds",
            "End-to-end latency of completed requests",
        )
        sketch = reg.sketch(
            "repro_request_latency",
            "Streaming latency quantiles (completed requests)",
        )
        for record in records[self._record_idx:]:
            by_status[record.status] += 1
            reg.counter(
                "repro_requests_total", "Terminal requests",
                op=record.op_name, status=record.status.value,
            ).inc()
            if record.completed:
                latency = record.latency
                latencies.append(latency)
                hist.observe(latency)
                sketch.observe(latency)
                if self.slo is None or latency <= self.slo:
                    good += 1
        self._record_idx = len(records)

        span = elapsed if elapsed > 0 else self.run.interval
        values["completed_window"] = float(
            by_status[RequestStatus.COMPLETED]
        )
        values["cancelled_window"] = float(
            by_status[RequestStatus.CANCELLED]
        )
        values["dropped_window"] = float(by_status[RequestStatus.DROPPED])
        values["timed_out_window"] = float(
            by_status[RequestStatus.TIMED_OUT]
        )
        values["throughput"] = by_status[RequestStatus.COMPLETED] / span
        values["goodput"] = good / span
        values["p99"] = percentile(latencies, 99)

    def _scrape_controller(self, values: Dict[str, float]) -> None:
        controller = self._controller
        if controller is None:
            return
        snapshot = getattr(controller, "telemetry_snapshot", None)
        if snapshot is None:
            return
        reg = self.run.registry
        snap = snapshot()
        cancels = float(snap.get("cancels_issued", 0))
        values["cancels_total"] = cancels
        values["cancels_window"] = self._counter_delta(
            "ctl:cancels", cancels
        )
        delta = values["cancels_window"]
        if delta > 0:
            reg.counter(
                "repro_cancels_issued_total",
                "Cancel decisions issued by the controller",
            ).inc(delta)

        detector = snap.get("detector")
        if detector is not None:
            overloaded = float(detector.get("overloaded", 0.0))
            tail = float(detector.get("tail_latency", float("nan")))
            values["detector_overloaded"] = overloaded
            values["detector_tail_latency"] = tail
            reg.gauge("repro_detector_overloaded",
                      "Overload trigger state (0/1)").set(overloaded)
            if tail == tail:
                reg.gauge(
                    "repro_detector_tail_latency_seconds",
                    "Detector window tail latency",
                ).set(tail)
            reg.gauge(
                "repro_detector_window_throughput",
                "Detector window throughput",
            ).set(float(detector.get("throughput", 0.0)))
            reg.gauge(
                "repro_detector_window_samples",
                "Completions in the detector window",
            ).set(float(detector.get("samples", 0.0)))

        signals = snap.get("signals")
        if signals is not None:
            for outcome in ("delivered", "dropped", "delayed"):
                total = float(signals.get(outcome, 0))
                if outcome == "dropped":
                    values["signals_dropped_total"] = total
                delta = self._counter_delta(f"ctl:sig:{outcome}", total)
                if delta > 0:
                    reg.counter(
                        "repro_cancel_signals_total",
                        "Cancellation signals by outcome",
                        outcome=outcome,
                    ).inc(delta)

        blame = snap.get("blame")
        if blame is not None:
            for resource in sorted(blame):
                score = float(blame[resource])
                values[f"blame:{resource}"] = score
                reg.gauge(
                    "repro_blame_score",
                    "Estimator contention blame (normalized)",
                    resource=resource,
                ).set(score)

    def _scrape_faults(self, values: Dict[str, float]) -> None:
        faults = self._faults
        if faults is None:
            return
        reg = self.run.registry
        active = float(getattr(faults, "active_faults", 0))
        values["faults_active"] = active
        reg.gauge("repro_faults_active",
                  "Faults currently applied").set(active)
        events = getattr(faults, "events", [])
        phases: Dict[str, int] = {}
        for event in events:
            phase = getattr(event, "phase", "unknown")
            phases[phase] = phases.get(phase, 0) + 1
        for phase in sorted(phases):
            delta = self._counter_delta(
                f"faults:{phase}", float(phases[phase])
            )
            if delta > 0:
                reg.counter(
                    "repro_fault_events_total",
                    "Fault injector events by phase", phase=phase,
                ).inc(delta)

    # ------------------------------------------------------------------
    # Health plumbing
    # ------------------------------------------------------------------
    def _window_cancelled_ops(self) -> List[str]:
        """Ops of cancellations logged since the previous scrape."""
        cancellation = getattr(self._controller, "cancellation", None)
        log = getattr(cancellation, "log", None)
        if not log:
            return []
        new = log[self._cancel_log_idx:]
        self._cancel_log_idx = len(log)
        return [
            e.op_name for e in new if getattr(e, "delivered", True)
        ]

    def _emit_health(self, window: ScrapeWindow) -> None:
        """Mirror fired health events into the trace and decision log."""
        if not window.health:
            return
        tracer = self.env.tracer
        log = getattr(self._controller, "decision_log", None)
        for event in window.health:
            if tracer.enabled:
                tracer.instant(
                    event.time,
                    "health",
                    f"{event.severity} {event.rule}",
                    "telemetry:health",
                    **event.to_dict(),
                )
            if log is not None:
                from ..core.decision_log import DecisionKind

                log.record(
                    event.time,
                    DecisionKind.HEALTH,
                    event.message,
                    rule=event.rule,
                    severity=event.severity,
                )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, now: float) -> None:
        """Flush a trailing partial window; collect audits and faults."""
        if now > self._last_t:
            # The run ended mid-interval: take one last (partial) scrape
            # so the series always covers [0, duration].
            self.scrape()
        self.run.duration = now
        controller = self._controller
        decision_log = getattr(controller, "decision_log", None)
        audits = getattr(decision_log, "audits", None)
        if audits:
            self.run.audits = [audit.to_payload() for audit in audits]
        if self._faults is not None:
            self.run.fault_events = [
                event.to_dict() for event in self._faults.events
            ]
