"""Live telemetry: metrics registry, scraping, health monitors, reports.

The telemetry layer gives every simulation run Prometheus-style,
scrape-based observability *while it executes* -- the online complement
to the post-hoc :mod:`repro.obs` traces:

* :mod:`~repro.telemetry.registry` -- deterministic counters / gauges /
  log-bucket histograms / streaming quantile sketches,
* :mod:`~repro.telemetry.scrape` -- a sim-time :class:`Scraper` sampling
  the kernel, every resource, the driver, the controller, and the fault
  injector each interval,
* :mod:`~repro.telemetry.health` -- declarative SLO/invariant rules
  producing a typed :class:`HealthEvent` stream,
* :mod:`~repro.telemetry.export` / :mod:`~repro.telemetry.report` --
  Prometheus text, JSONL series, and self-contained HTML reports.

Usage mirrors :func:`repro.obs.tracing`::

    from repro.telemetry import TelemetrySession, telemetry_session

    session = TelemetrySession(interval=0.25)
    with telemetry_session(session):
        run_experiments(["fig2"])      # every run gets scraped
    write_html_report(session.runs, "report.html")

Null fast path: with no active session, :func:`get_active_telemetry`
returns :data:`NULL_TELEMETRY` whose ``enabled`` is a class attribute
``False`` -- the harness pays one attribute load and one branch, exactly
like ``NullTracer``.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator, List, Optional, Sequence

from .export import (
    jsonl_series,
    prometheus_text,
    write_jsonl,
    write_prometheus,
)
from .health import (
    HealthEvent,
    HealthMonitor,
    HealthRule,
    default_health_rules,
    slo_of,
    worst_severity,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    log_buckets,
)
from .report import render_html_report, write_html_report
from .scrape import RunTelemetry, Scraper, ScrapeWindow, live_line

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "log_buckets",
    "HealthEvent",
    "HealthMonitor",
    "HealthRule",
    "default_health_rules",
    "slo_of",
    "worst_severity",
    "RunTelemetry",
    "Scraper",
    "ScrapeWindow",
    "live_line",
    "TelemetrySession",
    "NULL_TELEMETRY",
    "telemetry_session",
    "get_active_telemetry",
    "set_active_telemetry",
    "prometheus_text",
    "jsonl_series",
    "write_prometheus",
    "write_jsonl",
    "render_html_report",
    "write_html_report",
]


class TelemetrySession:
    """One scraping session covering one or more simulation runs.

    Args:
        interval: simulated seconds between scrapes.
        max_runs: stop attaching after this many runs (None = all).
        health_rules: explicit rule list; None derives
            :func:`default_health_rules` per run from the controller's
            SLO and ``expected_culprits``.
        expected_culprits: op names the wrong-culprit rule treats as
            legitimate cancellation targets.
        live_sink: callable ``(run, window)`` invoked after every scrape
            (the ``--live`` TTY dashboard).
    """

    enabled = True

    def __init__(
        self,
        interval: float = 0.25,
        max_runs: Optional[int] = None,
        health_rules: Optional[Sequence[HealthRule]] = None,
        expected_culprits: Optional[Sequence[str]] = None,
        live_sink: Optional[Callable[[RunTelemetry, ScrapeWindow], None]]
        = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("scrape interval must be positive")
        self.interval = interval
        self.max_runs = max_runs
        self.health_rules = (
            list(health_rules) if health_rules is not None else None
        )
        self.expected_culprits = (
            tuple(expected_culprits) if expected_culprits else None
        )
        self.live_sink = live_sink
        self.runs: List[RunTelemetry] = []

    @property
    def accepting_runs(self) -> bool:
        """Whether a new harness run should attach to this session."""
        return self.max_runs is None or len(self.runs) < self.max_runs

    def new_run(self, label: str) -> RunTelemetry:
        """Start telemetry for one run; returns its recorder."""
        run = RunTelemetry(label=label, interval=self.interval)
        self.runs.append(run)
        return run

    def rules_for(self, controller: Any) -> List[HealthRule]:
        """The rule set a run under ``controller`` is monitored with."""
        if self.health_rules is not None:
            return list(self.health_rules)
        return default_health_rules(
            slo=slo_of(controller),
            expected_culprits=self.expected_culprits,
        )


class NullTelemetrySession:
    """Disabled session: the harness checks ``enabled`` and moves on."""

    enabled = False
    accepting_runs = False
    interval = 0.0
    runs: List[RunTelemetry] = []

    def new_run(self, label: str) -> None:  # pragma: no cover - never hit
        raise RuntimeError("null telemetry session cannot record runs")

    def rules_for(self, controller: Any) -> List[HealthRule]:
        return []


NULL_TELEMETRY = NullTelemetrySession()

_ACTIVE: Any = NULL_TELEMETRY


def get_active_telemetry():
    """The telemetry session harness runs should attach to."""
    return _ACTIVE


def set_active_telemetry(session) -> None:
    """Install ``session`` as active (None resets to the null session)."""
    global _ACTIVE
    _ACTIVE = session if session is not None else NULL_TELEMETRY


@contextlib.contextmanager
def telemetry_session(
    session: TelemetrySession,
) -> Iterator[TelemetrySession]:
    """Context manager scoping an active telemetry session::

        session = TelemetrySession(interval=0.5)
        with telemetry_session(session):
            run_experiments(["fig2"])
        write_prometheus(session.runs, "metrics.prom")
    """
    previous = get_active_telemetry()
    set_active_telemetry(session)
    try:
        yield session
    finally:
        set_active_telemetry(previous)
