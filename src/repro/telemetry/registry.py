"""Deterministic metrics registry: counters, gauges, histograms, sketches.

A Prometheus-style registry adapted to the simulation's determinism
rules: every sample is keyed on *simulated* time by the scraper, metric
identity is (name, sorted label pairs), and nothing here touches the
wall clock, ``id()``, or unordered iteration -- so the same seed
produces byte-identical exports under any ``PYTHONHASHSEED``.

The four instrument kinds mirror what the production controllers the
paper compares against expose (Breakwater's per-window congestion
signals, SEDA's stage counters):

* :class:`Counter` -- monotone totals (requests completed, signals sent),
* :class:`Gauge` -- point-in-time levels (queue depth, utilization),
* :class:`Histogram` -- fixed **log-spaced** latency buckets
  (:func:`log_buckets`), cumulative on export like Prometheus ``le``,
* :class:`QuantileSketch` -- a bounded streaming quantile summary with
  deterministic pairwise compaction (no randomness, no timestamps).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Canonical label encoding: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def log_buckets(
    lo: float = 1e-4, hi: float = 10.0, per_decade: int = 3
) -> Tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds covering ``[lo, hi]``.

    Bounds are ``lo * 10**(k/per_decade)`` computed from integer
    exponents, so the same arguments always yield the same floats.
    """
    if lo <= 0 or hi <= lo or per_decade < 1:
        raise ValueError("need 0 < lo < hi and per_decade >= 1")
    bounds: List[float] = []
    k = 0
    while True:
        bound = lo * 10.0 ** (k / per_decade)
        bounds.append(bound)
        if bound >= hi:
            break
        k += 1
    return tuple(bounds)


#: Default latency buckets: 100us .. 10s, 3 per decade.
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-4, 10.0, 3)


class Counter:
    """Monotone total.  ``inc()`` only; decreasing is a bug."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Point-in-time level; ``set()`` overwrites."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram (upper bounds ascending, +Inf implicit).

    ``counts[i]`` holds observations ``<= buckets[i]`` minus the lower
    buckets (per-bucket, *not* cumulative; export layers cumulate like
    Prometheus ``le``).  The overflow bucket is ``counts[-1]``.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(buckets if buckets is not None
                       else DEFAULT_LATENCY_BUCKETS)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly ascending")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


class QuantileSketch:
    """Bounded streaming quantile summary with deterministic compaction.

    Keeps at most ``cap`` weighted samples.  On overflow the sorted
    sample list is compacted pairwise -- adjacent samples merge into the
    *upper* value with summed weight, which biases tail quantiles
    conservatively (never under-reports p99).  Compaction depends only
    on the observation sequence, so identical runs produce identical
    sketches.
    """

    kind = "summary"
    __slots__ = ("cap", "_items", "sum", "count")

    def __init__(self, cap: int = 512) -> None:
        if cap < 8:
            raise ValueError("sketch cap must be >= 8")
        self.cap = cap
        #: (value, weight) samples, unsorted between compactions.
        self._items: List[Tuple[float, int]] = []
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self._items.append((float(value), 1))
        self.sum += value
        self.count += 1
        if len(self._items) > self.cap:
            self._compact()

    def _compact(self) -> None:
        items = sorted(self._items)
        merged: List[Tuple[float, int]] = []
        for i in range(0, len(items) - 1, 2):
            low, high = items[i], items[i + 1]
            merged.append((high[0], low[1] + high[1]))
        if len(items) % 2:
            merged.append(items[-1])
        self._items = merged

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 <= q <= 1``); nan when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._items:
            return float("nan")
        items = sorted(self._items)
        total = sum(w for _, w in items)
        target = q * total
        running = 0.0
        for value, weight in items:
            running += weight
            if running >= target:
                return value
        return items[-1][0]


class MetricsRegistry:
    """Named metric families with labelled children.

    ``counter()``/``gauge()``/``histogram()``/``sketch()`` get-or-create
    the child for a label set; re-declaring a name with a different kind
    raises.  :meth:`collect` iterates families sorted by name and
    children sorted by label key, so exports are deterministic.
    """

    def __init__(self) -> None:
        #: name -> (kind, help, {label_key: metric})
        self._families: Dict[str, Tuple[str, str, Dict[LabelKey, object]]] = {}

    def _family(self, name: str, kind: str, help_text: str):
        family = self._families.get(name)
        if family is None:
            family = (kind, help_text, {})
            self._families[name] = family
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family[0]}, "
                f"not {kind}"
            )
        return family[2]

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        children = self._family(name, "counter", help_text)
        key = _label_key(labels)
        child = children.get(key)
        if child is None:
            child = children[key] = Counter()
        return child  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        children = self._family(name, "gauge", help_text)
        key = _label_key(labels)
        child = children.get(key)
        if child is None:
            child = children[key] = Gauge()
        return child  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        children = self._family(name, "histogram", help_text)
        key = _label_key(labels)
        child = children.get(key)
        if child is None:
            child = children[key] = Histogram(buckets)
        return child  # type: ignore[return-value]

    def sketch(
        self, name: str, help_text: str = "", cap: int = 512, **labels: str
    ) -> QuantileSketch:
        children = self._family(name, "summary", help_text)
        key = _label_key(labels)
        child = children.get(key)
        if child is None:
            child = children[key] = QuantileSketch(cap)
        return child  # type: ignore[return-value]

    def collect(
        self,
    ) -> Iterator[Tuple[str, str, str, List[Tuple[LabelKey, object]]]]:
        """Yield (name, kind, help, [(label_key, metric), ...]) sorted."""
        for name in sorted(self._families):
            kind, help_text, children = self._families[name]
            yield name, kind, help_text, sorted(
                children.items(), key=lambda item: item[0]
            )
