"""Figure 13: effectiveness of the multi-objective cancellation policy.

Ablation over the 16 cases: the full multi-objective policy versus (a)
the greedy heuristic (max gain on the single most contended resource)
and (b) multi-objective over *current* usage instead of predicted future
gain.  Throughput is normalized by the non-overloaded baseline.

Most reproduced cases have a single dominant culprit, so the three
policies coincide there (a reproduction finding: iterative cancellation
makes single-pick optimality second-order).  A synthetic *late-culprit*
scenario is therefore included, engineering the §3.4 situation directly:
a nearly finished report query pinning many pages next to a just-started
dump -- current-usage cancels the wrong one and pays a second
cancellation.
"""

from __future__ import annotations

from typing import List, Optional

from ..apps.base import Operation
from ..apps.mysql import MySQL, MySQLConfig, light_mix
from ..campaign import RunSpec, execute
from ..cases import paper_case_ids
from ..core.atropos import Atropos
from ..core.config import AtroposConfig
from ..workloads.spec import OpenLoopSource, ScheduledOp, Workload
from .case_family import _policy_class, case_spec
from .harness import SimBuild, normalize, register_sim
from .tables import ExperimentResult, ExperimentTable

#: Display label -> stable policy id used in RunSpec params.
POLICIES = {
    "Multi-Objective": "multi_objective",
    "Heuristic": "heuristic",
    "Current Usage": "current_usage",
}


def run(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 13's per-case policy-ablation bars."""
    case_ids = case_ids if case_ids is not None else paper_case_ids()
    tput = ExperimentTable(
        "Fig 13: normalized throughput per policy",
        ["case"] + list(POLICIES),
    )
    p99 = ExperimentTable(
        "Fig 13 extras: normalized p99 per policy",
        ["case"] + list(POLICIES),
    )
    specs = []
    for cid in case_ids:
        specs.append(case_spec("fig13", cid, seed, include_culprit=False))
        for policy_id in POLICIES.values():
            specs.append(case_spec("fig13", cid, seed, policy=policy_id))
    outcomes = iter(execute(specs))
    for cid in case_ids:
        baseline = next(outcomes)
        tput_row = [cid]
        p99_row = [cid]
        for _ in POLICIES:
            outcome = next(outcomes)
            tput_row.append(
                normalize(outcome.throughput, baseline.throughput)
            )
            p99_row.append(
                normalize(outcome.p99_latency, baseline.p99_latency)
            )
        tput.add_row(*tput_row)
        p99.add_row(*p99_row)
    summary = ExperimentTable(
        "Fig 13 summary: policy averages",
        ["policy", "avg_norm_throughput", "avg_norm_p99"],
    )
    for name in POLICIES:
        tputs = tput.column(name)
        p99s = p99.column(name)
        summary.add_row(name, sum(tputs) / len(tputs), sum(p99s) / len(p99s))
    late = late_culprit_scenario(seed=seed)
    return ExperimentResult(
        experiment_id="fig13",
        description="Comparison of cancellation policies",
        tables=[tput, p99, summary, late],
    )


def _late_culprit_workload(app, rng):
    """The §3.4 bait: an almost-done report query next to a fresh dump.

    The report query pins 800 pages in a pool with enough headroom to
    coexist with the hot set; the dump arrives when the report is ~85%
    done.  At detection time the report *holds* more pages, but the dump
    has nearly all of its demand ahead.  Current-usage cancels the report
    (wasted work; the dump keeps thrashing until a second cancellation);
    future-gain targets the dump directly.
    """
    return Workload(
        [
            OpenLoopSource(rate=300.0, mix=light_mix(rng)),
            ScheduledOp(
                at=0.5,
                factory=lambda: Operation(
                    "report_query", {"pages": 1200, "duration": 5.5}
                ),
                client_id="analytics",
            ),
            ScheduledOp(
                at=5.0,
                factory=lambda: Operation("dump", {}),
                client_id="reporting",
            ),
        ]
    )


@register_sim("fig13.late")
def _build_late(params):
    """The late-culprit scenario under one cancellation policy."""
    policy_cls = _policy_class(params["policy"])
    # Pool sized so hot set + report fit together: contention appears
    # only when the dump arrives.
    config = MySQLConfig(buffer_pool_pages=3200)

    def controller(env):
        atropos_config = AtroposConfig(slo_latency=0.02)
        return Atropos(
            env,
            atropos_config,
            policy=policy_cls(min_age=atropos_config.min_cancel_age),
        )

    return SimBuild(
        lambda env, ctl, rng: MySQL(env, ctl, rng, config=config),
        _late_culprit_workload,
        controller_factory=controller,
        duration=12.0,
        warmup=2.0,
    )


def late_culprit_scenario(seed: int = 0) -> ExperimentTable:
    """Run the late-culprit scenario under each policy."""
    table = ExperimentTable(
        "Fig 13 extras: late-culprit scenario (nearly-done report vs fresh "
        "dump)",
        ["policy", "p99_latency", "cancels", "first_cancelled_op"],
    )
    outcomes = execute(
        [
            RunSpec("fig13", "fig13.late", {"policy": policy_id}, seed=seed)
            for policy_id in POLICIES.values()
        ]
    )
    for name, outcome in zip(POLICIES, outcomes):
        table.add_row(
            name,
            outcome.p99_latency,
            outcome.cancels,
            outcome.first_cancelled_op or "-",
        )
    return table
