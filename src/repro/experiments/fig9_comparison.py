"""Figure 9: ATROPOS vs four state-of-the-art systems on all cases.

For every reproduced case, run ATROPOS, Protego, pBox, DARC, and PARTIES
and report throughput and 99th-percentile latency normalized against the
application's non-overloaded baseline.  The paper's headline: ATROPOS
averages 96% normalized throughput and 1.16x normalized p99; the others
land far behind on at least one metric.
"""

from __future__ import annotations

from typing import List, Optional

from ..baselines import controller_factory
from ..cases import all_case_ids, get_case
from .harness import normalize
from .tables import ExperimentResult, ExperimentTable

SYSTEMS = ["atropos", "protego", "pbox", "darc", "parties"]


def run(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
    systems: Optional[List[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 9's per-case normalized tput/p99 bars."""
    # The paper's figure plots c1-c15; we include c16 as well.
    case_ids = case_ids if case_ids is not None else all_case_ids()
    systems = systems if systems is not None else list(SYSTEMS)
    tput = ExperimentTable(
        "Fig 9a: normalized throughput per case", ["case"] + systems
    )
    p99 = ExperimentTable(
        "Fig 9b: normalized p99 latency per case", ["case"] + systems
    )
    for cid in case_ids:
        case = get_case(cid)
        baseline = case.run_baseline(seed=seed)
        tput_row = [cid]
        p99_row = [cid]
        for system in systems:
            result = case.run(
                controller_factory=controller_factory(
                    system,
                    case.slo_latency,
                    atropos_overrides=case.atropos_overrides,
                ),
                seed=seed,
            )
            tput_row.append(normalize(result.throughput, baseline.throughput))
            p99_row.append(normalize(result.p99_latency, baseline.p99_latency))
        tput.add_row(*tput_row)
        p99.add_row(*p99_row)

    # Per-system averages (the numbers quoted in §5.2).
    avg = ExperimentTable(
        "Fig 9 summary: per-system averages",
        ["system", "avg_norm_throughput", "avg_norm_p99"],
    )
    for system in systems:
        tputs = tput.column(system)
        p99s = p99.column(system)
        avg.add_row(system, sum(tputs) / len(tputs), sum(p99s) / len(p99s))

    return ExperimentResult(
        experiment_id="fig9",
        description="Comparison with state-of-the-art systems on all cases",
        tables=[tput, p99, avg],
    )
