"""Figure 9: ATROPOS vs four state-of-the-art systems on all cases.

For every reproduced case, run ATROPOS, Protego, pBox, DARC, and PARTIES
and report throughput and 99th-percentile latency normalized against the
application's non-overloaded baseline.  The paper's headline: ATROPOS
averages 96% normalized throughput and 1.16x normalized p99; the others
land far behind on at least one metric.
"""

from __future__ import annotations

from typing import List, Optional

from ..campaign import execute
from ..cases import paper_case_ids
from .case_family import case_spec
from .harness import normalize
from .tables import ExperimentResult, ExperimentTable

SYSTEMS = ["atropos", "protego", "pbox", "darc", "parties"]


def run(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
    systems: Optional[List[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 9's per-case normalized tput/p99 bars."""
    # The paper's figure plots c1-c15; we include c16 as well.
    case_ids = case_ids if case_ids is not None else paper_case_ids()
    systems = systems if systems is not None else list(SYSTEMS)
    tput = ExperimentTable(
        "Fig 9a: normalized throughput per case", ["case"] + systems
    )
    p99 = ExperimentTable(
        "Fig 9b: normalized p99 latency per case", ["case"] + systems
    )
    specs = []
    for cid in case_ids:
        specs.append(case_spec("fig9", cid, seed, include_culprit=False))
        for system in systems:
            specs.append(case_spec("fig9", cid, seed, system=system))
    outcomes = iter(execute(specs))
    for cid in case_ids:
        baseline = next(outcomes)
        tput_row = [cid]
        p99_row = [cid]
        for _ in systems:
            outcome = next(outcomes)
            tput_row.append(
                normalize(outcome.throughput, baseline.throughput)
            )
            p99_row.append(
                normalize(outcome.p99_latency, baseline.p99_latency)
            )
        tput.add_row(*tput_row)
        p99.add_row(*p99_row)

    # Per-system averages (the numbers quoted in §5.2).
    avg = ExperimentTable(
        "Fig 9 summary: per-system averages",
        ["system", "avg_norm_throughput", "avg_norm_p99"],
    )
    for system in systems:
        tputs = tput.column(system)
        p99s = p99.column(system)
        avg.add_row(system, sum(tputs) / len(tputs), sum(p99s) / len(p99s))

    return ExperimentResult(
        experiment_id="fig9",
        description="Comparison with state-of-the-art systems on all cases",
        tables=[tput, p99, avg],
    )
