"""Figure 2: impact of dump queries on buffer pool contention.

The paper's setup: MySQL with a 512 MB buffer pool over 2 GB of data,
lightweight point-select/row-update traffic, and heavy dump queries mixed
in at ratios {0, 1:100K, 1:10K}.  Even the tiny ratios collapse maximum
throughput and pull the latency knee to much lower loads.

Scaling note: our simulated runs are ~10 s at hundreds of requests/s
(the paper's are minutes at tens of kQPS), so the dump *ratios* are
scaled up (to 1:5000 and 1:1000) to deliver the same dump arrival rate
relative to dump duration; the reported series keep the paper's labels.
"""

from __future__ import annotations

from typing import List, Optional

from ..apps.base import Operation
from ..apps.mysql import MySQL, MySQLConfig, light_mix
from ..campaign import RunSpec, execute
from ..workloads.spec import MixEntry, OpenLoopSource, Workload
from .harness import SimBuild, register_sim
from .tables import ExperimentResult, ExperimentTable

#: (series label from the paper, scaled dump weight in the mix).
SCENARIOS = [
    ("No dump", 0.0),
    ("0.001% dump", 1.0 / 5000.0),
    ("0.01% dump", 1.0 / 1000.0),
]

QUICK_LOADS = [200.0, 500.0, 800.0, 1100.0, 1400.0, 1700.0]
FULL_LOADS = [100.0, 200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0,
              1400.0, 1600.0, 1800.0, 2000.0]


def _mysql(env, controller, rng):
    return MySQL(env, controller, rng, config=MySQLConfig())


def _workload(rate: float, dump_weight: float):
    def build(app, rng):
        mix = light_mix(rng)
        if dump_weight > 0:
            total_light = sum(m.weight for m in mix)
            mix.append(
                MixEntry(
                    factory=lambda: Operation("dump", {}),
                    weight=total_light * dump_weight / (1.0 - dump_weight),
                )
            )
        return Workload([OpenLoopSource(rate=rate, mix=mix)])

    return build


@register_sim("fig2.point")
def _build_point(params):
    return SimBuild(
        _mysql, _workload(params["load"], params["dump_weight"])
    )


def run(
    quick: bool = True,
    duration: float = 10.0,
    warmup: float = 2.0,
    seed: int = 0,
    loads: Optional[List[float]] = None,
) -> ExperimentResult:
    """Regenerate Figure 2's throughput and p99 series."""
    loads = loads if loads is not None else (QUICK_LOADS if quick else FULL_LOADS)
    tput = ExperimentTable(
        "Fig 2 (top): throughput (req/s) vs offered load",
        ["offered_load"] + [label for label, _ in SCENARIOS],
    )
    p99 = ExperimentTable(
        "Fig 2 (bottom): p99 latency (s) vs offered load",
        ["offered_load"] + [label for label, _ in SCENARIOS],
    )
    outcomes = iter(
        execute(
            [
                RunSpec(
                    "fig2",
                    "fig2.point",
                    {"load": load, "dump_weight": weight},
                    seed=seed,
                    duration=duration,
                    warmup=warmup,
                )
                for load in loads
                for _, weight in SCENARIOS
            ]
        )
    )
    for load in loads:
        tput_row = [load]
        p99_row = [load]
        for _ in SCENARIOS:
            outcome = next(outcomes)
            tput_row.append(outcome.throughput)
            p99_row.append(outcome.p99_latency)
        tput.add_row(*tput_row)
        p99.add_row(*p99_row)
    return ExperimentResult(
        experiment_id="fig2",
        description="Impact of dump queries on buffer pool contention",
        tables=[tput, p99],
    )
