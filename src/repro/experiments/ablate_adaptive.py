"""Fixed vs adaptive thresholds across the reproduced overload cases.

Not a paper figure: an ablation of this repo's health-driven
:class:`~repro.core.adaptive.AdaptiveThresholdPolicy` (the first real
:class:`~repro.core.pipeline.AdaptationPolicy`).  For every case the
sweep runs the non-overloaded baseline, ATROPOS with fixed thresholds
(the paper's configuration), and ATROPOS with adaptive thresholds, and
reports:

* normalized p99 under fixed vs adaptive thresholds;
* cancellations issued by each, plus the number of threshold moves the
  adaptive policy made (``adaptations``; 0 means the health rules never
  fired and the run is identical to fixed).

Both variants share the per-case baseline run (and its cache entry);
fixed and adaptive runs never share an entry (``RunSpec.adaptive`` is
part of the cache identity).
"""

from __future__ import annotations

from typing import List, Optional

from ..campaign import execute
from .case_family import case_spec
from .tables import ExperimentResult, ExperimentTable

#: Quick-mode subset: convoy, stream, and thrash cases where the
#: detector works hardest (and flapping/p99 rules have signal to react
#: to).
QUICK_CASES = ["c1", "c2", "c5", "c12"]


def _all_case_ids() -> List[str]:
    from ..cases import all_case_ids

    return list(all_case_ids())


def run(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
) -> ExperimentResult:
    """Run the fixed-vs-adaptive threshold ablation."""
    if case_ids is None:
        case_ids = list(QUICK_CASES) if quick else _all_case_ids()
    specs = []
    for cid in case_ids:
        specs.append(
            case_spec("ablate-adaptive", cid, seed, include_culprit=False)
        )
        specs.append(
            case_spec("ablate-adaptive", cid, seed, atropos_overrides={})
        )
        specs.append(
            case_spec(
                "ablate-adaptive", cid, seed,
                atropos_overrides={}, adaptive=True,
            )
        )
    p99 = ExperimentTable(
        "Adaptive thresholds: normalized p99 (fixed vs adaptive)",
        ["case", "fixed", "adaptive"],
    )
    actions = ExperimentTable(
        "Adaptive thresholds: cancellations and threshold moves",
        ["case", "cancels_fixed", "cancels_adaptive", "adaptations"],
    )
    outcomes = iter(execute(specs))
    for cid in case_ids:
        baseline = next(outcomes)
        fixed = next(outcomes)
        adaptive = next(outcomes)
        p99.add_row(
            cid,
            fixed.p99_latency / baseline.p99_latency,
            adaptive.p99_latency / baseline.p99_latency,
        )
        actions.add_row(
            cid, fixed.cancels, adaptive.cancels, adaptive.adaptations
        )
    return ExperimentResult(
        experiment_id="ablate-adaptive",
        description=(
            "Health-driven adaptive thresholds vs the paper's fixed "
            "configuration (closing the telemetry loop)"
        ),
        tables=[p99, actions],
    )
