"""Multi-seed robustness sweep (beyond the paper).

The paper reports single measurements per case; a simulation can cheaply
quantify run-to-run variance instead.  This experiment repeats the
Figure 10 headline (Overload vs ATROPOS) across seeds and reports
min/mean/max of the normalized metrics per case.
"""

from __future__ import annotations

from typing import List, Optional

from ..campaign import execute
from .case_family import case_spec
from .harness import normalize
from .tables import ExperimentResult, ExperimentTable

DEFAULT_CASES = ["c1", "c2", "c5", "c8", "c13", "c15"]
DEFAULT_SEEDS = [0, 1, 2]


def run(
    quick: bool = True,
    case_ids: Optional[List[str]] = None,
    seeds: Optional[List[int]] = None,
) -> ExperimentResult:
    """Repeat the headline mitigation result across seeds."""
    case_ids = case_ids if case_ids is not None else list(DEFAULT_CASES)
    seeds = seeds if seeds is not None else list(DEFAULT_SEEDS)
    table = ExperimentTable(
        "Robustness: Atropos normalized metrics across seeds "
        f"(seeds={seeds})",
        [
            "case",
            "tput_min", "tput_mean", "tput_max",
            "p99_min", "p99_mean", "p99_max",
            "drop_max",
        ],
    )
    specs = []
    for cid in case_ids:
        for seed in seeds:
            specs.append(
                case_spec("robustness", cid, seed, include_culprit=False)
            )
            specs.append(case_spec("robustness", cid, seed, system="atropos"))
    outcomes = iter(execute(specs))
    for cid in case_ids:
        tputs, p99s, drops = [], [], []
        for _ in seeds:
            baseline = next(outcomes)
            atropos = next(outcomes)
            tputs.append(normalize(atropos.throughput, baseline.throughput))
            p99s.append(normalize(atropos.p99_latency, baseline.p99_latency))
            drops.append(atropos.drop_rate)
        table.add_row(
            cid,
            min(tputs), sum(tputs) / len(tputs), max(tputs),
            min(p99s), sum(p99s) / len(p99s), max(p99s),
            max(drops),
        )
    return ExperimentResult(
        experiment_id="robustness",
        description="Multi-seed robustness of the headline mitigation",
        tables=[table],
    )
