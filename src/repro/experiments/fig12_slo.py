"""Figure 12: SLO maintenance under different thresholds.

The paper tests SLO goals of 10/20/40/60% tolerated latency increase on
six cases (c1, c2, c10, c11, c14, c15); ATROPOS maintains the goal,
cancelling tasks as needed (§5.3 reports an average increase of 10.2%
under the 20% goal, with c3/c12 as the exceptions).

The SLO is expressed relative to each case's non-overloaded mean latency
(``slo_latency = baseline_mean * (1 + goal)``), and the reported latency
increase covers the *SLO-bearing lightweight operations* -- the ops that
exist in the non-overloaded baseline -- so the culprit's own multi-second
runtime does not pollute the comparison.  Per-op latencies come from the
warm-up-trimmed records, consistent with every other summary metric.
"""

from __future__ import annotations

from typing import List, Optional

from ..campaign import execute
from .case_family import case_spec
from .tables import ExperimentResult, ExperimentTable

FIG12_CASES = ["c1", "c2", "c10", "c11", "c14", "c15"]
SLO_GOALS = [0.10, 0.20, 0.40, 0.60]


def run(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
    goals: Optional[List[float]] = None,
) -> ExperimentResult:
    """Regenerate Figure 12's latency-increase-vs-SLO-goal bars."""
    case_ids = case_ids if case_ids is not None else list(FIG12_CASES)
    goals = goals if goals is not None else list(SLO_GOALS)
    increase = ExperimentTable(
        "Fig 12: mean latency increase (light ops) vs SLO goal",
        ["case"] + [f"goal_{int(g * 100)}%" for g in goals],
    )
    cancels = ExperimentTable(
        "Fig 12 extras: cancellations issued vs SLO goal",
        ["case"] + [f"goal_{int(g * 100)}%" for g in goals],
    )
    # Phase 1: per-case baselines define the light-op set and its mean.
    baselines = execute(
        [
            case_spec("fig12", cid, seed, include_culprit=False)
            for cid in case_ids
        ]
    )
    # Phase 2: the goal sweep, with SLOs derived from phase 1.
    per_case = []
    specs = []
    for cid, baseline in zip(case_ids, baselines):
        light_ops = baseline.completed_ops()
        base_mean = baseline.mean_latency_over(light_ops)
        per_case.append((light_ops, base_mean))
        for goal in goals:
            specs.append(
                case_spec(
                    "fig12",
                    cid,
                    seed,
                    system="atropos",
                    slo_latency=base_mean * (1.0 + goal),
                    atropos_overrides={"slo_slack": 1.0},
                )
            )
    outcomes = iter(execute(specs))
    for cid, (light_ops, base_mean) in zip(case_ids, per_case):
        inc_row = [cid]
        cancel_row = [cid]
        for _ in goals:
            outcome = next(outcomes)
            inc_row.append(
                outcome.mean_latency_over(light_ops) / base_mean - 1.0
            )
            cancel_row.append(outcome.cancels)
        increase.add_row(*inc_row)
        cancels.add_row(*cancel_row)
    return ExperimentResult(
        experiment_id="fig12",
        description="SLO maintenance under different thresholds",
        tables=[increase, cancels],
    )
