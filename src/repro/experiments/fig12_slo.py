"""Figure 12: SLO maintenance under different thresholds.

The paper tests SLO goals of 10/20/40/60% tolerated latency increase on
six cases (c1, c2, c10, c11, c14, c15); ATROPOS maintains the goal,
cancelling tasks as needed (§5.3 reports an average increase of 10.2%
under the 20% goal, with c3/c12 as the exceptions).

The SLO is expressed relative to each case's non-overloaded mean latency
(``slo_latency = baseline_mean * (1 + goal)``), and the reported latency
increase covers the *SLO-bearing lightweight operations* -- the ops that
exist in the non-overloaded baseline -- so the culprit's own multi-second
runtime does not pollute the comparison.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.atropos import Atropos
from ..core.config import AtroposConfig
from ..cases import get_case
from .harness import RunResult
from .tables import ExperimentResult, ExperimentTable

FIG12_CASES = ["c1", "c2", "c10", "c11", "c14", "c15"]
SLO_GOALS = [0.10, 0.20, 0.40, 0.60]


def _atropos_for_goal(baseline_mean: float, goal: float, overrides=None):
    def build(env):
        return Atropos(
            env,
            AtroposConfig(
                slo_latency=baseline_mean * (1.0 + goal),
                slo_slack=1.0,
                **(overrides or {}),
            ),
        )

    return build


def _mean_latency_over(result: RunResult, op_names: Set[str]) -> float:
    latencies = [
        r.latency
        for r in result.collector.records
        if r.completed and r.op_name in op_names
    ]
    return sum(latencies) / len(latencies) if latencies else float("nan")


def run(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
    goals: Optional[List[float]] = None,
) -> ExperimentResult:
    """Regenerate Figure 12's latency-increase-vs-SLO-goal bars."""
    case_ids = case_ids if case_ids is not None else list(FIG12_CASES)
    goals = goals if goals is not None else list(SLO_GOALS)
    increase = ExperimentTable(
        "Fig 12: mean latency increase (light ops) vs SLO goal",
        ["case"] + [f"goal_{int(g * 100)}%" for g in goals],
    )
    cancels = ExperimentTable(
        "Fig 12 extras: cancellations issued vs SLO goal",
        ["case"] + [f"goal_{int(g * 100)}%" for g in goals],
    )
    for cid in case_ids:
        case = get_case(cid)
        baseline = case.run_baseline(seed=seed)
        light_ops = {
            r.op_name for r in baseline.collector.records if r.completed
        }
        base_mean = _mean_latency_over(baseline, light_ops)
        inc_row = [cid]
        cancel_row = [cid]
        for goal in goals:
            result = case.run(
                controller_factory=_atropos_for_goal(
                    base_mean, goal, case.atropos_overrides
                ),
                seed=seed,
            )
            inc_row.append(
                _mean_latency_over(result, light_ops) / base_mean - 1.0
            )
            cancel_row.append(result.controller.cancels_issued)
        increase.add_row(*inc_row)
        cancels.add_row(*cancel_row)
    return ExperimentResult(
        experiment_id="fig12",
        description="SLO maintenance under different thresholds",
        tables=[increase, cancels],
    )
