"""Figure 4: Protego vs pBox vs ATROPOS on the table-lock overload case.

The paper evaluates the three systems on case study 2 (§2.1) across a
load sweep and reports throughput and p99 normalized by the
non-overloaded performance at the same load, plus the drop rate.
Protego bounds latency but drops a lot; pBox cannot release the held
locks; ATROPOS cancels the culprit and keeps all three metrics good.
"""

from __future__ import annotations

from typing import List, Optional

from ..campaign import execute
from .fig3_lock_contention import point_spec
from .harness import normalize
from .tables import ExperimentResult, ExperimentTable

SYSTEMS = ["atropos", "protego", "pbox"]

QUICK_LOADS = [300.0, 600.0, 900.0, 1200.0]
FULL_LOADS = [200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0]

SLO_LATENCY = 0.05


def run(
    quick: bool = True,
    seed: int = 0,
    loads: Optional[List[float]] = None,
) -> ExperimentResult:
    """Regenerate Figure 4's normalized tput / p99 / drop-rate series."""
    loads = loads if loads is not None else (QUICK_LOADS if quick else FULL_LOADS)
    tput = ExperimentTable(
        "Fig 4a: normalized throughput vs offered load",
        ["offered_load"] + SYSTEMS,
    )
    p99 = ExperimentTable(
        "Fig 4b: normalized p99 latency vs offered load",
        ["offered_load"] + SYSTEMS,
    )
    drops = ExperimentTable(
        "Fig 4c: drop rate vs offered load",
        ["offered_load"] + SYSTEMS,
    )
    specs = []
    for load in loads:
        # Non-overloaded baseline at the same load, then each system on
        # the full scans+backup convoy.
        specs.append(point_spec("fig4", load, False, False, seed=seed))
        for system in SYSTEMS:
            specs.append(
                point_spec(
                    "fig4",
                    load,
                    True,
                    True,
                    seed=seed,
                    system=system,
                    slo_latency=SLO_LATENCY,
                )
            )
    outcomes = iter(execute(specs))
    for load in loads:
        baseline = next(outcomes)
        tput_row = [load]
        p99_row = [load]
        drop_row = [load]
        for _ in SYSTEMS:
            outcome = next(outcomes)
            tput_row.append(
                normalize(outcome.throughput, baseline.throughput)
            )
            p99_row.append(
                normalize(outcome.p99_latency, baseline.p99_latency)
            )
            drop_row.append(outcome.drop_rate)
        tput.add_row(*tput_row)
        p99.add_row(*p99_row)
        drops.add_row(*drop_row)
    return ExperimentResult(
        experiment_id="fig4",
        description=(
            "Protego vs pBox vs Atropos on the table-lock overload case"
        ),
        tables=[tput, p99, drops],
    )
