"""Ablation sweeps over ATROPOS's design knobs.

Not figures from the paper, but quantifications of trade-offs the paper
discusses in prose:

* **cancellation cooldown** (§5.3): the interval between consecutive
  cancellations trades aggressiveness against over-cancellation; the
  paper attributes its two SLO misses (c3, c12) to this interval.
* **detection period** (§3.3): how often the Breakwater-style monitor
  runs bounds the reaction time to a forming convoy.
* **re-execution** (§4): disabling the retry path shows what fairness
  costs (cancelled requests would simply be lost).
"""

from __future__ import annotations

from typing import List, Optional

from ..campaign import execute
from .case_family import case_spec
from .tables import ExperimentResult, ExperimentTable

#: Stream cases where repeated cancellations are needed.
COOLDOWN_CASES = ["c2", "c12", "c15"]
COOLDOWNS = [0.05, 0.2, 0.5, 1.0]

DETECTION_CASES = ["c1", "c4", "c13"]
PERIODS = [0.05, 0.1, 0.25, 0.5]


def _specs(experiment, case_ids, seed, override_key, values):
    """Per case: one baseline spec, then one spec per override value."""
    specs = []
    for cid in case_ids:
        specs.append(case_spec(experiment, cid, seed, include_culprit=False))
        for value in values:
            specs.append(
                case_spec(
                    experiment,
                    cid,
                    seed,
                    atropos_overrides={override_key: value},
                )
            )
    return specs


def run_cooldown(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
    cooldowns: Optional[List[float]] = None,
) -> ExperimentResult:
    """Sweep the cancellation cooldown on culprit-stream cases."""
    case_ids = case_ids if case_ids is not None else list(COOLDOWN_CASES)
    cooldowns = cooldowns if cooldowns is not None else list(COOLDOWNS)
    p99 = ExperimentTable(
        "Ablation: normalized p99 vs cancellation cooldown",
        ["case"] + [f"cooldown_{c}s" for c in cooldowns],
    )
    cancels = ExperimentTable(
        "Ablation: cancellations vs cancellation cooldown",
        ["case"] + [f"cooldown_{c}s" for c in cooldowns],
    )
    outcomes = iter(
        execute(
            _specs("ablation-cooldown", case_ids, seed,
                   "cancel_cooldown", cooldowns)
        )
    )
    for cid in case_ids:
        baseline = next(outcomes)
        p99_row = [cid]
        cancel_row = [cid]
        for _ in cooldowns:
            outcome = next(outcomes)
            p99_row.append(outcome.p99_latency / baseline.p99_latency)
            cancel_row.append(outcome.cancels)
        p99.add_row(*p99_row)
        cancels.add_row(*cancel_row)
    return ExperimentResult(
        experiment_id="ablation-cooldown",
        description="Cancellation-cooldown trade-off (§5.3)",
        tables=[p99, cancels],
    )


def run_detection_period(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
    periods: Optional[List[float]] = None,
) -> ExperimentResult:
    """Sweep the detection period on single-culprit convoy cases."""
    case_ids = case_ids if case_ids is not None else list(DETECTION_CASES)
    periods = periods if periods is not None else list(PERIODS)
    p99 = ExperimentTable(
        "Ablation: normalized p99 vs detection period",
        ["case"] + [f"period_{p}s" for p in periods],
    )
    outcomes = iter(
        execute(
            _specs("ablation-detection", case_ids, seed,
                   "detection_period", periods)
        )
    )
    for cid in case_ids:
        baseline = next(outcomes)
        row = [cid]
        for _ in periods:
            outcome = next(outcomes)
            row.append(outcome.p99_latency / baseline.p99_latency)
        p99.add_row(*row)
    return ExperimentResult(
        experiment_id="ablation-detection",
        description="Detection-period reaction-time trade-off (§3.3)",
        tables=[p99],
    )


def run_no_reexecution(
    quick: bool = True, seed: int = 0, case_ids: Optional[List[str]] = None
) -> ExperimentResult:
    """Compare drop rates with and without the re-execution path."""
    case_ids = case_ids if case_ids is not None else ["c2", "c5", "c15"]
    table = ExperimentTable(
        "Ablation: drop rate with vs without re-execution",
        ["case", "with_reexec", "without_reexec"],
    )
    specs = []
    for cid in case_ids:
        specs.append(
            case_spec("ablation-reexec", cid, seed, atropos_overrides={})
        )
        # reexec_slo_multiple=0 exhausts the budget immediately: every
        # cancelled request is dropped.
        specs.append(
            case_spec(
                "ablation-reexec",
                cid,
                seed,
                atropos_overrides={"reexec_slo_multiple": 0.0},
            )
        )
    outcomes = iter(execute(specs))
    for cid in case_ids:
        with_reexec = next(outcomes)
        without = next(outcomes)
        table.add_row(cid, with_reexec.drop_rate, without.drop_rate)
    return ExperimentResult(
        experiment_id="ablation-reexec",
        description="Re-execution fairness mechanism (§4)",
        tables=[table],
    )
