"""Cluster experiment: local-only vs coordinated culprit attribution.

The scenario (see :mod:`repro.cluster`): a fleet of mixed-backend nodes
behind a load balancer serves a lightweight victim mix while two
recurring heavyweights compete for blame -- a *decoy* ``heavy_report``
(the biggest resource holder on whichever single node it lands on) and
the real culprit ``fanout_scan``, fanned out to every node, whose shards
are individually modest but whose fleet-wide damage no per-node view
sees whole.

Three control modes on the identical workload/seed:

========     ==========================================================
none         no cancellation anywhere (uncontrolled baseline)
local        per-node ATROPOS pipelines cancel on their own view; they
             repeatedly blame the decoy (wrong culprit)
coordinated  per-node pipelines run detect-only; the global coordinator
             aggregates candidate evidence across nodes, requires
             cross-node breadth, cancels the fanned-out scan fleet-wide
             and escalates to an LB quarantine
========     ==========================================================

Reported per mode: wrong-culprit rate (cancelled ops outside the
scenario's expected-culprit set), victim p99, goodput, and the
directive/quarantine counts.  The headline: coordinated attribution
drives the wrong-culprit rate to zero while beating the local pipelines
on victim p99 *and* goodput.
"""

from __future__ import annotations

from typing import Optional

from ..cluster import demo_fleet, run_fleet
from ..cluster.spec import MODES
from .tables import ExperimentResult, ExperimentTable


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: Optional[int] = None,
    n_nodes: int = 3,
    policy: str = "least-outstanding",
) -> ExperimentResult:
    """Run the three-mode cluster attribution comparison."""
    duration = 16.0 if quick else 30.0
    warmup = 4.0 if quick else 5.0
    spec = demo_fleet(
        n_nodes=n_nodes,
        seed=seed,
        policy=policy,
        duration=duration,
        warmup=warmup,
    )

    modes = ExperimentTable(
        "Cluster: local-only vs coordinated attribution",
        [
            "mode",
            "wrong_culprit_rate",
            "victim_p99_ms",
            "goodput_per_s",
            "cancels",
            "wrong_cancels",
            "directives",
            "quarantined",
        ],
    )
    verdicts = ExperimentTable(
        "Cluster: coordinator verdicts per mode",
        ["mode", "calm", "no_cross_node_culprit", "cancel", "quarantine"],
    )
    for mode in MODES:
        result = run_fleet(spec.with_mode(mode), jobs=jobs)
        modes.add_row(
            mode,
            result.wrong_culprit_rate,
            result.victim_p99 * 1000.0,
            result.goodput,
            result.cancels_total,
            result.wrong_cancels,
            len(result.directives),
            ",".join(result.quarantined) or "-",
        )
        counts = {verdict: 0 for verdict in
                  ("calm", "no-cross-node-culprit", "cancel", "quarantine")}
        for decision in result.decisions:
            counts[decision["verdict"]] += 1
        verdicts.add_row(
            mode,
            counts["calm"],
            counts["no-cross-node-culprit"],
            counts["cancel"],
            counts["quarantine"],
        )

    return ExperimentResult(
        experiment_id="cluster",
        description=(
            "Cross-node culprit attribution: per-node pipelines blame the "
            "single-node decoy; the coordinator's breadth test catches the "
            "fanned-out scan"
        ),
        tables=[modes, verdicts],
    )
