"""Cluster experiment: local-only vs coordinated culprit attribution.

The scenario (see :mod:`repro.cluster`): a fleet of mixed-backend nodes
behind a load balancer serves a lightweight victim mix while two
recurring heavyweights compete for blame -- a *decoy* ``heavy_report``
(the biggest resource holder on whichever single node it lands on) and
the real culprit ``fanout_scan``, fanned out to every node, whose shards
are individually modest but whose fleet-wide damage no per-node view
sees whole.

Three control modes on the identical workload/seed:

========     ==========================================================
none         no cancellation anywhere (uncontrolled baseline)
local        per-node ATROPOS pipelines cancel on their own view; they
             repeatedly blame the decoy (wrong culprit)
coordinated  per-node pipelines run detect-only; the global coordinator
             aggregates candidate evidence across nodes, requires
             cross-node breadth, cancels the fanned-out scan fleet-wide
             and escalates to an LB quarantine
========     ==========================================================

Reported per mode: wrong-culprit rate (cancelled ops outside the
scenario's expected-culprit set), victim p99, goodput, and the
directive/quarantine counts.  The headline: coordinated attribution
drives the wrong-culprit rate to zero while beating the local pipelines
on victim p99 *and* goodput.

Fleet runs are also available as the ``cluster`` campaign family (a
custom :class:`~repro.experiments.harness.SimBuild` runner like the
``dag`` family), so ``repro regress`` can snapshot and drift-check the
fleet digest/scalars through the content-addressed cache.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..cluster import demo_fleet, run_fleet
from ..cluster.spec import MODES
from ..sim.metrics import Summary
from .harness import SimBuild, register_sim
from .tables import ExperimentResult, ExperimentTable


def _fleet_summary(payload: Dict[str, Any], duration: float,
                   warmup: float) -> Summary:
    """Condense a FleetResult payload into the campaign Summary schema.

    Latency fields are the fleet-wide victim statistics; throughput
    aggregates the per-node reports.  Counters the fleet does not track
    per-request (drops, timeouts) stay zero.
    """
    effective = max(duration - warmup, 1e-9)
    throughput = sum(
        report["throughput"] for report in payload["node_reports"]
    )
    p99 = payload["victim_p99"]
    nan = float("nan")
    completed = int(round(throughput * effective))
    return Summary(
        duration=effective,
        throughput=throughput,
        p50_latency=nan,
        p99_latency=nan if p99 is None else p99,
        mean_latency=nan,
        drop_rate=0.0,
        completed=completed,
        dropped=0,
        cancelled=int(payload["cancels_total"]),
        timed_out=0,
    )


@register_sim("cluster")
def _build_cluster(params: Dict[str, Any]) -> SimBuild:
    """The ``cluster`` family: one fleet run per spec.

    Params: ``fleet`` (a :class:`~repro.cluster.spec.FleetSpec` dict
    *without* the seed/duration/warmup keys -- those live on the RunSpec
    identity).  The fleet's node sims run serially inside the campaign
    worker for the same daemonized-fork reason as the ``dag`` family.
    """
    from ..cluster.spec import FleetSpec

    fleet = dict(params.get("fleet") or {})
    for key in ("seed", "duration", "warmup"):
        fleet.pop(key, None)

    def runner(seed, duration, warmup, label=None):
        spec = FleetSpec.from_dict(
            dict(fleet, seed=seed, duration=duration, warmup=warmup)
        )
        result = run_fleet(spec, jobs=1)
        payload = result.to_dict()
        extras = {"fleet": payload, "fleet_digest": result.digest()}
        return _fleet_summary(payload, duration, warmup), extras

    return SimBuild(duration=16.0, warmup=4.0, runner=runner)


def cluster_spec(
    experiment: str,
    fleet: Dict[str, Any],
    seed: int,
    duration: float,
    warmup: float,
) -> "RunSpec":
    """Build the campaign spec for one fleet run."""
    from ..campaign.spec import RunSpec

    clean = dict(fleet)
    for key in ("seed", "duration", "warmup"):
        clean.pop(key, None)
    return RunSpec(
        experiment=experiment,
        family="cluster",
        params={"fleet": clean},
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: Optional[int] = None,
    n_nodes: int = 3,
    policy: str = "least-outstanding",
) -> ExperimentResult:
    """Run the three-mode cluster attribution comparison."""
    duration = 16.0 if quick else 30.0
    warmup = 4.0 if quick else 5.0
    spec = demo_fleet(
        n_nodes=n_nodes,
        seed=seed,
        policy=policy,
        duration=duration,
        warmup=warmup,
    )

    modes = ExperimentTable(
        "Cluster: local-only vs coordinated attribution",
        [
            "mode",
            "wrong_culprit_rate",
            "victim_p99_ms",
            "goodput_per_s",
            "cancels",
            "wrong_cancels",
            "directives",
            "quarantined",
        ],
    )
    verdicts = ExperimentTable(
        "Cluster: coordinator verdicts per mode",
        ["mode", "calm", "no_cross_node_culprit", "cancel", "quarantine"],
    )
    for mode in MODES:
        result = run_fleet(spec.with_mode(mode), jobs=jobs)
        modes.add_row(
            mode,
            result.wrong_culprit_rate,
            result.victim_p99 * 1000.0,
            result.goodput,
            result.cancels_total,
            result.wrong_cancels,
            len(result.directives),
            ",".join(result.quarantined) or "-",
        )
        counts = {verdict: 0 for verdict in
                  ("calm", "no-cross-node-culprit", "cancel", "quarantine")}
        for decision in result.decisions:
            counts[decision["verdict"]] += 1
        verdicts.add_row(
            mode,
            counts["calm"],
            counts["no-cross-node-culprit"],
            counts["cancel"],
            counts["quarantine"],
        )

    return ExperimentResult(
        experiment_id="cluster",
        description=(
            "Cross-node culprit attribution: per-node pipelines blame the "
            "single-node decoy; the coordinator's breadth test catches the "
            "fanned-out scan"
        ),
        tables=[modes, verdicts],
    )
