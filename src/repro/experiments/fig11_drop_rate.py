"""Figure 11: drop rate of ATROPOS vs Protego.

The paper reports drop rates for the synchronization/system/thread-pool
cases (c1, c3, c4, c6, c7, c8, c9, c12, c13, c14): ATROPOS stays below
0.01% while Protego averages ~25% because it must drop victims to bound
tail latency.
"""

from __future__ import annotations

from typing import List, Optional

from ..campaign import execute
from .case_family import case_spec
from .tables import ExperimentResult, ExperimentTable

#: The cases shown in the paper's Figure 11.
FIG11_CASES = ["c1", "c3", "c4", "c6", "c7", "c8", "c9", "c12", "c13", "c14"]


def run(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 11's drop-rate comparison."""
    case_ids = case_ids if case_ids is not None else list(FIG11_CASES)
    table = ExperimentTable(
        "Fig 11: drop rate per case", ["case", "Protego", "Atropos"]
    )
    specs = []
    for cid in case_ids:
        specs.append(case_spec("fig11", cid, seed, system="protego"))
        specs.append(case_spec("fig11", cid, seed, system="atropos"))
    outcomes = iter(execute(specs))
    for cid in case_ids:
        protego = next(outcomes)
        atropos = next(outcomes)
        table.add_row(cid, protego.drop_rate, atropos.drop_rate)
    summary = ExperimentTable(
        "Fig 11 summary", ["system", "avg_drop_rate"]
    )
    for system in ("Protego", "Atropos"):
        values = table.column(system)
        summary.add_row(system, sum(values) / len(values))
    return ExperimentResult(
        experiment_id="fig11",
        description="Drop rate of Atropos vs Protego",
        tables=[table, summary],
    )
