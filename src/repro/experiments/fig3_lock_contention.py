"""Figure 3: performance impact of table lock contention.

The paper's setup (case study 2 of §2.1): a lightweight mixed workload,
three long scan queries launched at t = 5/10/15 s and one backup query at
t = 20 s.  "Lock Contention" runs scans + backup; "Drop Scan" removes the
scans; "Drop Backup" removes the backup.  Throughput collapses only when
*both* are present -- the convoy needs the interaction.

Our time axis is compressed (scans at 2/3/4 s, backup at 5 s, 14 s runs)
to match the simulation scale.
"""

from __future__ import annotations

from typing import List, Optional

from ..apps.base import Operation
from ..apps.mysql import MySQL, MySQLConfig, light_mix
from ..campaign import RunSpec, execute
from ..workloads.spec import OpenLoopSource, ScheduledOp, Workload
from .harness import SimBuild, register_sim
from .tables import ExperimentResult, ExperimentTable

SCENARIOS = ["Lock Contention", "Drop Scan", "Drop Backup"]

QUICK_LOADS = [200.0, 500.0, 800.0, 1100.0, 1400.0]
FULL_LOADS = [100.0, 300.0, 500.0, 700.0, 900.0, 1100.0, 1300.0, 1500.0,
              1700.0]

SCAN_TIMES = (2.0, 3.0, 4.0)
BACKUP_TIME = 5.0
DURATION = 14.0


def _mysql(env, controller, rng):
    return MySQL(env, controller, rng, config=MySQLConfig())


def _workload(rate: float, scans: bool, backup: bool):
    def build(app, rng):
        sources = [OpenLoopSource(rate=rate, mix=light_mix(rng))]
        if scans:
            for at in SCAN_TIMES:
                sources.append(
                    ScheduledOp(
                        at=at,
                        factory=lambda: Operation(
                            "scan", {"table": 0, "rows": 1.4e6}
                        ),
                        client_id="analytics",
                    )
                )
        if backup:
            sources.append(
                ScheduledOp(
                    at=BACKUP_TIME,
                    factory=lambda: Operation("backup", {}),
                    client_id="backup",
                )
            )
        return Workload(sources)

    return build


@register_sim("fig3.point")
def _build_point(params):
    """One lock-contention run, optionally under a controller (fig4)."""
    system = params.get("system")
    factory = None
    if system is not None:
        from ..baselines import controller_factory

        factory = controller_factory(system, params["slo_latency"])
    return SimBuild(
        _mysql,
        _workload(
            params["load"], scans=params["scans"], backup=params["backup"]
        ),
        controller_factory=factory,
        duration=DURATION,
        warmup=2.0,
    )


def point_spec(
    experiment: str,
    load: float,
    scans: bool,
    backup: bool,
    seed: int = 0,
    system: Optional[str] = None,
    slo_latency: Optional[float] = None,
) -> RunSpec:
    """A ``fig3.point`` RunSpec (shared by fig3 and fig4)."""
    params = {"load": load, "scans": scans, "backup": backup}
    if system is not None:
        params["system"] = system
        params["slo_latency"] = slo_latency
    return RunSpec(
        experiment,
        "fig3.point",
        params,
        seed=seed,
        duration=DURATION,
        warmup=2.0,
    )


def run(
    quick: bool = True,
    seed: int = 0,
    loads: Optional[List[float]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3's throughput and p99 series."""
    loads = loads if loads is not None else (QUICK_LOADS if quick else FULL_LOADS)
    tput = ExperimentTable(
        "Fig 3 (top): throughput (req/s) vs offered load",
        ["offered_load"] + SCENARIOS,
    )
    p99 = ExperimentTable(
        "Fig 3 (bottom): p99 latency (s) vs offered load",
        ["offered_load"] + SCENARIOS,
    )
    variants = {
        "Lock Contention": (True, True),
        "Drop Scan": (False, True),
        "Drop Backup": (True, False),
    }
    outcomes = iter(
        execute(
            [
                point_spec("fig3", load, *variants[name], seed=seed)
                for load in loads
                for name in SCENARIOS
            ]
        )
    )
    for load in loads:
        tput_row = [load]
        p99_row = [load]
        for _ in SCENARIOS:
            outcome = next(outcomes)
            tput_row.append(outcome.throughput)
            p99_row.append(outcome.p99_latency)
        tput.add_row(*tput_row)
        p99.add_row(*p99_row)
    return ExperimentResult(
        experiment_id="fig3",
        description="Performance impact of table lock contention",
        tables=[tput, p99],
    )
