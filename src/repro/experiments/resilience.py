"""Chaos matrix: ATROPOS vs baselines under injected faults (beyond the paper).

The paper's evaluation (§5) runs every case on healthy infrastructure;
its threats-to-validity discussion (§6) asks what happens when the
controller's assumptions break -- noisy signals, failed cancellations,
degraded substrates, load spikes.  This experiment answers empirically:
it sweeps a fault-kind x intensity grid (:mod:`repro.faults`) over the
reproduced cases for Overload (uncontrolled), ATROPOS, and Protego, and
reports

``norm_tput`` / ``norm_p99``
    Throughput and p99 of the faulted run normalized to the same
    system's *clean* run of the same case/seed (1.0 = fault had no
    effect).
``wrong_rate``
    Fraction of delivered cancellations whose operation is **not** one
    of the case's culprit operations -- the targeting-error rate under
    corrupted inputs (0 when nothing was cancelled).
``recovery_s``
    Seconds after the last fault lifts until p99 (0.5 s windows) is
    back within 1.2x the case SLO; ``inf`` if the run never recovers
    inside the horizon.

The grid goes through :func:`repro.campaign.execute`, so it caches,
parallelizes, and is byte-deterministic per seed like every other
experiment.  Regenerate with ``repro faults matrix`` (see
``docs/RESILIENCE.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..campaign import execute
from ..faults import (
    FaultPlan,
    burst,
    cancel_delay,
    cancel_drop,
    crash,
    degrade,
    detector_noise,
    estimator_noise,
    partition,
    uncancellable,
)
from .case_family import case_spec
from .harness import normalize
from .tables import ExperimentResult, ExperimentTable

#: Fault window shared by the whole grid: starts after warm-up, inside
#: every case's overload phase, and lifts well before the run ends so
#: recovery is observable.
FAULT_AT = 4.0
FAULT_DURATION = 4.0

#: The resource each case's ``degrade`` fault targets (dotted suffix of
#: the app resource name; the culprit-adjacent resource of the case).
DEGRADE_TARGETS: Dict[str, str] = {
    "c1": "buffer_pool",
    "c5": "buffer_pool",
    "c8": "disk",
    "c13": "heap",
}

QUICK_CASES = ["c1"]
FULL_CASES = ["c1", "c5", "c8"]
SYSTEMS = ["overload", "atropos", "protego"]
QUICK_KINDS = [
    "degrade",
    "detector-noise",
    "estimator-noise",
    "cancel-delay",
    "cancel-drop",
    "uncancellable",
    "burst",
    "partition",
]
FULL_KINDS = QUICK_KINDS + ["crash"]

#: intensity tier -> per-kind fault parameters.
INTENSITIES: Dict[str, Dict[str, dict]] = {
    "low": {
        "degrade": {"factor": 0.75},
        "detector-noise": {"noise": 0.2},
        "estimator-noise": {"noise": 0.2},
        "cancel-delay": {"delay": 0.1},
        "cancel-drop": {"probability": 0.25},
        "uncancellable": {},
        "burst": {"factor": 1.5},
        "partition": {},
        "crash": {},
    },
    "high": {
        "degrade": {"factor": 0.5},
        "detector-noise": {"noise": 0.5},
        "estimator-noise": {"noise": 0.5},
        "cancel-delay": {"delay": 0.5},
        "cancel-drop": {"probability": 0.75},
        "uncancellable": {},
        "burst": {"factor": 2.5},
        "partition": {},
        "crash": {},
    },
}


def grid_plan(kind: str, case_id: str, intensity: str = "high") -> FaultPlan:
    """The one-fault plan the matrix injects for (kind, case, tier)."""
    params = INTENSITIES[intensity][kind]
    window = {"at": FAULT_AT, "duration": FAULT_DURATION}
    if kind == "degrade":
        return FaultPlan.of(
            degrade(DEGRADE_TARGETS.get(case_id, "buffer_pool"),
                    params["factor"], **window)
        )
    if kind == "detector-noise":
        return FaultPlan.of(detector_noise(noise=params["noise"], **window))
    if kind == "estimator-noise":
        return FaultPlan.of(estimator_noise(noise=params["noise"], **window))
    if kind == "cancel-delay":
        return FaultPlan.of(cancel_delay(params["delay"], **window))
    if kind == "cancel-drop":
        return FaultPlan.of(cancel_drop(params["probability"], **window))
    if kind == "uncancellable":
        return FaultPlan.of(uncancellable(**window))
    if kind == "burst":
        return FaultPlan.of(burst(params["factor"], **window))
    if kind == "partition":
        return FaultPlan.of(partition(**window))
    if kind == "crash":
        return FaultPlan.of(crash(**window))
    raise KeyError(f"unknown grid fault kind {kind!r}")


def _wrong_rate(outcome, culprit_ops) -> float:
    """Fraction of delivered cancels that hit a non-culprit operation."""
    cancelled = outcome.extras.get("cancelled_ops", [])
    if not cancelled:
        return 0.0
    wrong = sum(1 for op in cancelled if op not in culprit_ops)
    return wrong / len(cancelled)


def _recovery_seconds(outcome, plan: FaultPlan, slo_latency: float) -> float:
    """Time from fault lift to sustained-SLO p99, from the cached timeline."""
    fault_end = plan.last_end()
    target = slo_latency * 1.2
    for end, _tput, p99 in outcome.extras.get("timeline", []):
        if end < fault_end:
            continue
        if p99 is not None and p99 <= target:
            return max(0.0, end - fault_end)
    return float("inf")


def run(
    quick: bool = True,
    case_ids: Optional[List[str]] = None,
    kinds: Optional[List[str]] = None,
    systems: Optional[List[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run the chaos matrix; quick = one case, one intensity tier."""
    if case_ids is None:
        case_ids = list(QUICK_CASES if quick else FULL_CASES)
    if kinds is None:
        kinds = list(QUICK_KINDS if quick else FULL_KINDS)
    if systems is None:
        systems = list(SYSTEMS)
    intensities = ["high"] if quick else ["low", "high"]

    # Clean baselines first, then the grid, all in one campaign batch so
    # dedupe/caching/parallelism see the whole sweep at once.
    specs = []
    for cid in case_ids:
        for system in systems:
            specs.append(case_spec("resilience", cid, seed, system=system))
    grid = []
    for cid in case_ids:
        for kind in kinds:
            for tier in intensities:
                plan = grid_plan(kind, cid, tier)
                for system in systems:
                    grid.append((cid, kind, tier, system, plan))
                    specs.append(
                        case_spec(
                            "resilience", cid, seed, system=system,
                            faults=plan,
                        )
                    )
    outcomes = execute(specs)

    clean: Dict[tuple, object] = {}
    idx = 0
    for cid in case_ids:
        for system in systems:
            clean[(cid, system)] = outcomes[idx]
            idx += 1

    from ..cases import get_case

    tiers = "high" if quick else "low/high"
    table = ExperimentTable(
        "Chaos matrix: faulted run vs same system's clean run "
        f"(seed={seed}, intensity={tiers})",
        [
            "case", "fault", "intensity", "system",
            "norm_tput", "norm_p99", "drop_rate",
            "cancels", "wrong_rate", "recovery_s",
        ],
    )
    for (cid, kind, tier, system, plan), outcome in zip(grid, outcomes[idx:]):
        case = get_case(cid)
        base = clean[(cid, system)]
        table.add_row(
            cid, kind, tier, system,
            normalize(outcome.throughput, base.throughput),
            normalize(outcome.p99_latency, base.p99_latency),
            outcome.drop_rate,
            outcome.cancels,
            _wrong_rate(outcome, case.culprit_ops),
            _recovery_seconds(outcome, plan, case.slo_latency),
        )
    return ExperimentResult(
        experiment_id="resilience",
        description="Chaos matrix: fault kind x intensity vs systems",
        tables=[table],
    )
