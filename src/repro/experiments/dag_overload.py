"""DAG overload contrast: targeted cancel vs DAGOR shed vs Autothrottle.

The scenario (:func:`repro.workloads.dag.dag_storm`): a gateway fans
every request out to leaf services; a light open-loop ``browse`` class
is the victim population and a periodic ``analytics`` class lands a
heavy scan on every leaf -- the culprit lives on *different services*
than the victims' entry point, the regime DAGOR and Autothrottle were
built for.

Four controllers on the identical mesh/seed:

=============  =======================================================
none           uncontrolled baseline
atropos        per-service cancellation pipelines kill the in-flight
               scan within a detection window (targeted cancel)
dagor          per-service admission levels shed by compound priority
               with upstream feedback; an *admitted* scan keeps its
               resources until it finishes, and the level re-opens
               between storms
autothrottle   per-service worker throttles plus the global tower;
               throttling stretches everyone's service time and the
               scan holds its resources even longer
=============  =======================================================

The headline: targeted cancellation achieves strictly better victim
critical-path p99 *and* goodput than both shedding and throttling.

Runs go through :func:`repro.campaign.execute` as the ``dag`` family
(a custom :class:`~repro.experiments.harness.SimBuild` runner), so
they are cached, shard across campaign workers, and stay byte-
identical between serial and ``--jobs N`` executions.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..campaign import RunSpec, execute
from ..sim.metrics import Summary
from .harness import SimBuild, register_sim
from .tables import ExperimentResult, ExperimentTable

#: Controller contrast order (also the spec order of the campaign).
DAG_CONTRAST = ("none", "atropos", "dagor", "autothrottle")


def _dag_summary(result_dict: Dict[str, Any], duration: float,
                 warmup: float) -> Summary:
    """Condense a DagResult payload into the campaign Summary schema.

    Latency fields are the victim classes' critical-path statistics;
    the outcome counters aggregate every class.
    """
    effective = max(duration - warmup, 1e-9)
    totals = {"offered": 0, "completed": 0, "dropped": 0, "cancelled": 0,
              "timed_out": 0, "shed_upstream": 0}
    for counts in result_dict["classes"].values():
        for key in totals:
            totals[key] += counts.get(key, 0)
    p50 = result_dict["victim_p50"]
    p99 = result_dict["victim_p99"]
    mean = result_dict["victim_mean"]
    nan = float("nan")
    dropped = totals["dropped"] + totals["shed_upstream"]
    return Summary(
        duration=effective,
        throughput=totals["completed"] / effective,
        p50_latency=nan if p50 is None else p50,
        p99_latency=nan if p99 is None else p99,
        mean_latency=nan if mean is None else mean,
        drop_rate=dropped / max(totals["offered"], 1),
        completed=totals["completed"],
        dropped=dropped,
        cancelled=totals["cancelled"],
        timed_out=totals["timed_out"],
    )


@register_sim("dag")
def _build_dag(params: Dict[str, Any]) -> SimBuild:
    """The ``dag`` family: one mesh run per spec.

    Params: ``controller`` (one of
    :data:`repro.workloads.dag.DAG_CONTROLLERS`) and ``scenario`` (a
    :class:`~repro.workloads.dag.DagSpec` dict *without* the
    seed/duration/warmup keys -- those live on the RunSpec identity).
    """
    from ..cluster.mesh import run_dag
    from ..workloads.dag import DagSpec

    controller = params.get("controller", "atropos")
    scenario = dict(params.get("scenario") or {})
    for key in ("seed", "duration", "warmup"):
        scenario.pop(key, None)

    def runner(seed, duration, warmup, label=None):
        spec = DagSpec.from_dict(
            dict(scenario, seed=seed, duration=duration, warmup=warmup)
        )
        # Mesh service-sharding would fork inside the (possibly
        # daemonized) campaign worker; parallelism across specs is the
        # campaign pool's job, so each mesh runs its services serially.
        result = run_dag(spec, controller=controller, jobs=1)
        payload = result.to_dict()
        extras = {"dag": payload, "dag_digest": result.digest()}
        return _dag_summary(payload, duration, warmup), extras

    return SimBuild(duration=24.0, warmup=4.0, runner=runner)


def dag_spec(
    experiment: str,
    controller: str,
    scenario: Dict[str, Any],
    seed: int,
    duration: float,
    warmup: float,
) -> RunSpec:
    """Build the campaign spec for one mesh run."""
    return RunSpec(
        experiment=experiment,
        family="dag",
        params={"controller": controller, "scenario": scenario},
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: Optional[int] = None,
    n_leaves: int = 2,
) -> ExperimentResult:
    """Run the four-controller DAG storm contrast."""
    from ..workloads.dag import dag_storm

    duration = 16.0 if quick else 24.0
    warmup = 4.0
    scenario = dag_storm(n_leaves=n_leaves).to_dict()
    for key in ("seed", "duration", "warmup"):
        scenario.pop(key)
    specs = [
        dag_spec("dag", controller, scenario, seed, duration, warmup)
        for controller in DAG_CONTRAST
    ]
    outcomes = execute(specs, jobs=jobs)

    table = ExperimentTable(
        "DAG storm: cancel vs shed vs throttle",
        [
            "controller",
            "victim_p99_ms",
            "goodput_per_s",
            "victims_completed",
            "shed_upstream",
            "rejected",
            "cancelled_shards",
            "tower_moves",
        ],
    )
    for controller, outcome in zip(DAG_CONTRAST, outcomes):
        payload = outcome.extras["dag"]
        culprits = set(scenario["expected_culprits"])
        victims = {
            name: counts
            for name, counts in payload["classes"].items()
            if name not in culprits
        }
        p99 = payload["victim_p99"]
        table.add_row(
            controller,
            float("nan") if p99 is None else p99 * 1000.0,
            payload["goodput"],
            sum(c["completed"] for c in victims.values()),
            payload["shed_upstream"],
            sum(c["dropped"] for c in payload["classes"].values()),
            payload["cancelled_shards"],
            len(payload["tower_moves"]),
        )

    return ExperimentResult(
        experiment_id="dag",
        description=(
            "Microservice-DAG storm: targeted cancellation truncates the "
            "in-flight culprit scan; DAGOR only sheds *future* storms and "
            "Autothrottle squeezes victims alongside the culprit"
        ),
        tables=[table],
    )
