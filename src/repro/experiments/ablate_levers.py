"""Cancel vs lock-reshape vs composite levers across case families.

Not a paper figure: the head-to-head the mitigation-lever refactor
exists to ask -- *when does reshaping the lock queue beat killing the
task?* (ROADMAP open question; Malthusian Locks, arXiv 1511.06035).
For every case the sweep runs the non-overloaded baseline and ATROPOS
once per lever, and reports:

* normalized victim p99 under each lever;
* the action mix each lever produced (cancellations, parked waiters,
  lever no-ops) from the decision audit;
* the *regime verdict*: cases where lock-reshape beats cancellation on
  victim p99 without goodput loss (throughput within 1% of cancel's).

The quick set pairs the MySQL lock cases with the MongoDB extension
cases so both habitats show up: c17's chunk-wise scan storm is parkable
(reshape wins without losing the scans' work), while c18's memory flood
gives the lock lever nothing to park (cancel wins, reshape no-ops).
Lever runs never share cache entries (``RunSpec.lever`` is part of the
cache identity); the shared baseline does.
"""

from __future__ import annotations

from typing import List, Optional

from ..campaign import execute
from .case_family import case_spec
from .tables import ExperimentResult, ExperimentTable

#: The levers contrasted, in report order.
LEVERS = ("cancel", "lock_reshape", "composite")

#: Quick-mode subset: MySQL lock convoys (c1 table lock, c4 SELECT FOR
#: UPDATE) plus both MongoDB extension cases (c17 lock, c18 memory).
QUICK_CASES = ["c1", "c4", "c17", "c18"]

#: Throughput tolerance for "without goodput loss" (relative to cancel).
GOODPUT_TOLERANCE = 0.01


def _all_case_ids() -> List[str]:
    from ..cases import all_case_ids

    return list(all_case_ids())


def run(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
) -> ExperimentResult:
    """Run the mitigation-lever ablation."""
    if case_ids is None:
        case_ids = list(QUICK_CASES) if quick else _all_case_ids()
    specs = []
    for cid in case_ids:
        specs.append(case_spec("ablate-levers", cid, seed,
                               include_culprit=False))
        for lever in LEVERS:
            specs.append(
                case_spec(
                    "ablate-levers", cid, seed,
                    atropos_overrides={}, lever=lever,
                )
            )
    p99 = ExperimentTable(
        "Mitigation levers: normalized victim p99",
        ["case"] + list(LEVERS),
    )
    actions = ExperimentTable(
        "Mitigation levers: action mix (cancelled / parked per lever)",
        ["case"] + [f"{lever}" for lever in LEVERS],
    )
    verdict = ExperimentTable(
        "Regimes where lock-reshape beats cancel "
        "(p99 lower, goodput within 1%)",
        ["case", "reshape/cancel p99", "goodput ratio", "reshape wins"],
    )
    outcomes = iter(execute(specs))
    reshape_wins = []
    for cid in case_ids:
        baseline = next(outcomes)
        by_lever = {lever: next(outcomes) for lever in LEVERS}
        p99.add_row(
            cid,
            *(
                by_lever[lever].p99_latency / baseline.p99_latency
                for lever in LEVERS
            ),
        )
        actions.add_row(
            cid,
            *(
                "{}c/{}p".format(
                    by_lever[lever].cancels,
                    by_lever[lever].extras.get("audit_mix", {}).get(
                        "lock-reshaped", 0
                    ),
                )
                for lever in LEVERS
            ),
        )
        cancel = by_lever["cancel"]
        reshape = by_lever["lock_reshape"]
        p99_ratio = reshape.p99_latency / cancel.p99_latency
        goodput_ratio = (
            reshape.throughput / cancel.throughput
            if cancel.throughput
            else float("nan")
        )
        wins = p99_ratio < 1.0 and goodput_ratio >= 1.0 - GOODPUT_TOLERANCE
        if wins:
            reshape_wins.append(cid)
        verdict.add_row(cid, p99_ratio, goodput_ratio, "yes" if wins else "no")
    if reshape_wins:
        summary = (
            "lock-reshape beats cancel on victim p99 without goodput "
            "loss in: " + ", ".join(reshape_wins)
        )
    else:
        summary = (
            "no regime in this sweep favored lock-reshape over cancel"
        )
    return ExperimentResult(
        experiment_id="ablate-levers",
        description=(
            "Cancel vs lock-reshape vs composite mitigation levers "
            f"({summary})"
        ),
        tables=[p99, actions, verdict],
    )
