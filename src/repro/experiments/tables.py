"""Tabular results: the common output format of every experiment.

Each experiment returns one or more :class:`ExperimentTable` objects
holding exactly the rows/series the corresponding paper figure or table
reports; ``format()`` renders them for the bench harness and the
EXPERIMENTS.md record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ExperimentTable:
    """One table of results (one figure panel or paper table)."""

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def row_map(self, key_column: str = None) -> dict:
        """Rows keyed by the first (or named) column."""
        key_idx = 0 if key_column is None else self.columns.index(key_column)
        return {row[key_idx]: row for row in self.rows}

    def to_csv(self) -> str:
        """Render as CSV (for plotting pipelines)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def format(self) -> str:
        cells = [[_fmt_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    description: str
    tables: List[ExperimentTable] = field(default_factory=list)

    def table(self, title_fragment: str) -> ExperimentTable:
        for table in self.tables:
            if title_fragment.lower() in table.title.lower():
                return table
        raise KeyError(f"no table matching {title_fragment!r}")

    def format(self) -> str:
        header = f"### {self.experiment_id}: {self.description}"
        return "\n\n".join([header] + [t.format() for t in self.tables])
