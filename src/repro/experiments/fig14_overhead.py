"""Figure 14: runtime overhead of ATROPOS tracing.

Five applications, four workloads (read / write, each with and without an
injected resource overload).  ATROPOS runs with *cancellation disabled*
(§5.5) so only tracing + decision overhead is measured, and results are
normalized against the uninstrumented run of the same workload.

Expected shape: under normal load the sampled-timestamp (coarse) mode
costs well under ~2% throughput; under overload the per-event (fine)
mode costs several percent -- small next to the benefit of cancellation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..apps.apache import Apache, ApacheConfig
from ..apps.base import Operation
from ..apps.elasticsearch import Elasticsearch, ElasticsearchConfig
from ..apps.mysql import MySQL, MySQLConfig, light_mix
from ..apps.postgres import PostgreSQL, PostgresConfig
from ..apps.solr import Solr, SolrConfig
from ..campaign import RunSpec, execute
from ..core.atropos import Atropos
from ..core.config import AtroposConfig
from ..workloads.spec import MixEntry, OpenLoopSource, ScheduledOp, Workload
from .harness import SimBuild, normalize, register_sim
from .tables import ExperimentResult, ExperimentTable

WORKLOADS = ["Read", "Write", "Read Overload", "Write Overload"]


def _mix(rng, read_ops, write_ops, read_heavy: bool):
    ops = read_ops if read_heavy else write_ops
    entries = []
    for name, params in ops:
        entries.append(
            MixEntry(
                factory=lambda n=name, p=params: Operation(n, dict(p)),
                weight=1.0,
            )
        )
    return entries


#: app -> (factory, read ops, write ops, overload trigger op, rate).
APP_SPECS: Dict[str, Tuple] = {
    "mysql": (
        lambda env, c, rng: MySQL(env, c, rng, config=MySQLConfig()),
        [("point_select", {})],
        [("row_update", {})],
        ("dump", {}),
        500.0,
    ),
    "postgres": (
        lambda env, c, rng: PostgreSQL(env, c, rng, config=PostgresConfig()),
        [("select", {})],
        [("update", {})],
        ("bulk_update", {"table": 0, "rows": 1.5e6}),
        400.0,
    ),
    "apache": (
        lambda env, c, rng: Apache(env, c, rng, config=ApacheConfig()),
        [("static", {})],
        [("static", {})],
        ("php_script", {"duration": 4.0}),
        400.0,
    ),
    "elasticsearch": (
        lambda env, c, rng: Elasticsearch(
            env, c, rng, config=ElasticsearchConfig()
        ),
        [("search", {})],
        [("indexing", {})],
        ("large_search", {}),
        400.0,
    ),
    "solr": (
        lambda env, c, rng: Solr(env, c, rng, config=SolrConfig()),
        [("query", {})],
        [("query", {})],
        ("boolean_query", {"duration": 4.0}),
        400.0,
    ),
}


def _workload(spec, read_heavy: bool, overload: bool):
    _, read_ops, write_ops, trigger, rate = spec

    def build(app, rng):
        sources = [
            OpenLoopSource(
                rate=rate, mix=_mix(rng, read_ops, write_ops, read_heavy)
            )
        ]
        if overload:
            name, params = trigger
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation(name, dict(params)),
                    client_id="culprit",
                )
            )
        return Workload(sources)

    return build


def _tracing_only_atropos(env):
    """ATROPOS with cancellation disabled: tracing + decisions only."""
    return Atropos(env, AtroposConfig(cancellation_enabled=False))


@register_sim("fig14.point")
def _build_point(params):
    spec = APP_SPECS[params["app"]]
    return SimBuild(
        spec[0],
        _workload(spec, params["read_heavy"], params["overload"]),
        controller_factory=_tracing_only_atropos
        if params["instrumented"]
        else None,
        warmup=2.0,
    )


def run(
    quick: bool = True,
    seed: int = 0,
    apps: Optional[List[str]] = None,
    duration: float = 10.0,
) -> ExperimentResult:
    """Regenerate Figure 14's overhead bars."""
    apps = apps if apps is not None else list(APP_SPECS)
    tput = ExperimentTable(
        "Fig 14a: normalized throughput (Atropos / uninstrumented)",
        ["app"] + WORKLOADS,
    )
    p99 = ExperimentTable(
        "Fig 14b: normalized p99 latency (Atropos / uninstrumented)",
        ["app"] + WORKLOADS,
    )
    specs = []
    for app_name in apps:
        for workload_name in WORKLOADS:
            for instrumented in (False, True):
                specs.append(
                    RunSpec(
                        "fig14",
                        "fig14.point",
                        {
                            "app": app_name,
                            "read_heavy": workload_name.startswith("Read"),
                            "overload": "Overload" in workload_name,
                            "instrumented": instrumented,
                        },
                        seed=seed,
                        duration=duration,
                        warmup=2.0,
                    )
                )
    outcomes = iter(execute(specs))
    for app_name in apps:
        tput_row = [app_name]
        p99_row = [app_name]
        for _ in WORKLOADS:
            plain = next(outcomes)
            traced = next(outcomes)
            tput_row.append(normalize(traced.throughput, plain.throughput))
            p99_row.append(normalize(traced.p99_latency, plain.p99_latency))
        tput.add_row(*tput_row)
        p99.add_row(*p99_row)
    return ExperimentResult(
        experiment_id="fig14",
        description="Tracing/decision overhead of Atropos",
        tables=[tput, p99],
    )
