"""The ``case`` simulation family: campaign specs over the 16 cases.

Most figures sweep the reproduced overload cases (fig9-fig13, the
ablations, robustness), varying only the controller configuration.  This
module registers one builder covering every variant so all of them share
cache entries for identical runs (e.g. the per-case non-overloaded
baseline fig9, fig10, fig12, and fig13 all need).

Recognized params (all JSON-able):

``case_id``
    Required; ``c1``..``c16``.
``include_culprit``
    Default True; False = the non-overloaded baseline workload.
``system``
    Baseline-system name for :func:`repro.baselines.controller_factory`
    (``atropos``, ``protego``, ...).  None = uncontrolled.
``policy``
    Cancellation-policy id (``multi_objective`` / ``heuristic`` /
    ``current_usage``); builds ATROPOS with that policy (fig13).
``slo_latency``
    SLO override (default: the case's own SLO).
``atropos_overrides``
    Extra :class:`~repro.core.config.AtroposConfig` fields merged over
    the case's own overrides; presence of the key selects the direct
    ATROPOS build path (fig12's ``slo_slack``, the ablation knobs).
``adaptive``
    Transient param injected by the campaign runner when
    ``RunSpec.adaptive`` is set (never stored in spec params): builds
    the ATROPOS variants with health-driven adaptive thresholds
    (``AtroposConfig.adaptive_thresholds=True``).  Ignored by
    non-ATROPOS systems and uncontrolled runs.
``lever``
    Transient param injected by the campaign runner when
    ``RunSpec.lever`` is set (never stored in spec params): selects the
    mitigation lever (:mod:`repro.core.levers`) for the ATROPOS
    variants (``AtroposConfig.lever``).  Ignored by non-ATROPOS systems
    and uncontrolled runs.
"""

from __future__ import annotations

from typing import Any, Dict

from .harness import SimBuild, register_sim

#: Stable policy ids used inside RunSpec params (JSON-friendly).
POLICY_CLASSES = {
    "multi_objective": "MultiObjectivePolicy",
    "heuristic": "GreedyHeuristicPolicy",
    "current_usage": "CurrentUsagePolicy",
}


def _policy_class(policy_id: str):
    from ..core import policy as policy_module

    try:
        return getattr(policy_module, POLICY_CLASSES[policy_id])
    except KeyError:
        raise KeyError(
            f"unknown policy {policy_id!r}; known: {sorted(POLICY_CLASSES)}"
        ) from None


@register_sim("case")
def build_case(params: Dict[str, Any]) -> SimBuild:
    from ..baselines import controller_factory
    from ..cases import get_case
    from ..core.atropos import Atropos
    from ..core.config import AtroposConfig

    case = get_case(params["case_id"])
    include_culprit = params.get("include_culprit", True)
    system = params.get("system")
    policy_id = params.get("policy")
    slo_latency = params.get("slo_latency", case.slo_latency)
    adaptive = bool(params.get("adaptive", False))
    lever = params.get("lever")

    factory = None
    if policy_id is not None or "atropos_overrides" in params:
        merged = dict(case.atropos_overrides)
        merged.update(params.get("atropos_overrides") or {})
        if adaptive:
            merged["adaptive_thresholds"] = True
        if lever:
            merged["lever"] = lever
        policy_cls = _policy_class(policy_id) if policy_id else None

        def factory(env):
            config = AtroposConfig(slo_latency=slo_latency, **merged)
            if policy_cls is None:
                return Atropos(env, config)
            return Atropos(
                env,
                config,
                policy=policy_cls(min_age=config.min_cancel_age),
            )

    elif system is not None:
        overrides = dict(case.atropos_overrides)
        if adaptive and system == "atropos":
            overrides["adaptive_thresholds"] = True
        if lever and system == "atropos":
            overrides["lever"] = lever
        factory = controller_factory(
            system, slo_latency, atropos_overrides=overrides
        )

    def workload(app, rng):
        return case.workload_factory(app, rng, include_culprit)

    return SimBuild(
        app_factory=case.app_factory,
        workload_factory=workload,
        controller_factory=factory,
        duration=case.duration,
        warmup=case.warmup,
    )


def case_spec(
    experiment: str,
    case_id: str,
    seed: int = 0,
    faults=None,
    adaptive: bool = False,
    lever: str = None,
    **params,
) -> "RunSpec":
    """Convenience constructor for ``case`` RunSpecs.

    Params equal to their defaults are omitted so physically identical
    runs hash identically across experiments (shared cache entries).
    ``faults`` may be a :class:`repro.faults.FaultPlan` or its
    ``to_dict()`` payload; empty plans are treated as no faults.
    ``adaptive`` turns on health-driven adaptive thresholds for the
    ATROPOS variants (a RunSpec identity field, not a stored param);
    ``lever`` selects their mitigation lever the same way.
    """
    from ..campaign.spec import RunSpec

    clean = {"case_id": case_id}
    for key, value in params.items():
        if key == "include_culprit" and value is True:
            continue
        if value is None:
            continue
        clean[key] = value
    if faults is not None and hasattr(faults, "to_dict"):
        faults = faults.to_dict()
    if faults and not faults.get("faults"):
        faults = None
    return RunSpec(
        experiment=experiment,
        family="case",
        params=clean,
        seed=seed,
        faults=faults,
        adaptive=adaptive,
        lever=lever,
    )
