"""Tables 1-3 of the paper, regenerated from repository data.

* Table 1 -- the 151-application cancellation-support survey.
* Table 2 -- the 16 reproduced overload cases and their metadata.
* Table 3 -- per-application integration effort (instrumentation sites
  and lines of integration code in this repository's app models, next to
  the paper's reported SLOC).
"""

from __future__ import annotations

import inspect
import re

from .. import apps as apps_pkg
from ..apps.apache import Apache
from ..apps.elasticsearch import Elasticsearch
from ..apps.etcd import Etcd
from ..apps.mysql import MySQL
from ..apps.postgres import PostgreSQL
from ..apps.solr import Solr
from ..cases import all_cases
from ..study import table1 as study_table1, table1_totals
from .tables import ExperimentResult, ExperimentTable

#: Paper Table 3 reference values: app -> (language, category, SLOC, added).
PAPER_TABLE3 = {
    "mysql": ("C/C++", "Database", "2.1M", 74),
    "postgres": ("C/C++", "Database", "1.49M", 59),
    "apache": ("C/C++", "Web Server", "198K", 30),
    "elasticsearch": ("Java", "Search Engine", "3.2M", 65),
    "solr": ("Java", "Search Engine", "961K", 47),
    "etcd": ("Go", "Key-Value Store", "244K", 22),
}

_APP_CLASSES = {
    "mysql": MySQL,
    "postgres": PostgreSQL,
    "apache": Apache,
    "elasticsearch": Elasticsearch,
    "solr": Solr,
    "etcd": Etcd,
}

#: Calls that constitute integration points in an app model (the
#: analogue of the paper's "SLOC added" column).
_INSTRUMENTATION_RE = re.compile(
    r"\b(trace_get|trace_free|trace_slow_by|acquire_lock|acquire_slot|"
    r"release_lock|register_resource|checkpoint|begin_wait|end_wait)\("
)


def count_instrumentation_sites(app_cls) -> int:
    """Count instrumentation call sites in an app model's source."""
    source = inspect.getsource(inspect.getmodule(app_cls))
    return len(_INSTRUMENTATION_RE.findall(source))


def run_table1(quick: bool = True) -> ExperimentResult:
    """Regenerate Table 1 from the survey dataset."""
    table = ExperimentTable(
        "Table 1: prevalence of task cancellation in 151 applications",
        ["Language", "Applications", "Supporting Cancel", "With Initiator"],
    )
    for row in study_table1():
        table.add_row(
            row.language,
            row.applications,
            row.supporting_cancel,
            row.with_initiator,
        )
    totals = table1_totals()
    table.add_row(
        "Total",
        totals.applications,
        f"{totals.supporting_cancel} (76%)",
        f"{totals.with_initiator} (95% of 115)",
    )
    return ExperimentResult(
        experiment_id="table1",
        description="Prevalence of task cancellation support",
        tables=[table],
    )


def run_table2(quick: bool = True) -> ExperimentResult:
    """Regenerate Table 2 from the case registry."""
    table = ExperimentTable(
        "Table 2: 16 reproduced real-world overload cases",
        ["Id", "Application", "Resource Type", "Resource Detail",
         "Overload Triggering Condition"],
    )
    for case in all_cases():
        if case.extension:
            # Table 2 is the paper's table: the 16 reproduced cases.
            continue
        table.add_row(
            case.case_id,
            case.app_name,
            case.resource_type,
            case.resource_detail,
            case.trigger,
        )
    return ExperimentResult(
        experiment_id="table2",
        description="Reproduced overload cases",
        tables=[table],
    )


def run_table3(quick: bool = True) -> ExperimentResult:
    """Regenerate Table 3: integration effort per application."""
    table = ExperimentTable(
        "Table 3: integration effort",
        ["Software", "Language", "Category", "Paper SLOC", "Paper Added",
         "Repo Instrumentation Sites"],
    )
    for app_name, (language, category, sloc, added) in PAPER_TABLE3.items():
        sites = count_instrumentation_sites(_APP_CLASSES[app_name])
        table.add_row(app_name, language, category, sloc, added, sites)
    return ExperimentResult(
        experiment_id="table3",
        description="Integration effort (paper vs this repository)",
        tables=[table],
    )
