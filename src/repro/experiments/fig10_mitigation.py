"""Figure 10: ATROPOS mitigation effectiveness across the 16 cases.

For each case: normalized throughput and p99 of the uncontrolled
"Overload" run versus the ATROPOS run, normalized by the non-overloaded
baseline.  The paper's headline: ATROPOS averages 96% throughput and
1.16x p99 over the 16 cases.
"""

from __future__ import annotations

from typing import List, Optional

from ..campaign import execute
from ..cases import paper_case_ids
from .case_family import case_spec
from .harness import normalize
from .tables import ExperimentResult, ExperimentTable


def run(
    quick: bool = True,
    seed: int = 0,
    case_ids: Optional[List[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 10's Overload-vs-Atropos series."""
    case_ids = case_ids if case_ids is not None else paper_case_ids()
    tput = ExperimentTable(
        "Fig 10a: normalized throughput per case",
        ["case", "Overload", "Atropos"],
    )
    p99 = ExperimentTable(
        "Fig 10b: normalized p99 latency per case",
        ["case", "Overload", "Atropos"],
    )
    extras = ExperimentTable(
        "Fig 10 extras: Atropos drop rate and cancellations per case",
        ["case", "drop_rate", "cancels"],
    )
    specs = []
    for cid in case_ids:
        specs.append(case_spec("fig10", cid, seed, include_culprit=False))
        specs.append(case_spec("fig10", cid, seed))
        specs.append(case_spec("fig10", cid, seed, system="atropos"))
    outcomes = iter(execute(specs))
    for cid in case_ids:
        baseline = next(outcomes)
        overload = next(outcomes)
        atropos = next(outcomes)
        tput.add_row(
            cid,
            normalize(overload.throughput, baseline.throughput),
            normalize(atropos.throughput, baseline.throughput),
        )
        p99.add_row(
            cid,
            normalize(overload.p99_latency, baseline.p99_latency),
            normalize(atropos.p99_latency, baseline.p99_latency),
        )
        extras.add_row(cid, atropos.drop_rate, atropos.cancels)
    summary = ExperimentTable(
        "Fig 10 summary (paper: Atropos 96% tput, 1.16x p99, <0.01% drops)",
        ["metric", "value"],
    )
    atr_tputs = tput.column("Atropos")
    atr_p99s = p99.column("Atropos")
    drops = extras.column("drop_rate")
    summary.add_row("avg_norm_throughput", sum(atr_tputs) / len(atr_tputs))
    summary.add_row("avg_norm_p99", sum(atr_p99s) / len(atr_p99s))
    summary.add_row("avg_drop_rate", sum(drops) / len(drops))
    return ExperimentResult(
        experiment_id="fig10",
        description="Mitigation effectiveness of Atropos across 16 cases",
        tables=[tput, p99, extras, summary],
    )
