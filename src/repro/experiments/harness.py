"""Shared run harness: build app + controller + workload, run, summarize.

Every experiment, test, and example assembles runs through this module so
that results are comparable and deterministic per seed.

Beyond the imperative :func:`run_simulation` entry point, this module
hosts the **simulation-spec registry** used by the campaign runner
(:mod:`repro.campaign`): experiments register named *builders* that turn
a plain JSON-able parameter dict into the factories ``run_simulation``
needs.  Closures are not picklable, so worker processes resolve builders
by name through this registry instead of receiving factories directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..core.controller import BaseController, NullController
from ..obs.tracer import get_active_tracer
from ..telemetry import get_active_telemetry
from ..sim.environment import Environment
from ..sim.metrics import MetricsCollector, Summary
from ..sim.rng import Rng
from ..workloads.driver import Driver
from ..workloads.spec import Workload

#: Builds an application bound to (env, controller, rng).
AppFactory = Callable[[Environment, BaseController, Rng], object]
#: Builds a controller bound to env.
ControllerFactory = Callable[[Environment], BaseController]
#: Builds the workload for an app.
WorkloadFactory = Callable[[object, Rng], Workload]


@dataclass
class RunResult:
    """Everything an experiment needs from one simulation run."""

    summary: Summary
    collector: MetricsCollector
    controller: BaseController
    app: object
    driver: Driver
    duration: float
    #: Warm-up horizon used for the summary (0 = nothing trimmed).
    warmup: float = 0.0
    #: The :class:`repro.faults.FaultInjector` armed for this run, with
    #: its per-fault event log; None for clean (unfaulted) runs.
    faults: Optional[object] = None
    #: The :class:`repro.telemetry.RunTelemetry` recorded for this run;
    #: None unless a telemetry session was active (see
    #: :func:`repro.telemetry.telemetry_session`).
    telemetry: Optional[object] = None

    @property
    def throughput(self) -> float:
        return self.summary.throughput

    @property
    def p99_latency(self) -> float:
        return self.summary.p99_latency

    @property
    def drop_rate(self) -> float:
        return self.summary.drop_rate

    @property
    def trimmed_collector(self) -> MetricsCollector:
        """The warm-up-trimmed view of :attr:`collector`.

        :attr:`summary` is computed from exactly this view; use it
        whenever derived metrics should be comparable to the summary.
        With ``warmup == 0`` it is :attr:`collector` itself.
        """
        return self.collector.trimmed(self.warmup)

    def timeline(self, window: float = 0.5):
        """Per-window (end_time, throughput, p99) series over the run.

        Useful for plotting how an overload forms and how quickly the
        controller recovers.  Uses the same warm-up-trimmed view as
        :attr:`summary`, so windows inside the warm-up report zero
        throughput; the time axis always covers [0, duration].
        """
        from ..sim.metrics import completion_windows, percentile

        return [
            (end, len(latencies) / window, percentile(latencies, 99))
            for end, latencies in completion_windows(
                self.trimmed_collector.records, window, self.duration
            )
        ]


def run_simulation(
    app_factory: AppFactory,
    workload_factory: WorkloadFactory,
    controller_factory: Optional[ControllerFactory] = None,
    duration: float = 10.0,
    seed: int = 0,
    warmup: float = 0.0,
    label: Optional[str] = None,
    fault_plan: Optional[object] = None,
) -> RunResult:
    """Run one simulation to completion and summarize.

    Args:
        app_factory: builds the application.
        workload_factory: builds the workload given (app, rng).
        controller_factory: builds the overload controller (default: the
            uncontrolled :class:`NullController`).
        duration: simulated seconds to run.
        seed: RNG seed (runs are deterministic per seed).
        warmup: completions finishing before this time are excluded from
            the summary (cold-cache transient).
        label: trace-run label when a tracing session is active (see
            :func:`repro.obs.tracing`); defaults to a sequence number.
        fault_plan: optional :class:`repro.faults.FaultPlan`; when given
            (and non-empty) a :class:`~repro.faults.FaultInjector` is
            armed against the assembled run and exposed as
            :attr:`RunResult.faults`.  Fault randomness draws from a
            dedicated ``faults`` fork of the run seed, so faulted runs
            are as deterministic as clean ones.

    When a tracer is active (``repro.obs.tracing``), this run becomes
    one Chrome-trace process in it: the kernel, resources, driver, and
    controller all emit through ``env.tracer``.  Tracing never perturbs
    the simulation itself -- results are identical with or without it.
    The same holds for an active telemetry session
    (:func:`repro.telemetry.telemetry_session`): the scraper is a
    pull-based sim process that only *reads* model state, so scraped
    runs report identical results.
    """
    tracer = get_active_tracer()
    if tracer.enabled and tracer.accepting_runs:
        tracer.new_run(label or f"run-{len(tracer.runs) + 1}:seed={seed}")
        env = Environment(tracer=tracer)
    else:
        env = Environment()
    rng = Rng(seed)
    controller = (
        controller_factory(env) if controller_factory else NullController(env)
    )
    app = app_factory(env, controller, rng)
    controller.bind(app)
    controller.start()
    collector = MetricsCollector()
    driver = Driver(env, app, controller, collector)
    workload = workload_factory(app, rng)
    driver.run_workload(workload)
    injector = None
    if fault_plan is not None and len(fault_plan) > 0:
        from ..faults import FaultInjector

        injector = FaultInjector(env, fault_plan, rng.fork("faults"))
        injector.arm(app=app, controller=controller, driver=driver)
    scraper = None
    telemetry = get_active_telemetry()
    if telemetry.enabled and telemetry.accepting_runs:
        from ..telemetry.health import slo_of
        from ..telemetry.scrape import Scraper

        telemetry_run = telemetry.new_run(
            label or f"run-{len(telemetry.runs) + 1}:seed={seed}"
        )
        scraper = Scraper(
            env,
            telemetry_run,
            rules=telemetry.rules_for(controller),
            slo=slo_of(controller),
            live_sink=telemetry.live_sink,
        )
        scraper.attach(
            app=app, driver=driver, controller=controller, faults=injector
        )
        scraper.start()
    env.run(until=duration)
    env.tracer.close_open_spans(env.now)
    if scraper is not None:
        scraper.finalize(env.now)

    effective = duration - warmup if warmup > 0.0 else duration
    summary = Summary.from_collector(collector.trimmed(warmup), effective)
    return RunResult(
        summary=summary,
        collector=collector,
        controller=controller,
        app=app,
        driver=driver,
        duration=duration,
        warmup=warmup,
        faults=injector,
        telemetry=scraper.run if scraper is not None else None,
    )


def normalize(value: float, baseline: float) -> float:
    """Safe normalization used across the figures."""
    if baseline == 0:
        return float("nan")
    return value / baseline


# ----------------------------------------------------------------------
# Simulation-spec registry (campaign support)
# ----------------------------------------------------------------------

@dataclass
class SimBuild:
    """The resolved ingredients of one :func:`run_simulation` call.

    Returned by registered spec builders; the campaign runner combines
    it with the RunSpec's seed/duration/warmup overrides.

    Families whose execution model is not a single
    :func:`run_simulation` environment (the microservice-DAG mesh runs
    a whole fleet of them) set ``runner`` instead of the factories: a
    callable ``runner(seed, duration, warmup, label) -> (Summary,
    extras)`` the campaign executes in place of the standard stack.
    Runner families do not support fault plans.
    """

    app_factory: Optional[AppFactory] = None
    workload_factory: Optional[WorkloadFactory] = None
    controller_factory: Optional[ControllerFactory] = None
    #: Defaults used when the RunSpec leaves duration/warmup unset.
    duration: float = 10.0
    warmup: float = 0.0
    #: Custom execution hook; see the class docstring.
    runner: Optional[Callable[..., Any]] = None


#: Family name -> builder(params: dict) -> SimBuild.
_SIM_BUILDERS: Dict[str, Callable[[Dict[str, Any]], SimBuild]] = {}


def register_sim(name: str):
    """Decorator registering a simulation builder under ``name``.

    Builders must accept one JSON-able parameter dict and return a
    :class:`SimBuild`.  Names are namespaced by convention
    (``fig2.point``, ``case``, ``fig13.late``); registering a name twice
    is an error except for idempotent re-registration of the same
    function (spawn-based workers re-import defining modules).
    """

    def wrap(builder: Callable[[Dict[str, Any]], SimBuild]):
        existing = _SIM_BUILDERS.get(name)
        if existing is not None and existing is not builder:
            raise ValueError(f"sim builder {name!r} already registered")
        _SIM_BUILDERS[name] = builder
        return builder

    return wrap


def resolve_sim(name: str) -> Callable[[Dict[str, Any]], SimBuild]:
    """Look up a registered builder; raises KeyError with known names."""
    try:
        return _SIM_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown sim family {name!r}; known: {sorted(_SIM_BUILDERS)} "
            "(did the defining module get imported? see "
            "repro.campaign.load_all_families)"
        ) from None


def registered_sims() -> Dict[str, Callable[[Dict[str, Any]], SimBuild]]:
    """Snapshot of the registry (for introspection/tests)."""
    return dict(_SIM_BUILDERS)


def extract_extras(result: RunResult) -> Dict[str, Any]:
    """Condense the non-Summary metrics experiments consume into JSON.

    Everything any figure needs beyond the :class:`Summary` -- controller
    cancellation counters and per-operation completed-latency sums over
    the warm-up-trimmed records -- so cached campaign results can feed
    every consumer without keeping RunResult objects around.

    The stable observability surface ``repro regress`` snapshots is
    always present: ``series`` (per-window throughput/p99/goodput/
    cancel-rate arrays, :func:`repro.telemetry.series.window_series`
    over the same trimmed records as the summary) and -- when the
    controller keeps a decision log -- ``decision_mix`` /``audit_mix``
    (event counts per :class:`~repro.core.decision_log.DecisionKind`
    value and per audit verdict, keys sorted).
    """
    controller = result.controller
    extras: Dict[str, Any] = {
        "cancels_issued": int(getattr(controller, "cancels_issued", 0)),
    }
    cancellation = getattr(controller, "cancellation", None)
    log = getattr(cancellation, "log", None)
    extras["first_cancelled_op"] = log[0].op_name if log else None
    extras["cancelled_ops"] = [
        e.op_name for e in (log or []) if getattr(e, "delivered", True)
    ]
    from ..telemetry.health import slo_of
    from ..telemetry.series import window_series

    extras["series"] = window_series(
        result.trimmed_collector.records,
        result.duration,
        slo=slo_of(controller),
        cancel_times=[
            e.time for e in (log or [])
            if getattr(e, "delivered", True)
        ],
    )
    decision_log = getattr(controller, "decision_log", None)
    if decision_log is not None:
        decision_mix: Dict[str, int] = {}
        for event in decision_log.events:
            kind = event.kind.value
            decision_mix[kind] = decision_mix.get(kind, 0) + 1
        audit_mix: Dict[str, int] = {}
        for audit in decision_log.audits:
            verdict = audit.verdict
            audit_mix[verdict] = audit_mix.get(verdict, 0) + 1
        extras["decision_mix"] = {
            k: decision_mix[k] for k in sorted(decision_mix)
        }
        extras["audit_mix"] = {
            k: audit_mix[k] for k in sorted(audit_mix)
        }
    extras["cancel_signals_dropped"] = int(
        getattr(cancellation, "dropped_signals", 0)
    )
    adaptation = getattr(controller, "adaptation", None)
    if getattr(adaptation, "adaptations", 0):
        extras["adaptations"] = int(adaptation.adaptations)
        extras["adapt_events"] = list(adaptation.adapt_events)
    ops: Dict[str, Any] = {}
    for record in result.trimmed_collector.records:
        if not record.completed:
            continue
        entry = ops.get(record.op_name)
        if entry is None:
            entry = ops[record.op_name] = {"n": 0, "latency_sum": 0.0}
        entry["n"] += 1
        entry["latency_sum"] += record.latency
    extras["ops"] = {name: ops[name] for name in sorted(ops)}
    if result.faults is not None:
        extras["fault_events"] = [
            event.to_dict() for event in result.faults.events
        ]
        extras["timeline"] = [
            [
                round(end, 9),
                round(tput, 9),
                None if p99 != p99 else round(p99, 9),
            ]
            for end, tput, p99 in result.timeline(0.5)
        ]
    if result.telemetry is not None:
        run = result.telemetry
        extras["health_events"] = [e.to_dict() for e in run.health_events]
        extras["telemetry"] = {
            "windows": len(run.windows),
            "interval": round(run.interval, 9),
            "resources": list(run.resource_names),
        }
    return extras
