"""Shared run harness: build app + controller + workload, run, summarize.

Every experiment, test, and example assembles runs through this module so
that results are comparable and deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.controller import BaseController, NullController
from ..obs.tracer import get_active_tracer
from ..sim.environment import Environment
from ..sim.metrics import MetricsCollector, Summary
from ..sim.rng import Rng
from ..workloads.driver import Driver
from ..workloads.spec import Workload

#: Builds an application bound to (env, controller, rng).
AppFactory = Callable[[Environment, BaseController, Rng], object]
#: Builds a controller bound to env.
ControllerFactory = Callable[[Environment], BaseController]
#: Builds the workload for an app.
WorkloadFactory = Callable[[object, Rng], Workload]


@dataclass
class RunResult:
    """Everything an experiment needs from one simulation run."""

    summary: Summary
    collector: MetricsCollector
    controller: BaseController
    app: object
    driver: Driver
    duration: float

    @property
    def throughput(self) -> float:
        return self.summary.throughput

    @property
    def p99_latency(self) -> float:
        return self.summary.p99_latency

    @property
    def drop_rate(self) -> float:
        return self.summary.drop_rate

    def timeline(self, window: float = 0.5):
        """Per-window (end_time, throughput, p99) series over the run.

        Useful for plotting how an overload forms and how quickly the
        controller recovers.
        """
        from ..sim.metrics import percentile

        if window <= 0:
            raise ValueError("window must be positive")
        points = []
        n_windows = max(1, int(self.duration / window))
        buckets = [[] for _ in range(n_windows)]
        for record in self.collector.records:
            if not record.completed:
                continue
            idx = min(int(record.finish_time // window), n_windows - 1)
            buckets[idx].append(record.latency)
        for i, latencies in enumerate(buckets):
            points.append(
                (
                    (i + 1) * window,
                    len(latencies) / window,
                    percentile(latencies, 99),
                )
            )
        return points


def run_simulation(
    app_factory: AppFactory,
    workload_factory: WorkloadFactory,
    controller_factory: Optional[ControllerFactory] = None,
    duration: float = 10.0,
    seed: int = 0,
    warmup: float = 0.0,
    label: Optional[str] = None,
) -> RunResult:
    """Run one simulation to completion and summarize.

    Args:
        app_factory: builds the application.
        workload_factory: builds the workload given (app, rng).
        controller_factory: builds the overload controller (default: the
            uncontrolled :class:`NullController`).
        duration: simulated seconds to run.
        seed: RNG seed (runs are deterministic per seed).
        warmup: completions finishing before this time are excluded from
            the summary (cold-cache transient).
        label: trace-run label when a tracing session is active (see
            :func:`repro.obs.tracing`); defaults to a sequence number.

    When a tracer is active (``repro.obs.tracing``), this run becomes
    one Chrome-trace process in it: the kernel, resources, driver, and
    controller all emit through ``env.tracer``.  Tracing never perturbs
    the simulation itself -- results are identical with or without it.
    """
    tracer = get_active_tracer()
    if tracer.enabled and tracer.accepting_runs:
        tracer.new_run(label or f"run-{len(tracer.runs) + 1}:seed={seed}")
        env = Environment(tracer=tracer)
    else:
        env = Environment()
    rng = Rng(seed)
    controller = (
        controller_factory(env) if controller_factory else NullController(env)
    )
    app = app_factory(env, controller, rng)
    controller.bind(app)
    controller.start()
    collector = MetricsCollector()
    driver = Driver(env, app, controller, collector)
    workload = workload_factory(app, rng)
    driver.run_workload(workload)
    env.run(until=duration)
    env.tracer.close_open_spans(env.now)

    if warmup > 0.0:
        trimmed = MetricsCollector()
        trimmed._offered = collector.offered
        for record in collector.records:
            if record.finish_time >= warmup:
                trimmed.record(record)
        collector_for_summary = trimmed
        effective = duration - warmup
    else:
        collector_for_summary = collector
        effective = duration

    summary = Summary.from_collector(collector_for_summary, effective)
    return RunResult(
        summary=summary,
        collector=collector,
        controller=controller,
        app=app,
        driver=driver,
        duration=duration,
    )


def normalize(value: float, baseline: float) -> float:
    """Safe normalization used across the figures."""
    if baseline == 0:
        return float("nan")
    return value / baseline
