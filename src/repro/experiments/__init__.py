"""Experiment harness reproducing every table and figure of the paper.

One module per artifact:

========  ====================================================
fig2      dump queries vs buffer pool contention
fig3      table-lock contention (scan + backup convoy)
fig4      Protego / pBox / Atropos motivation comparison
fig9      Atropos vs 4 systems across all cases
fig10     mitigation effectiveness (Overload vs Atropos)
fig11     drop rate (Atropos vs Protego)
fig12     SLO maintenance under different thresholds
fig13     cancellation-policy ablation
fig14     tracing/decision overhead
table1    cancellation-support survey
table2    reproduced case inventory
table3    integration effort
========  ====================================================

Beyond the paper's artifacts, ``resilience`` runs the chaos matrix
(fault kind x intensity via :mod:`repro.faults`), ``ablate-adaptive``
compares fixed vs health-driven adaptive thresholds
(:mod:`repro.core.adaptive`), ``ablate-levers`` contrasts the
mitigation levers (cancel vs lock-reshape vs composite,
:mod:`repro.core.levers`), and ``cluster`` compares local-only vs
coordinated cross-node culprit attribution on a simulated fleet
(:mod:`repro.cluster`).  All are opt-in -- ``repro faults matrix`` /
``repro ablate-adaptive`` / ``repro ablate --levers`` / ``repro
cluster`` or ``repro run <id>`` -- and not part of the default ``repro
run`` order.
"""

from importlib import import_module

from .harness import RunResult, normalize, run_simulation
from .tables import ExperimentResult, ExperimentTable

#: experiment id -> (module under this package, runner attribute).
#: Modules are imported lazily: several of them import :mod:`repro.cases`,
#: which itself builds on this package's harness.
_EXPERIMENT_RUNNERS = {
    "fig2": ("fig2_buffer_pool", "run"),
    "fig3": ("fig3_lock_contention", "run"),
    "fig4": ("fig4_motivation", "run"),
    "fig9": ("fig9_comparison", "run"),
    "fig10": ("fig10_mitigation", "run"),
    "fig11": ("fig11_drop_rate", "run"),
    "fig12": ("fig12_slo", "run"),
    "fig13": ("fig13_policies", "run"),
    "fig14": ("fig14_overhead", "run"),
    "table1": ("table_experiments", "run_table1"),
    "table2": ("table_experiments", "run_table2"),
    "table3": ("table_experiments", "run_table3"),
    "resilience": ("resilience", "run"),
    "ablate-adaptive": ("ablate_adaptive", "run"),
    "ablate-levers": ("ablate_levers", "run"),
    "cluster": ("cluster_attribution", "run"),
    "dag": ("dag_overload", "run"),
}


class _LazyRunner:
    """Callable proxy importing the experiment module on first use."""

    def __init__(self, module_name: str, attribute: str) -> None:
        self._module_name = module_name
        self._attribute = attribute

    def __call__(self, *args, **kwargs):
        module = import_module(f"{__name__}.{self._module_name}")
        return getattr(module, self._attribute)(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<experiment {self._module_name}.{self._attribute}>"


#: experiment id -> runner callable(quick=True) -> ExperimentResult.
ALL_EXPERIMENTS = {
    key: _LazyRunner(module, attribute)
    for key, (module, attribute) in _EXPERIMENT_RUNNERS.items()
}


def resolve_experiment_id(name: str) -> "str | None":
    """Resolve a CLI experiment name to its id.

    Accepts the short id (``fig3``) or the runner module name
    (``fig3_lock_contention``); returns None if neither matches.
    """
    if name in ALL_EXPERIMENTS:
        return name
    for exp_id, (module, _attr) in _EXPERIMENT_RUNNERS.items():
        if name == module:
            return exp_id
    return None


__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "ExperimentTable",
    "RunResult",
    "normalize",
    "resolve_experiment_id",
    "run_simulation",
]
