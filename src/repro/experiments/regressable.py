"""Registry of regressable targets for ``repro regress``.

A *regress entry* is ``(name, RunSpec)``: a stable display name plus the
declarative run the observatory snapshots and later replays.  Four
families are registered:

``case``
    The standard six-case single-node family (ATROPOS on the direct
    config-override build path, so threshold perturbations via
    ``atropos_overrides`` reach the detector).  These carry full
    per-window series, health counts, and decision/audit mixes.
``dag``
    The microservice-DAG storm under the atropos controller; a custom-
    runner family, regressed on summary scalars plus the DagResult
    content digest.
``cluster``
    The coordinated fleet-attribution demo; regressed on summary
    scalars plus the FleetResult content digest.
``lever``
    The mitigation-lever contrast: lock-reshape and composite runs of
    the parkable lock case (c17), anchoring the Malthusian passivation
    path's audit mix and victim p99.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..campaign.spec import RunSpec

#: The standard regress case set: the quick-ablation four plus the two
#: SLO-variant cases (c7: 40ms SLO, c14 exercises re-execution).
REGRESS_CASES = ("c1", "c2", "c5", "c7", "c12", "c14")

#: Known target family names, in capture order.
REGRESS_TARGETS = ("case", "dag", "cluster", "lever")

#: The lever-family regress set: the parkable MongoDB lock case under
#: each non-default lever.
REGRESS_LEVER_CASES = ("c17",)

#: Experiment id stamped on regress-owned RunSpecs (bookkeeping only;
#: excluded from cache identity, so regress runs share cache entries
#: with the figures).
EXPERIMENT_ID = "regress"


def case_entries(
    cases: Iterable[str] = REGRESS_CASES, seed: int = 1
) -> List[Tuple[str, RunSpec]]:
    """ATROPOS runs of the named cases on the direct-config build path."""
    from .case_family import case_spec

    return [
        (
            f"case:{case_id}",
            case_spec(EXPERIMENT_ID, case_id, seed, atropos_overrides={}),
        )
        for case_id in cases
    ]


def dag_entries(seed: int = 1) -> List[Tuple[str, RunSpec]]:
    """The DAG storm contrast's atropos arm (quick horizon)."""
    from ..workloads.dag import dag_storm
    from .dag_overload import dag_spec

    scenario = dag_storm(n_leaves=2).to_dict()
    for key in ("seed", "duration", "warmup"):
        scenario.pop(key)
    return [
        (
            "dag:storm-atropos",
            dag_spec(EXPERIMENT_ID, "atropos", scenario, seed, 16.0, 4.0),
        )
    ]


def cluster_entries(seed: int = 1) -> List[Tuple[str, RunSpec]]:
    """The coordinated fleet-attribution demo (quick horizon)."""
    from ..cluster import demo_fleet
    from .cluster_attribution import cluster_spec

    fleet = demo_fleet(n_nodes=3, mode="coordinated").to_dict()
    return [
        (
            "cluster:coordinated",
            cluster_spec(EXPERIMENT_ID, fleet, seed, 12.0, 3.0),
        )
    ]


def lever_entries(seed: int = 1) -> List[Tuple[str, RunSpec]]:
    """Non-default lever runs of the parkable lock case (c17)."""
    from .case_family import case_spec

    return [
        (
            f"lever:{case_id}-{lever}",
            case_spec(
                EXPERIMENT_ID, case_id, seed,
                atropos_overrides={}, lever=lever,
            ),
        )
        for case_id in REGRESS_LEVER_CASES
        for lever in ("lock_reshape", "composite")
    ]


def regress_entries(
    targets: Iterable[str] = ("case",),
    cases: Iterable[str] = REGRESS_CASES,
    seed: int = 1,
) -> List[Tuple[str, RunSpec]]:
    """Resolve target family names into ``(name, RunSpec)`` entries.

    The default target set is the case family alone -- that is what the
    checked-in ``REGRESS_BASELINE.json`` anchors -- with ``dag`` and
    ``cluster`` opt-in (their runs are an order of magnitude slower).
    """
    entries: List[Tuple[str, RunSpec]] = []
    for target in targets:
        if target == "case":
            entries.extend(case_entries(cases, seed))
        elif target == "dag":
            entries.extend(dag_entries(seed))
        elif target == "cluster":
            entries.extend(cluster_entries(seed))
        elif target == "lever":
            entries.extend(lever_entries(seed))
        else:
            raise KeyError(
                f"unknown regress target {target!r}; "
                f"known: {list(REGRESS_TARGETS)}"
            )
    return entries
