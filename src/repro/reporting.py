"""Report generation: run experiments and render a reproduction record.

Used by ``python -m repro all`` to (re)generate the EXPERIMENTS-style
record of every figure and table.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from .experiments import ALL_EXPERIMENTS, ExperimentResult

#: The order artifacts appear in the paper.
DEFAULT_ORDER = [
    "fig2", "fig3", "fig4", "table1", "table2", "table3",
    "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
]


def run_experiments(
    ids: Optional[Iterable[str]] = None,
    quick: bool = True,
    seed: int = 0,
    progress=None,
) -> Dict[str, ExperimentResult]:
    """Run the requested experiments; returns id -> result."""
    ids = list(ids) if ids is not None else list(DEFAULT_ORDER)
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    results: Dict[str, ExperimentResult] = {}
    for exp_id in ids:
        started = time.time()
        runner = ALL_EXPERIMENTS[exp_id]
        kwargs = {"quick": quick}
        if exp_id.startswith(("fig", "ablate")):
            kwargs["seed"] = seed
        results[exp_id] = runner(**kwargs)
        if progress is not None:
            progress(exp_id, time.time() - started)
    return results


def render_report(
    results: Dict[str, ExperimentResult],
    title: str = "Reproduction results",
    tracer=None,
) -> str:
    """Render results as a markdown-ish text report.

    When ``tracer`` (a :class:`repro.obs.Tracer` used while the results
    were produced) is given, the report ends with its event counters and
    decision-audit totals.
    """
    lines = [f"# {title}", ""]
    for exp_id in DEFAULT_ORDER:
        if exp_id not in results:
            continue
        result = results[exp_id]
        lines.append("```")
        lines.append(result.format())
        lines.append("```")
        lines.append("")
    # Anything requested outside the default order, sorted by id so the
    # rendered report is stable regardless of dict insertion order.
    for exp_id in sorted(results):
        if exp_id not in DEFAULT_ORDER:
            lines.append("```")
            lines.append(results[exp_id].format())
            lines.append("```")
            lines.append("")
    if tracer is not None and getattr(tracer, "enabled", False):
        from .obs import render_trace_summary

        lines.append("```")
        lines.append(render_trace_summary(tracer))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
