"""Self-contained HTML diff report for a regress check.

One section per capture: side-by-side SVG sparkline panels overlaying
the baseline (grey) and current (blue) window series on a shared value
scale -- the sparkline geometry is
:func:`repro.telemetry.report.spark_points`, the same code path as the
telemetry run reports -- plus the count/scalar drift tables.  Drifting
panels are titled in red and the drifting series are named up front, so
a CI failure links straight to what moved.

Deterministic: no wall clock, fixed float formatting, inline CSS/SVG
only.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry.report import SPARK_H, SPARK_W, _fmt, spark_points
from ..telemetry.series import SERIES_KEYS
from .baseline import RegressBaseline
from .compare import CaseDrift, RegressReport

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 1080px; color: #1c2733; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em;
     border-bottom: 1px solid #d8dee6; padding-bottom: .2em; }
.meta { color: #5a6b7b; font-size: .85em; }
.verdict-pass { color: #2e7d32; font-weight: 600; }
.verdict-drift { color: #b00020; font-weight: 600; }
.panels { display: flex; flex-wrap: wrap; gap: 14px; }
.panel { border: 1px solid #d8dee6; border-radius: 6px;
         padding: 8px 10px; background: #fbfcfe; }
.panel .title { font-size: .8em; color: #44525f; margin-bottom: 2px; }
.panel .title.drift { color: #b00020; font-weight: 600; }
.panel .last { font-size: .82em; }
.legend { font-size: .8em; color: #5a6b7b; }
.legend .base { color: #8a97a5; } .legend .cur { color: #2255a4; }
table.drift { border-collapse: collapse; font-size: .82em;
              margin-top: .6em; }
table.drift th, table.drift td { border: 1px solid #d8dee6;
              padding: 3px 8px; text-align: left; }
table.drift th { background: #eef2f7; }
td.drifted { color: #b00020; font-weight: 600; }
"""

_BASE_COLOUR = "#8a97a5"
_CUR_COLOUR = "#2255a4"


def _series_pairs(
    series: Optional[Dict[str, Any]], key: str
) -> List[Tuple[float, float]]:
    if not series:
        return []
    ends = series.get("end", ())
    values = series.get(key, ())
    return [
        (float(end), float("nan") if value is None else float(value))
        for end, value in zip(ends, values)
    ]


def _diff_panel(
    key: str,
    base_series: Optional[Dict[str, Any]],
    cur_series: Optional[Dict[str, Any]],
    drift: Optional[Dict[str, Any]],
) -> str:
    base_pairs = _series_pairs(base_series, key)
    cur_pairs = _series_pairs(cur_series, key)
    finite = [v for _, v in base_pairs + cur_pairs if v == v]
    if not finite:
        return ""
    duration = max(
        [t for t, _ in base_pairs + cur_pairs] or [0.0]
    )
    lo = min(finite)
    hi = max(finite)
    polylines = []
    for pairs, colour, width in (
        (base_pairs, _BASE_COLOUR, "1.1"),
        (cur_pairs, _CUR_COLOUR, "1.4"),
    ):
        pts = spark_points(pairs, duration, lo=lo, hi=hi)
        if pts:
            polylines.append(
                f'<polyline points="{pts}" fill="none" '
                f'stroke="{colour}" stroke-width="{width}"/>'
            )
    drifted = bool(drift and drift.get("drifted"))
    title_cls = "title drift" if drifted else "title"
    flag = " (drift)" if drifted else ""
    detail = ""
    if drift and drift.get("base_mean") is not None:
        detail = (
            f'<div class="last">mean {_fmt(drift["base_mean"])} &rarr; '
            f'{_fmt(drift["cur_mean"])}'
            + (
                f' &middot; rel {_fmt(drift["rel_change"])}'
                if drift.get("rel_change") is not None else ""
            )
            + "</div>"
        )
    return (
        '<div class="panel">'
        f'<div class="{title_cls}">{html.escape(key)}{flag}</div>'
        f'<svg width="{SPARK_W}" height="{SPARK_H}" '
        f'viewBox="0 0 {SPARK_W} {SPARK_H}">{"".join(polylines)}</svg>'
        f"{detail}"
        "</div>"
    )


def _drift_table(case: CaseDrift) -> str:
    rows = []
    for label, result in (
        [(key, case.counts[key]) for key in sorted(case.counts)]
        + [
            (f"summary:{key}", case.scalars[key])
            for key in sorted(case.scalars)
        ]
    ):
        drifted = result.get("drifted")
        cls = ' class="drifted"' if drifted else ""
        rows.append(
            "<tr>"
            f"<td{cls}>{html.escape(label)}</td>"
            f"<td>{_fmt_cell(result.get('base'))}</td>"
            f"<td>{_fmt_cell(result.get('cur'))}</td>"
            f"<td>{'drift' if drifted else 'ok'}</td>"
            "</tr>"
        )
    if case.digest:
        drifted = case.digest.get("drifted")
        cls = ' class="drifted"' if drifted else ""
        rows.append(
            "<tr>"
            f"<td{cls}>digest</td>"
            f"<td>{html.escape(str(case.digest.get('base'))[:12])}</td>"
            f"<td>{html.escape(str(case.digest.get('cur'))[:12])}</td>"
            f"<td>{'drift' if drifted else 'ok'}</td>"
            "</tr>"
        )
    if not rows:
        return ""
    return (
        '<table class="drift"><tr><th>check</th><th>baseline</th>'
        "<th>current</th><th>verdict</th></tr>"
        f'{"".join(rows)}</table>'
    )


def _fmt_cell(value: Any) -> str:
    if value is None:
        return "--"
    if isinstance(value, float):
        return _fmt(value)
    return html.escape(str(value))


def _case_section(
    case: CaseDrift,
    baseline: RegressBaseline,
    current: RegressBaseline,
) -> str:
    base_capture = baseline.case(case.name)
    cur_capture = current.case(case.name)
    drifting = case.drifting()
    verdict = (
        f'<span class="verdict-drift">DRIFT: '
        f"{html.escape(', '.join(drifting))}</span>"
        if drifting
        else '<span class="verdict-pass">ok</span>'
    )
    if case.missing:
        return (
            f"<h2>{html.escape(case.name)}</h2>"
            f"<p>{verdict} &middot; no matching capture in the current "
            "run</p>"
        )
    base_series = base_capture.series if base_capture else None
    cur_series = cur_capture.series if cur_capture else None
    panels = "".join(
        _diff_panel(key, base_series, cur_series, case.series.get(key))
        for key in SERIES_KEYS
    )
    panels_html = (
        f'<div class="panels">{panels}</div>' if panels else
        '<p class="meta">no window series (digest-compared family)</p>'
    )
    return (
        f"<h2>{html.escape(case.name)}</h2>"
        f"<p>{verdict}</p>"
        f"{panels_html}"
        f"{_drift_table(case)}"
    )


def render_diff_report(
    report: RegressReport,
    baseline: RegressBaseline,
    current: RegressBaseline,
    title: Optional[str] = None,
) -> str:
    """Render the complete, self-contained HTML diff."""
    heading = title or (
        f"repro regress: {report.baseline_name or 'baseline'} vs current"
    )
    if report.drifted:
        names = ", ".join(report.drifting_names())
        verdict = (
            f'<p class="verdict-drift">DRIFT &middot; '
            f"{html.escape(names)}</p>"
        )
    else:
        verdict = '<p class="verdict-pass">PASS &middot; no drift</p>'
    sections = "".join(
        _case_section(case, baseline, current) for case in report.cases
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(heading)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(heading)}</h1>"
        f"{verdict}"
        '<p class="legend"><span class="base">&#9644; baseline</span> '
        '&middot; <span class="cur">&#9644; current</span> &middot; '
        f"rel tol {report.rel_tol:.0%} &middot; "
        f"{len(report.cases)} capture(s) &middot; "
        "generated by repro.regress</p>"
        f"{sections}"
        "</body></html>\n"
    )


def write_diff_report(
    report: RegressReport,
    baseline: RegressBaseline,
    current: RegressBaseline,
    path: str,
    title: Optional[str] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            render_diff_report(report, baseline, current, title)
        )
