"""Longitudinal regression observatory over cached campaign results.

``repro regress`` turns the content-addressed campaign cache into a
drift detector for the paper's headline claims: capture a named
*baseline* snapshot of the standard experiment families (per-window
p99/goodput/cancel-rate series, health-event counts, decision-audit
mixes), check any later tree against it with statistically honest
tests, and render a self-contained HTML diff.

Layers (see :mod:`repro.regress.stats` for the shared gate that
``repro bench`` also consumes):

* :mod:`repro.regress.baseline` -- the checked-in JSON snapshot format.
* :mod:`repro.regress.capture` -- run the registered regress targets
  through :func:`repro.campaign.execute` and condense the outcomes.
* :mod:`repro.regress.compare` -- paired per-window bootstrap tests,
  count tests for health/decision histograms, scalar/digest checks.
* :mod:`repro.regress.report` -- side-by-side sparkline HTML diff.
* :mod:`repro.regress.schedule` -- derive per-case threshold schedules
  from baseline history (the ``HistorySchedule`` adaptive source).
"""

from .baseline import (  # noqa: F401
    DEFAULT_BASELINE_PATH,
    REGRESS_SCHEMA,
    CaseCapture,
    RegressBaseline,
)
from .capture import apply_perturbation, capture, recapture  # noqa: F401
from .compare import CaseDrift, RegressReport, compare  # noqa: F401
from .report import render_diff_report, write_diff_report  # noqa: F401
from .schedule import derive_schedule  # noqa: F401
