"""Drift detection between a baseline snapshot and a fresh capture.

Per case, three test families from :mod:`repro.regress.stats`:

* **series** -- per-window paired deltas over each serialized series
  (throughput / p99 / goodput / cancel-rate) with a deterministic
  bootstrap CI; drift needs the CI to exclude zero *and* a relative
  change above the tolerance.  A mismatched window grid is itself
  drift (a run whose horizon changed is not the same run).
* **counts** -- two-sample Poisson z-tests over the health-event
  counts by rule, the DecisionKind histogram, and the audit-verdict
  mix.
* **scalars** -- relative-tolerance checks over the summary fields,
  plus exact digest equality for custom-runner families (dag/cluster).

The sims are deterministic per seed, so an unchanged tree compares
exactly equal and the verdict is byte-identical across hash seeds; any
drift therefore reflects a real behavioural change, and the stats only
exist to separate material changes from trivia.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..telemetry.series import SERIES_KEYS
from .baseline import SUMMARY_FIELDS, CaseCapture, RegressBaseline
from .stats import (
    BOOTSTRAP_RESAMPLES,
    REL_TOL,
    count_drift,
    paired_series_drift,
    scalar_drift,
)


@dataclass
class CaseDrift:
    """Every drift test's outcome for one named capture."""

    name: str
    missing: bool = False
    #: series key -> :func:`paired_series_drift` result.
    series: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: "health:<rule>" / "decision:<kind>" / "audit:<verdict>" ->
    #: :func:`count_drift` result.
    counts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: summary field -> :func:`scalar_drift` result.
    scalars: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Digest equality for custom-runner families (None = no digest).
    digest: Optional[Dict[str, Any]] = None
    grid_mismatch: bool = False

    def drifting(self) -> List[str]:
        """Names of the drifting items, stable order."""
        items: List[str] = []
        if self.missing:
            items.append("missing")
        if self.grid_mismatch:
            items.append("series:grid")
        for key in SERIES_KEYS:
            result = self.series.get(key)
            if result and result.get("drifted"):
                items.append(f"series:{key}")
        for key in sorted(self.counts):
            if self.counts[key].get("drifted"):
                items.append(f"count:{key}")
        for key in SUMMARY_FIELDS:
            result = self.scalars.get(key)
            if result and result.get("drifted"):
                items.append(f"summary:{key}")
        if self.digest and self.digest.get("drifted"):
            items.append("digest")
        return items

    @property
    def drifted(self) -> bool:
        return bool(self.drifting())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "missing": self.missing,
            "grid_mismatch": self.grid_mismatch,
            "series": self.series,
            "counts": self.counts,
            "scalars": self.scalars,
            "digest": self.digest,
            "drifting": self.drifting(),
        }


@dataclass
class RegressReport:
    """The full check verdict: one :class:`CaseDrift` per capture."""

    baseline_name: str
    current_name: str
    rel_tol: float
    cases: List[CaseDrift] = field(default_factory=list)

    @property
    def drifted(self) -> bool:
        return any(case.drifted for case in self.cases)

    def drifting_names(self) -> List[str]:
        """Flat ``case/item`` names of everything that drifted."""
        return [
            f"{case.name}/{item}"
            for case in self.cases
            for item in case.drifting()
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_name,
            "current": self.current_name,
            "rel_tol": self.rel_tol,
            "drifted": self.drifted,
            "drifting": self.drifting_names(),
            "cases": [case.to_dict() for case in self.cases],
        }

    def format(self) -> str:
        lines = [
            f"regress check vs baseline {self.baseline_name!r} "
            f"(rel tol {self.rel_tol:.0%})",
            "",
        ]
        for case in self.cases:
            drifting = case.drifting()
            verdict = (
                "DRIFT: " + ", ".join(drifting) if drifting else "ok"
            )
            lines.append(f"  {case.name:<24} {verdict}")
            for item in drifting:
                detail = self._detail(case, item)
                if detail:
                    lines.append(f"    {item}: {detail}")
        lines.append("")
        if self.drifted:
            names = ", ".join(self.drifting_names())
            lines.append(f"verdict: DRIFT ({names})")
        else:
            lines.append("verdict: PASS")
        return "\n".join(lines)

    @staticmethod
    def _detail(case: CaseDrift, item: str) -> str:
        kind, _, key = item.partition(":")
        if kind == "series" and key in case.series:
            result = case.series[key]
            ci = result.get("ci") or [None, None]
            return (
                f"mean {result.get('base_mean')} -> "
                f"{result.get('cur_mean')} "
                f"(delta CI [{ci[0]}, {ci[1]}], "
                f"rel {result.get('rel_change')})"
            )
        if kind == "count":
            result = case.counts.get(key, {})
            return (
                f"{result.get('base')} -> {result.get('cur')} "
                f"(z={result.get('z')})"
            )
        if kind == "summary":
            result = case.scalars.get(item.split(":", 1)[1], {})
            return f"{result.get('base')} -> {result.get('cur')}"
        if item == "digest" and case.digest:
            return (
                f"{(case.digest.get('base') or '?')[:12]} -> "
                f"{(case.digest.get('cur') or '?')[:12]}"
            )
        return ""


def _compare_case(
    base: CaseCapture,
    cur: Optional[CaseCapture],
    rel_tol: float,
    resamples: int,
) -> CaseDrift:
    drift = CaseDrift(name=base.name)
    if cur is None:
        drift.missing = True
        return drift
    if base.series is not None or cur.series is not None:
        base_series = base.series or {}
        cur_series = cur.series or {}
        base_grid = (base_series.get("window"), base_series.get("end"))
        cur_grid = (cur_series.get("window"), cur_series.get("end"))
        if base_grid != cur_grid:
            drift.grid_mismatch = True
        for key in SERIES_KEYS:
            drift.series[key] = paired_series_drift(
                base_series.get(key, ()),
                cur_series.get(key, ()),
                rel_tol=rel_tol,
                resamples=resamples,
            )
    for prefix, base_map, cur_map in (
        ("health", base.health_counts, cur.health_counts),
        ("decision", base.decision_mix, cur.decision_mix),
        ("audit", base.audit_mix, cur.audit_mix),
    ):
        for key in sorted(set(base_map) | set(cur_map)):
            drift.counts[f"{prefix}:{key}"] = count_drift(
                base_map.get(key, 0), cur_map.get(key, 0)
            )
    for key in SUMMARY_FIELDS:
        drift.scalars[key] = scalar_drift(
            base.summary.get(key), cur.summary.get(key), rel_tol=rel_tol
        )
    if base.digest is not None or cur.digest is not None:
        drift.digest = {
            "base": base.digest,
            "cur": cur.digest,
            "drifted": base.digest != cur.digest,
        }
    return drift


def compare(
    baseline: RegressBaseline,
    current: RegressBaseline,
    rel_tol: float = REL_TOL,
    resamples: int = BOOTSTRAP_RESAMPLES,
) -> RegressReport:
    """Run every drift test; captures are matched by name."""
    report = RegressReport(
        baseline_name=baseline.name,
        current_name=current.name,
        rel_tol=rel_tol,
    )
    for base_case in baseline.cases:
        report.cases.append(
            _compare_case(
                base_case,
                current.case(base_case.name),
                rel_tol=rel_tol,
                resamples=resamples,
            )
        )
    return report
