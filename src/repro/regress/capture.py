"""Capture regress snapshots by running targets through the campaign.

Capture and check share one code path: resolve ``(name, RunSpec)``
entries, execute them via :func:`repro.campaign.execute` (content-
addressed caching applies -- an unchanged tree re-serves the baseline's
own runs from cache), and condense each outcome into a
:class:`~repro.regress.baseline.CaseCapture`.

:func:`apply_perturbation` is the seeded-drift hook: it merges config
overrides into the ``atropos_overrides`` of every case-family spec, the
same direct-build path the ablations use, so a perturbed check runs a
*genuinely different* controller configuration (different cache key,
different behaviour) rather than faking drifted numbers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..campaign.spec import RunSpec
from .baseline import CaseCapture, RegressBaseline


def capture(
    name: str,
    entries: Sequence[Tuple[str, RunSpec]],
    jobs: Optional[int] = None,
    meta: Optional[Dict[str, Any]] = None,
    telemetry: bool = False,
    scrape_interval: float = 0.25,
) -> RegressBaseline:
    """Run the entries and snapshot the outcomes as a baseline.

    With ``telemetry=True`` every run executes under a scraping
    :class:`~repro.telemetry.TelemetrySession` (serial, cache reads
    bypassed -- a cache hit would yield no scrape windows) and each
    capture additionally carries :func:`summarize_telemetry`'s condensed
    window summaries.
    """
    from ..campaign import execute

    specs = [spec for _, spec in entries]
    if telemetry:
        from ..telemetry import TelemetrySession, telemetry_session

        session = TelemetrySession(interval=scrape_interval)
        with telemetry_session(session):
            outcomes = execute(specs, jobs=jobs)
        telemetry_runs = list(session.runs)
    else:
        outcomes = execute(specs, jobs=jobs)
        telemetry_runs = []
    cases = [
        CaseCapture.from_outcome(entry_name, outcome)
        for (entry_name, _), outcome in zip(entries, outcomes)
    ]
    for case, run in zip(cases, telemetry_runs):
        case.telemetry = summarize_telemetry(run)
    return RegressBaseline(name=name, cases=cases, meta=dict(meta or {}))


def summarize_telemetry(run: Any) -> Dict[str, Any]:
    """Condense one run's scrape windows into a deterministic summary.

    Per scraped key: sample count and min/mean/max/last over every
    finite window value, rounded to nine decimals (the same canonical
    rounding as the summary scalars), keys sorted -- so an unchanged
    tree produces a byte-identical telemetry block.
    """

    def _round(value: float) -> float:
        return round(value, 9)

    keys = sorted({key for window in run.windows for key in window.values})
    values: Dict[str, Dict[str, Any]] = {}
    for key in keys:
        samples = [
            window.values[key]
            for window in run.windows
            if key in window.values and window.values[key] == window.values[key]
        ]
        if not samples:
            continue
        values[key] = {
            "n": len(samples),
            "min": _round(min(samples)),
            "max": _round(max(samples)),
            "mean": _round(sum(samples) / len(samples)),
            "last": _round(samples[-1]),
        }
    return {
        "interval": run.interval,
        "windows": len(run.windows),
        "values": values,
    }


def recapture(
    baseline: RegressBaseline,
    jobs: Optional[int] = None,
    perturb: Optional[Dict[str, Any]] = None,
) -> RegressBaseline:
    """Re-run a baseline's own specs against the current tree.

    The baseline file is self-describing: each capture carries its
    RunSpec, so a check needs no target registry -- it replays exactly
    what was snapshotted (optionally perturbed).
    """
    entries = [
        (capture_.name, RunSpec.from_dict(capture_.spec))
        for capture_ in baseline.cases
    ]
    if perturb:
        entries = [
            (entry_name, apply_perturbation(spec, perturb))
            for entry_name, spec in entries
        ]
    meta = {"checked_against": baseline.name}
    if perturb:
        meta["perturb"] = dict(perturb)
    return capture(baseline.name, entries, jobs=jobs, meta=meta)


def apply_perturbation(
    spec: RunSpec, overrides: Dict[str, Any]
) -> RunSpec:
    """Merge config overrides into a case-family spec.

    Only ``case`` specs are perturbable (they own an
    ``atropos_overrides`` config path); other families pass through
    unchanged so a mixed-target check still perturbs what it can.
    """
    if spec.family != "case" or not overrides:
        return spec
    params = dict(spec.params)
    merged = dict(params.get("atropos_overrides") or {})
    merged.update(overrides)
    params["atropos_overrides"] = merged
    return RunSpec(
        experiment=spec.experiment,
        family=spec.family,
        params=params,
        seed=spec.seed,
        duration=spec.duration,
        warmup=spec.warmup,
        faults=spec.faults,
        adaptive=spec.adaptive,
        lever=spec.lever,
    )


def parse_perturbations(pairs: Iterable[str]) -> Dict[str, Any]:
    """Parse CLI ``KEY=VALUE`` pairs; values are JSON when they parse.

    ``slo_slack=0.8`` -> float, ``adaptive_thresholds=true`` -> bool,
    anything unparseable stays a string.
    """
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"perturbation {pair!r} is not KEY=VALUE"
            )
        try:
            value = json.loads(raw)
        except ValueError:
            value = raw
        overrides[key] = value
    return overrides
