"""Derive per-case threshold schedules from baseline history.

Closes the Autothrottle-style loop (arxiv 2212.12180: mined performance
history beats static thresholds): the baseline snapshot already records
*when* each case's tail latency blows past the health ceiling, so a
future run does not need to wait for the in-loop adaptive policy to
re-learn that -- it can walk into the run with a schedule that
tightens the tail trigger just before the known-bad phase and relaxes
it after.

:func:`derive_schedule` mines one capture's per-window p99 series for
sustained ceiling violations (same ``5 x SLO`` / 3-window parameters as
the ``p99-ceiling`` health rule) and emits ``{"time", "param",
"value"}`` entries consumable by
:attr:`repro.core.config.AtroposConfig.history_schedule`; the
:class:`repro.core.adaptive.HistoryScheduleSource` publishes due
entries in-run and the
:class:`~repro.core.adaptive.AdaptiveThresholdPolicy` applies them as
audited ``DecisionKind.ADAPT`` moves.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .baseline import CaseCapture, RegressBaseline

#: Ceiling multiple over the SLO (matches the p99-ceiling health rule).
CEILING_MULTIPLE = 5.0
#: Consecutive violating windows before a phase counts as sustained
#: (matches ``AtroposConfig.adapt_p99_sustain``).
SUSTAIN_WINDOWS = 3
#: Minimum completions per window before its p99 is trusted.
MIN_SAMPLES = 3
#: Tightened tail trigger during a known-bad phase.
TIGHT_SLACK = 1.05
#: Relaxed (default-config) tail trigger outside bad phases.
BASE_SLACK = 1.2


def derive_schedule(
    capture: CaseCapture,
    tight_slack: float = TIGHT_SLACK,
    base_slack: float = BASE_SLACK,
    sustain: int = SUSTAIN_WINDOWS,
) -> List[Dict[str, Any]]:
    """Mine one capture's p99 series into a threshold schedule.

    Returns time-sorted entries; empty when the capture has no series,
    no SLO, or no sustained ceiling phase.  A tighten entry lands at
    the *start* of each sustained phase (the run reacts immediately
    instead of waiting out the sustain counter) and a relax entry one
    window after it ends.
    """
    series = capture.series
    if not series or series.get("slo") is None:
        return []
    slo = float(series["slo"])
    window = float(series.get("window") or 0.0)
    limit = CEILING_MULTIPLE * slo
    ends = series.get("end", ())
    p99s = series.get("p99", ())
    throughput = series.get("throughput", ())
    violating: List[bool] = []
    for i in range(len(ends)):
        p99 = p99s[i] if i < len(p99s) else None
        samples = (
            float(throughput[i]) * window if i < len(throughput) else 0.0
        )
        violating.append(
            p99 is not None and samples >= MIN_SAMPLES and p99 > limit
        )
    schedule: List[Dict[str, Any]] = []
    i = 0
    n = len(violating)
    while i < n:
        if not violating[i]:
            i += 1
            continue
        j = i
        while j < n and violating[j]:
            j += 1
        if j - i >= sustain:
            # Phase [i, j): tighten at the start of window i (one
            # window before its end), relax one window after the end.
            start = max(0.0, float(ends[i]) - window)
            schedule.append(
                {
                    "time": round(start, 9),
                    "param": "slo_slack",
                    "value": tight_slack,
                }
            )
            relax = float(ends[j - 1]) + window
            schedule.append(
                {
                    "time": round(relax, 9),
                    "param": "slo_slack",
                    "value": base_slack,
                }
            )
        i = j
    return schedule


def derive_schedules(
    baseline: RegressBaseline,
    tight_slack: float = TIGHT_SLACK,
    base_slack: float = BASE_SLACK,
) -> Dict[str, List[Dict[str, Any]]]:
    """Per-capture schedules for a whole baseline (empty ones omitted)."""
    out: Dict[str, List[Dict[str, Any]]] = {}
    for capture in baseline.cases:
        schedule = derive_schedule(
            capture, tight_slack=tight_slack, base_slack=base_slack
        )
        if schedule:
            out[capture.name] = schedule
    return out


def schedule_overrides(
    schedule: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """``atropos_overrides`` payload enabling a derived schedule.

    History schedules ride on the adaptive pipeline (they need the
    AdaptiveThresholdPolicy to apply and audit the moves), so the
    overrides switch adaptive thresholds on alongside the schedule.
    """
    return {
        "adaptive_thresholds": True,
        "history_schedule": list(schedule),
    }
