"""Shared drift statistics for ``repro bench`` and ``repro regress``.

Three test families, all deterministic (fixed-seed resampling, no wall
clock), all conservative by construction -- a regression gate that
flakes on noise trains people to ignore it:

* :func:`two_sided_regressed` -- the bench gate: a throughput mix
  counts as regressed only when **both** the raw and the
  calibration-normalized events/sec fall below their floors.  Extracted
  here so ``repro.bench`` and ``repro.regress`` can never disagree on
  what "regression" means.
* :func:`paired_series_drift` -- per-window paired deltas with a
  two-sided percentile-bootstrap confidence interval on the mean delta;
  drift requires the CI to exclude zero *and* the relative change to
  clear a tolerance (statistical significance alone is not practical
  significance on long series).
* :func:`count_drift` / :func:`scalar_drift` -- event-count and summary
  -scalar checks (two-sample Poisson z-test; relative tolerance).
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Optional, Sequence, Tuple

#: Default resamples for the bootstrap CI (deterministic: fixed seed).
BOOTSTRAP_RESAMPLES = 2000
#: Two-sided CI coverage (alpha = 0.05 -> 95% interval).
BOOTSTRAP_ALPHA = 0.05
#: Relative-change tolerance for series/scalar drift.
REL_TOL = 0.05
#: z threshold for the Poisson count test (~3 sigma, two-sided).
COUNT_Z_CRIT = 3.0
#: Count changes below this absolute size never drift (tiny-count noise).
COUNT_MIN_ABS = 3


# ----------------------------------------------------------------------
# The bench two-sided gate
# ----------------------------------------------------------------------
def two_sided_regressed(
    current_raw: float,
    current_norm: float,
    baseline_raw: float,
    baseline_norm: float,
    max_regression: float,
) -> bool:
    """True when BOTH raw and normalized throughput fall below floor.

    Rationale (shared by the bench gate and any regress throughput
    check): on the same machine raw throughput is the stable signal
    (normalization can *add* noise when background load hits the
    calibration loop and the cases unequally), while on a
    different-speed host only the normalized number is meaningful -- so
    a real engine regression trips both, but host variance alone rarely
    trips either.
    """
    tolerance = 1.0 - max_regression
    return (
        current_norm < baseline_norm * tolerance
        and current_raw < baseline_raw * tolerance
    )


# ----------------------------------------------------------------------
# Paired per-window series drift
# ----------------------------------------------------------------------
def bootstrap_mean_ci(
    deltas: Sequence[float],
    resamples: int = BOOTSTRAP_RESAMPLES,
    alpha: float = BOOTSTRAP_ALPHA,
    seed: int = 0,
) -> Tuple[float, float]:
    """Two-sided percentile-bootstrap CI of the mean of ``deltas``.

    Deterministic: resampling draws from ``random.Random(seed)``, so
    the same deltas always produce the same interval byte-for-byte
    (the regress verdict must be reproducible across hash seeds).
    """
    if not deltas:
        return (float("nan"), float("nan"))
    if len(deltas) == 1:
        return (deltas[0], deltas[0])
    rng = random.Random(seed)
    n = len(deltas)
    means = []
    for _ in range(max(1, resamples)):
        total = 0.0
        for _ in range(n):
            total += deltas[rng.randrange(n)]
        means.append(total / n)
    means.sort()
    lo_idx = int((alpha / 2.0) * len(means))
    hi_idx = min(len(means) - 1, int((1.0 - alpha / 2.0) * len(means)))
    return (means[lo_idx], means[hi_idx])


def paired_series_drift(
    base: Sequence[Optional[float]],
    cur: Sequence[Optional[float]],
    rel_tol: float = REL_TOL,
    resamples: int = BOOTSTRAP_RESAMPLES,
    alpha: float = BOOTSTRAP_ALPHA,
    seed: int = 0,
) -> Dict[str, Any]:
    """Drift verdict for two per-window series of equal window grid.

    Windows are paired positionally; windows where either side is
    missing (``None``/NaN -- e.g. p99 of an empty window) are skipped.
    Drift requires (a) the bootstrap CI of the mean paired delta to
    exclude zero AND (b) the relative magnitude of the mean delta to
    exceed ``rel_tol`` of the baseline's mean level.  Identical series
    short-circuit to "no drift" without resampling.
    """

    def finite(value: Optional[float]) -> bool:
        return isinstance(value, (int, float)) and value == value

    pairs = [
        (float(b), float(c))
        for b, c in zip(base, cur)
        if finite(b) and finite(c)
    ]
    out: Dict[str, Any] = {
        "n": len(pairs),
        "n_base": len(base),
        "n_cur": len(cur),
        "drifted": False,
        "mean_delta": None,
        "ci": None,
        "base_mean": None,
        "cur_mean": None,
        "rel_change": None,
    }
    if not pairs:
        # Nothing comparable; window-count mismatch is caught upstream.
        return out
    deltas = [c - b for b, c in pairs]
    base_mean = sum(b for b, _ in pairs) / len(pairs)
    cur_mean = sum(c for _, c in pairs) / len(pairs)
    mean_delta = sum(deltas) / len(deltas)
    scale = max(abs(base_mean), 1e-12)
    rel_change = mean_delta / scale
    out.update(
        mean_delta=round(mean_delta, 9),
        base_mean=round(base_mean, 9),
        cur_mean=round(cur_mean, 9),
        rel_change=round(rel_change, 9),
    )
    if all(delta == 0.0 for delta in deltas):
        out["ci"] = [0.0, 0.0]
        return out
    lo, hi = bootstrap_mean_ci(
        deltas, resamples=resamples, alpha=alpha, seed=seed
    )
    out["ci"] = [round(lo, 9), round(hi, 9)]
    excludes_zero = lo > 0.0 or hi < 0.0
    out["drifted"] = bool(excludes_zero and abs(rel_change) > rel_tol)
    return out


# ----------------------------------------------------------------------
# Count and scalar drift
# ----------------------------------------------------------------------
def count_drift(
    base: int,
    cur: int,
    z_crit: float = COUNT_Z_CRIT,
    min_abs: int = COUNT_MIN_ABS,
) -> Dict[str, Any]:
    """Two-sample Poisson z-test for event counts.

    Under the null (both counts Poisson with the same rate),
    ``z = (cur - base) / sqrt(cur + base)`` is ~N(0,1).  Drift needs
    ``|z| >= z_crit`` AND an absolute change of at least ``min_abs``
    (so 0 -> 1 health events never fails a gate on its own).
    """
    base = int(base)
    cur = int(cur)
    diff = cur - base
    total = base + cur
    z = diff / math.sqrt(total) if total > 0 else 0.0
    return {
        "base": base,
        "cur": cur,
        "z": round(z, 9),
        "drifted": bool(abs(z) >= z_crit and abs(diff) >= min_abs),
    }


def scalar_drift(
    base: Optional[float],
    cur: Optional[float],
    rel_tol: float = REL_TOL,
    abs_tol: float = 1e-9,
) -> Dict[str, Any]:
    """Relative-tolerance check for one summary scalar.

    ``None``/NaN on both sides is no drift; on exactly one side it is
    (a latency percentile appearing or vanishing is a real change).
    """

    def missing(value: Optional[float]) -> bool:
        return value is None or (
            isinstance(value, float) and value != value
        )

    out: Dict[str, Any] = {"base": base, "cur": cur, "drifted": False}
    if missing(base) and missing(cur):
        return out
    if missing(base) or missing(cur):
        out["drifted"] = True
        return out
    delta = float(cur) - float(base)
    out["delta"] = round(delta, 9)
    out["drifted"] = bool(
        abs(delta) > abs_tol + rel_tol * abs(float(base))
    )
    return out
