"""The checked-in regression-baseline snapshot format.

A :class:`RegressBaseline` is a named collection of
:class:`CaseCapture` entries -- one per regress target run -- holding
everything the drift tests compare: the replayable
:class:`~repro.campaign.spec.RunSpec`, the summary scalars, the
per-window series payload (``extras["series"]``), post-hoc health-event
counts by rule, the decision/audit mixes, and (for custom-runner
families) the result content digest.

The JSON form is canonical -- keys sorted, floats pre-rounded to nine
decimals by the producers -- so a capture of an unchanged tree is
byte-identical across interpreters and hash seeds, and the file can be
checked in (``REGRESS_BASELINE.json``) like the bench anchors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Baseline snapshot schema; bump on incompatible layout changes.
REGRESS_SCHEMA = 1

#: The checked-in anchor for the standard case family (repo root).
DEFAULT_BASELINE_PATH = "REGRESS_BASELINE.json"

#: Summary scalars snapshotted per capture (NaN serializes as None).
SUMMARY_FIELDS = (
    "throughput",
    "p50_latency",
    "p99_latency",
    "mean_latency",
    "drop_rate",
    "completed",
    "dropped",
    "cancelled",
    "timed_out",
)


def _round(value: Any) -> Any:
    if isinstance(value, float):
        if value != value:
            return None
        return round(value, 9)
    return value


@dataclass
class CaseCapture:
    """One regress target's snapshot (everything the drift tests see)."""

    name: str
    spec: Dict[str, Any]
    summary: Dict[str, Any] = field(default_factory=dict)
    series: Optional[Dict[str, Any]] = None
    health_counts: Dict[str, int] = field(default_factory=dict)
    decision_mix: Dict[str, int] = field(default_factory=dict)
    audit_mix: Dict[str, int] = field(default_factory=dict)
    digest: Optional[str] = None
    #: Scraped-window telemetry summaries (``repro regress baseline
    #: --telemetry``); informational, absent from plain captures.
    telemetry: Optional[Dict[str, Any]] = None

    @classmethod
    def from_outcome(cls, name: str, outcome: Any) -> "CaseCapture":
        """Condense one :class:`~repro.campaign.spec.RunOutcome`."""
        from ..telemetry.health import series_health_counts

        summary = {
            key: _round(getattr(outcome.summary, key))
            for key in SUMMARY_FIELDS
        }
        extras = outcome.extras
        series = extras.get("series")
        health_counts = (
            series_health_counts(series) if series is not None else {}
        )
        return cls(
            name=name,
            spec=outcome.spec.to_dict(),
            summary=summary,
            series=series,
            health_counts=health_counts,
            decision_mix=dict(extras.get("decision_mix", {})),
            audit_mix=dict(extras.get("audit_mix", {})),
            digest=extras.get("dag_digest") or extras.get("fleet_digest"),
        )

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "spec": self.spec,
            "summary": self.summary,
            "series": self.series,
            "health_counts": self.health_counts,
            "decision_mix": self.decision_mix,
            "audit_mix": self.audit_mix,
            "digest": self.digest,
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CaseCapture":
        return cls(
            name=data["name"],
            spec=data["spec"],
            summary=data.get("summary", {}),
            series=data.get("series"),
            health_counts=data.get("health_counts", {}),
            decision_mix=data.get("decision_mix", {}),
            audit_mix=data.get("audit_mix", {}),
            digest=data.get("digest"),
            telemetry=data.get("telemetry"),
        )


@dataclass
class RegressBaseline:
    """A named, replayable snapshot of the regress targets."""

    name: str
    cases: List[CaseCapture] = field(default_factory=list)
    #: Capture provenance (seed, targets, repro version); informational
    #: only -- never compared by the drift tests.
    meta: Dict[str, Any] = field(default_factory=dict)

    def case(self, name: str) -> Optional[CaseCapture]:
        for capture in self.cases:
            if capture.name == name:
                return capture
        return None

    def specs(self) -> List[Any]:
        """The RunSpecs to replay for a check, in capture order."""
        from ..campaign.spec import RunSpec

        return [RunSpec.from_dict(capture.spec) for capture in self.cases]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REGRESS_SCHEMA,
            "generated_by": "repro regress baseline",
            "name": self.name,
            "meta": self.meta,
            "cases": [capture.to_dict() for capture in self.cases],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RegressBaseline":
        schema = data.get("schema")
        if schema != REGRESS_SCHEMA:
            raise ValueError(
                f"unsupported regress baseline schema {schema!r} "
                f"(expected {REGRESS_SCHEMA})"
            )
        return cls(
            name=data.get("name", ""),
            meta=data.get("meta", {}),
            cases=[
                CaseCapture.from_dict(entry)
                for entry in data.get("cases", [])
            ],
        )

    @classmethod
    def read(cls, path: str) -> "RegressBaseline":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
