"""Reproduction of ATROPOS (SOSP 2025): overload control via targeted
task cancellation.

Package map:

* :mod:`repro.core` -- the ATROPOS framework: cancellable tasks, resource
  tracing, overload detection, contention/gain estimation, the
  multi-objective cancellation policy, and safe cancellation handling.
* :mod:`repro.sim` -- the discrete-event simulation kernel and resource
  primitives everything runs on.
* :mod:`repro.apps` -- six simulated applications (MySQL, PostgreSQL,
  Apache, Elasticsearch, Solr, etcd) instrumented with the ATROPOS APIs.
* :mod:`repro.baselines` -- Protego, pBox, DARC, PARTIES, SEDA.
* :mod:`repro.workloads` -- open-loop workload generation and the
  request-lifecycle driver.
* :mod:`repro.cases` -- the 16 reproduced real-world overload cases.
* :mod:`repro.experiments` -- runners regenerating every paper figure
  and table.
* :mod:`repro.study` -- the 151-application cancellation survey.
"""

from .core import (
    Atropos,
    AtroposConfig,
    CancellableTask,
    MultiObjectivePolicy,
    NullController,
    ResourceType,
    TaskKind,
)
from .sim import Environment, Rng

__version__ = "1.0.0"

__all__ = [
    "Atropos",
    "AtroposConfig",
    "CancellableTask",
    "Environment",
    "MultiObjectivePolicy",
    "NullController",
    "ResourceType",
    "Rng",
    "TaskKind",
    "__version__",
]
