"""Declarative fault plans: what goes wrong, when, and for how long.

A :class:`FaultPlan` is a picklable, JSON-able schedule of faults to
inject into one simulation run.  Plans are *data*, not behaviour: the
:class:`~repro.faults.injector.FaultInjector` interprets them against a
live simulation, and :class:`~repro.campaign.spec.RunSpec` embeds their
canonical dict form in the cache identity, so a faulted run caches and
parallelizes exactly like a clean one.

Each :class:`Fault` has a ``kind`` (one of :data:`FAULT_KINDS`), an
injection time ``at`` (simulated seconds), an optional ``duration``
(``None`` = permanent; otherwise the fault is reverted at
``at + duration``), and kind-specific ``params``:

``degrade``
    Capacity loss on a named resource via its ``degrade(factor)`` hook:
    disk bandwidth/latency multipliers, CPU core loss, thread-pool or
    buffer-pool shrinkage.  Params: ``resource`` (full or dotted-suffix
    name, e.g. ``buffer_pool`` matches ``mysql.buffer_pool``), ``factor``
    (0 < factor <= 1 fraction of nominal capacity retained).
``detector-noise``
    Corrupt the tail-latency signal entering
    :class:`~repro.core.detector.OverloadDetector`.  Params: ``noise``
    (multiplicative Gaussian sigma), ``lag`` (report the signal from
    ``lag`` seconds ago), ``bias`` (constant multiplier).
``estimator-noise``
    Corrupt per-(task, resource) gains entering the
    :class:`~repro.core.estimator.Estimator`.  Params: ``noise``,
    ``bias`` as above.
``cancel-delay``
    The cancellation initiator becomes slow: delivery of every cancel
    signal is deferred.  Params: ``delay`` (seconds).
``cancel-drop``
    The initiator becomes lossy: each issued cancel signal is lost in
    flight with probability ``probability`` (the controller believes it
    cancelled; the task keeps running and may be re-targeted after the
    cooldown).
``uncancellable``
    A stretch during which no task can be cancelled at all (e.g. all
    culprits inside non-interruptible sections); ``cancel()`` returns
    False for the whole window.  No params.
``burst``
    Arrival-rate spike: every open-loop source's rate is multiplied by
    ``factor`` for the window.
``partition``
    Network partition: registered :class:`~repro.core.distributed.Node`
    objects become unreachable, and -- in single-node harness runs --
    cancel-signal delivery fails for the window (the initiator cannot
    reach the task).  Heals at window end.
``crash``
    Node crash: registered nodes crash (``duration`` set = restart at
    window end); harness mapping is the same lost-delivery behaviour as
    ``partition``.

See ``docs/RESILIENCE.md`` for the schema and the mapping to the paper's
threats to validity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: kind -> (required params, optional params with defaults, description).
FAULT_KINDS: Dict[str, Tuple[Tuple[str, ...], Dict[str, Any], str]] = {
    "degrade": (
        ("resource", "factor"),
        {},
        "resource capacity loss via its degrade(factor) hook",
    ),
    "detector-noise": (
        (),
        {"noise": 0.0, "lag": 0.0, "bias": 1.0},
        "corrupt the detector's tail-latency signal (noise/lag/bias)",
    ),
    "estimator-noise": (
        (),
        {"noise": 0.0, "bias": 1.0},
        "corrupt the estimator's per-task resource gains",
    ),
    "cancel-delay": (
        ("delay",),
        {},
        "cancellation initiator delivers signals late",
    ),
    "cancel-drop": (
        ("probability",),
        {},
        "cancellation signals are lost in flight with a probability",
    ),
    "uncancellable": (
        (),
        {},
        "no task is cancellable for the window",
    ),
    "burst": (
        ("factor",),
        {},
        "open-loop arrival rates are multiplied by a factor",
    ),
    "partition": (
        (),
        {},
        "nodes partitioned; cancel deliveries fail until healed",
    ),
    "crash": (
        (),
        {},
        "nodes crash (restart at window end if a duration is set)",
    ),
}


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: kind + window + kind-specific params.

    Instances are immutable and canonicalized (params round-tripped
    through JSON) so equal faults serialize identically -- a requirement
    for stable campaign cache keys.
    """

    kind: str
    at: float = 0.0
    duration: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError("fault time `at` must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("fault duration must be positive (or None)")
        required, optional, _ = FAULT_KINDS[self.kind]
        merged = dict(optional)
        merged.update(self.params)
        missing = [name for name in required if name not in merged]
        if missing:
            raise ValueError(
                f"fault {self.kind!r} missing params: {missing}"
            )
        unknown = [
            name for name in merged if name not in required and name not in optional
        ]
        if unknown:
            raise ValueError(
                f"fault {self.kind!r} got unknown params: {unknown}"
            )
        object.__setattr__(
            self, "params", json.loads(json.dumps(merged, sort_keys=True))
        )

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    @property
    def end(self) -> Optional[float]:
        """Simulated time the fault is reverted (None = permanent)."""
        if self.duration is None:
            return None
        return self.at + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "at": self.at,
            "duration": self.duration,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Fault":
        return cls(
            kind=data["kind"],
            at=data.get("at", 0.0),
            duration=data.get("duration"),
            params=data.get("params", {}),
        )

    def describe(self) -> str:
        window = (
            f"t={self.at:g}s"
            if self.duration is None
            else f"t={self.at:g}s..{self.at + self.duration:g}s"
        )
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind} [{window}]" + (f" ({pairs})" if pairs else "")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered schedule of faults for one simulation run.

    Picklable and JSON-able; faults are kept sorted by (at, kind) so two
    plans with the same faults in any construction order are equal and
    hash to the same campaign cache key.
    """

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        normalized = tuple(
            sorted(
                self.faults,
                key=lambda f: (f.at, f.kind, json.dumps(f.params, sort_keys=True)),
            )
        )
        object.__setattr__(self, "faults", normalized)

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        return cls(faults=tuple(faults))

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def extended(self, *faults: Fault) -> "FaultPlan":
        """A new plan with extra faults appended (plans are immutable)."""
        return FaultPlan(faults=self.faults + tuple(faults))

    def kinds(self) -> List[str]:
        return sorted({f.kind for f in self.faults})

    def last_end(self) -> float:
        """Latest revert time over bounded faults (0.0 for an empty plan).

        Permanent faults contribute their injection time.  Used by the
        resilience experiment as the start of the recovery clock.
        """
        times = [f.end if f.end is not None else f.at for f in self.faults]
        return max(times, default=0.0)

    # ------------------------------------------------------------------
    # Serialization (the canonical dict embedded in RunSpec identities)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "FaultPlan":
        if not data:
            return cls()
        return cls(
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", ()))
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        if self.is_empty:
            return "(empty plan)"
        return "\n".join(f.describe() for f in self.faults)


# ----------------------------------------------------------------------
# Convenience constructors (the programmatic plan-building API)
# ----------------------------------------------------------------------

def degrade(
    resource: str, factor: float, at: float = 0.0,
    duration: Optional[float] = None,
) -> Fault:
    """Shrink a resource to ``factor`` of nominal capacity."""
    return Fault(
        "degrade", at=at, duration=duration,
        params={"resource": resource, "factor": factor},
    )


def detector_noise(
    noise: float = 0.0, lag: float = 0.0, bias: float = 1.0,
    at: float = 0.0, duration: Optional[float] = None,
) -> Fault:
    """Corrupt the detector's tail-latency input."""
    return Fault(
        "detector-noise", at=at, duration=duration,
        params={"noise": noise, "lag": lag, "bias": bias},
    )


def estimator_noise(
    noise: float = 0.0, bias: float = 1.0,
    at: float = 0.0, duration: Optional[float] = None,
) -> Fault:
    """Corrupt the estimator's per-task gains."""
    return Fault(
        "estimator-noise", at=at, duration=duration,
        params={"noise": noise, "bias": bias},
    )


def cancel_delay(
    delay: float, at: float = 0.0, duration: Optional[float] = None
) -> Fault:
    """Delay delivery of every cancel signal by ``delay`` seconds."""
    return Fault("cancel-delay", at=at, duration=duration, params={"delay": delay})


def cancel_drop(
    probability: float, at: float = 0.0, duration: Optional[float] = None
) -> Fault:
    """Lose each issued cancel signal with ``probability``."""
    return Fault(
        "cancel-drop", at=at, duration=duration,
        params={"probability": probability},
    )


def uncancellable(at: float = 0.0, duration: Optional[float] = None) -> Fault:
    """No task is cancellable during the window."""
    return Fault("uncancellable", at=at, duration=duration)


def burst(
    factor: float, at: float = 0.0, duration: Optional[float] = None
) -> Fault:
    """Multiply open-loop arrival rates by ``factor``."""
    return Fault("burst", at=at, duration=duration, params={"factor": factor})


def partition(at: float = 0.0, duration: Optional[float] = None) -> Fault:
    """Partition registered nodes; cancel deliveries fail until healed."""
    return Fault("partition", at=at, duration=duration)


def crash(at: float = 0.0, duration: Optional[float] = None) -> Fault:
    """Crash registered nodes (restart at window end if duration set)."""
    return Fault("crash", at=at, duration=duration)


# ----------------------------------------------------------------------
# Preset plans (the `repro faults list` / `run --plan NAME` catalogue)
# ----------------------------------------------------------------------

#: Standard chaos window used by presets and the resilience matrix: the
#: fault lands after the warm-up + overload onset and lifts before the
#: run ends, leaving room to measure recovery.
PRESET_AT = 4.0
PRESET_DURATION = 4.0


def named_plans() -> Dict[str, FaultPlan]:
    """The built-in plan catalogue, one per fault kind plus a combo.

    Targets assume a case-family run (resources resolve by dotted
    suffix; a target missing from the app is recorded as not-applied).
    """
    window = {"at": PRESET_AT, "duration": PRESET_DURATION}
    return {
        "pool-shrink": FaultPlan.of(degrade("buffer_pool", 0.25, **window)),
        "disk-degrade": FaultPlan.of(degrade("disk", 0.25, **window)),
        "cpu-loss": FaultPlan.of(degrade("cpu", 0.5, **window)),
        "noisy-detector": FaultPlan.of(
            detector_noise(noise=0.5, lag=0.5, **window)
        ),
        "noisy-estimator": FaultPlan.of(estimator_noise(noise=0.5, **window)),
        "slow-initiator": FaultPlan.of(cancel_delay(0.25, **window)),
        "lossy-initiator": FaultPlan.of(cancel_drop(0.75, **window)),
        "uncancellable-window": FaultPlan.of(uncancellable(**window)),
        "arrival-burst": FaultPlan.of(burst(2.0, **window)),
        "partition-window": FaultPlan.of(partition(**window)),
        "crash-restart": FaultPlan.of(crash(**window)),
        "perfect-storm": FaultPlan.of(
            burst(1.5, **window),
            detector_noise(noise=0.3, **window),
            cancel_drop(0.5, **window),
        ),
    }


def resolve_plan(name_or_path: str) -> FaultPlan:
    """Resolve a preset name or a JSON file path into a plan."""
    import os

    plans = named_plans()
    if name_or_path in plans:
        return plans[name_or_path]
    if os.path.exists(name_or_path):
        with open(name_or_path) as handle:
            return FaultPlan.from_json(handle.read())
    raise KeyError(
        f"unknown fault plan {name_or_path!r}; presets: {sorted(plans)} "
        "(or pass a path to a FaultPlan JSON file)"
    )
