"""Declarative fault injection for resilience experiments.

``repro.faults`` answers the paper's §6 threats-to-validity questions
empirically: how does targeted cancellation behave when its inputs lie
(noisy detector/estimator signals), when its actuator fails (delayed,
dropped, or suspended cancellations), when the substrate degrades
(shrunk pools, slow disks, lost cores), or when load spikes mid-run?

Two halves:

* :mod:`~repro.faults.plan` -- the picklable :class:`FaultPlan` /
  :class:`Fault` schema plus named presets.  Plans compose with
  :class:`repro.campaign.RunSpec` (they are part of the cache identity)
  so faulted runs cache, parallelize, and reproduce exactly like clean
  ones.
* :mod:`~repro.faults.injector` -- the :class:`FaultInjector` runtime
  that schedules faults as simulation processes, applies and reverts
  them against the live app/controller/workload, and records every
  action in the trace and decision audit.

Quickstart::

    from repro.faults import FaultPlan, cancel_drop
    from repro.experiments.case_family import case_spec
    from repro.campaign import execute

    plan = FaultPlan.of(cancel_drop(0.5, at=4.0, duration=4.0))
    spec = case_spec("demo", "c1", faults=plan.to_dict())
    outcome = execute([spec])[0]

See ``docs/RESILIENCE.md`` for the fault model and full schema.
"""

from .injector import FaultEvent, FaultInjector, SignalTap
from .plan import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    burst,
    cancel_delay,
    cancel_drop,
    crash,
    degrade,
    detector_noise,
    estimator_noise,
    named_plans,
    partition,
    resolve_plan,
    uncancellable,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "SignalTap",
    "burst",
    "cancel_delay",
    "cancel_drop",
    "crash",
    "degrade",
    "detector_noise",
    "estimator_noise",
    "named_plans",
    "partition",
    "resolve_plan",
    "uncancellable",
]
