"""Interprets a :class:`~repro.faults.plan.FaultPlan` against a live run.

The :class:`FaultInjector` is built by
:func:`repro.experiments.harness.run_simulation` when a plan is passed:
it spawns one simulation process per fault, which sleeps until the
fault's ``at``, applies it, and (for bounded faults) reverts it at the
window end.  Every injection and revert

* is appended to :attr:`FaultInjector.events` (JSON-able, deterministic
  -- this is what lands in campaign extras),
* emits an ``obs`` trace instant on the ``faults`` track when tracing is
  active, and
* is recorded in the controller's decision log as a
  :attr:`~repro.core.decision_log.DecisionKind.FAULT` event when the
  controller keeps one, so experiments can correlate faults with
  (mis)cancellations in a single timeline.

Application is *defensive by design*: a fault whose target does not
exist in this run -- a ``degrade`` naming a resource the app lacks, a
signal fault against a baseline controller with no detector, a
cancellation fault against a controller with no cancellation manager --
is recorded with ``applied=False`` instead of crashing the run.  The
chaos matrix sweeps one fault grid across heterogeneous systems and
relies on this.

Determinism: all randomness (signal noise, signal drops) comes from a
dedicated RNG stream forked from the run seed, so faulted runs are
byte-reproducible and cache/parallel-safe like clean ones.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..core.decision_log import DecisionKind
from .plan import Fault, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..core.distributed import Node
    from ..sim.environment import Environment
    from ..sim.rng import Rng


@dataclass
class FaultEvent:
    """One injection or revert, as recorded in the run's fault log."""

    time: float
    kind: str
    #: ``"inject"`` or ``"restore"``.
    phase: str
    #: False when the fault had no target in this run (recorded, not an
    #: error -- e.g. a detector fault against a baseline controller).
    applied: bool
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": round(self.time, 9),
            "kind": self.kind,
            "phase": self.phase,
            "applied": self.applied,
            "detail": self.detail,
        }


class SignalTap:
    """Corrupts a scalar signal stream: lag, then bias, then noise.

    Installed on :attr:`OverloadDetector.fault_tap` /
    :attr:`Estimator.gain_tap` by the injector.  With ``lag > 0`` the
    tap reports the raw value observed ``lag`` seconds ago (the oldest
    buffered sample until enough history accumulates).  Noise is
    multiplicative Gaussian, floored at zero so latencies and gains stay
    physical; NaN inputs (no samples in the window) pass through
    untouched.
    """

    def __init__(
        self,
        rng: "Rng",
        noise: float = 0.0,
        lag: float = 0.0,
        bias: float = 1.0,
    ) -> None:
        self.rng = rng
        self.noise = noise
        self.lag = lag
        self.bias = bias
        self._history: deque = deque()

    def __call__(self, now: float, value: float) -> float:
        if value != value:  # NaN: nothing to corrupt
            return value
        out = value
        if self.lag > 0.0:
            self._history.append((now, value))
            cutoff = now - self.lag
            while len(self._history) > 1 and self._history[1][0] <= cutoff:
                self._history.popleft()
            out = self._history[0][1]
        out *= self.bias
        if self.noise > 0.0:
            out *= max(0.0, 1.0 + self.rng.normal(0.0, self.noise))
        return out


class FaultInjector:
    """Schedules and applies one plan's faults over a simulation run."""

    def __init__(self, env: "Environment", plan: FaultPlan, rng: "Rng") -> None:
        self.env = env
        self.plan = plan
        self.rng = rng
        #: Deterministic record of every injection/revert.
        self.events: List[FaultEvent] = []
        #: Applied-and-not-yet-reverted fault count (telemetry gauge).
        self.active_faults = 0
        self._app: Any = None
        self._controller: Any = None
        self._driver: Any = None
        #: Distributed nodes opted in via :meth:`register_node`.
        self._nodes: List["Node"] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_node(self, node: "Node") -> None:
        """Opt a distributed node into partition/crash faults."""
        self._nodes.append(node)

    def arm(
        self,
        app: Any = None,
        controller: Any = None,
        driver: Any = None,
    ) -> None:
        """Bind run components and spawn one process per planned fault."""
        self._app = app
        self._controller = controller
        self._driver = driver
        for fault in self.plan:
            self.env.process(self._fault_process(fault))

    # ------------------------------------------------------------------
    # Per-fault lifecycle
    # ------------------------------------------------------------------
    def _fault_process(self, fault: Fault):
        if fault.at > 0.0:
            yield self.env.timeout(fault.at)
        applied, detail, revert = self._apply(fault)
        if applied:
            self.active_faults += 1
        self._record(fault, "inject", applied, detail)
        if fault.duration is not None:
            yield self.env.timeout(fault.duration)
            if revert is not None:
                revert()
            if applied:
                self.active_faults -= 1
            self._record(fault, "restore", applied, detail)

    def _record(
        self, fault: Fault, phase: str, applied: bool, detail: str
    ) -> None:
        now = self.env.now
        self.events.append(
            FaultEvent(
                time=now, kind=fault.kind, phase=phase,
                applied=applied, detail=detail,
            )
        )
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant(
                now,
                "fault",
                f"{phase} {fault.kind}",
                "faults",
                applied=applied,
                detail=detail,
            )
        log = getattr(self._controller, "decision_log", None)
        if log is not None:
            log.record(
                now,
                DecisionKind.FAULT,
                f"{phase} {fault.kind}",
                applied=applied,
                detail=detail,
            )

    def _apply(
        self, fault: Fault
    ) -> Tuple[bool, str, Optional[Callable[[], None]]]:
        """Dispatch one fault; returns (applied, detail, revert)."""
        handler = getattr(self, "_apply_" + fault.kind.replace("-", "_"))
        return handler(fault)

    # ------------------------------------------------------------------
    # Resource degradation
    # ------------------------------------------------------------------
    def _find_degradable(self, target: str) -> Optional[Any]:
        """Resolve ``target`` to an app attribute with a degrade() hook.

        Matches the full resource name (``mysql.buffer_pool``) or a
        dotted suffix (``buffer_pool``), so plans stay portable across
        applications that follow the ``<app>.<resource>`` convention.
        Looks one level into list/tuple attributes too -- apps keep
        per-instance resources in collections (``mongodb``'s per-
        collection locks), and a resource found there but lacking a
        real ``degrade()`` must report *that*, not "no match".
        """
        if self._app is None:
            return None
        candidates = []
        for value in vars(self._app).values():
            if isinstance(value, (list, tuple)):
                candidates.extend(value)
            else:
                candidates.append(value)
        for value in candidates:
            name = getattr(value, "name", None)
            if not isinstance(name, str) or not callable(
                getattr(value, "degrade", None)
            ):
                continue
            if name == target or name.endswith("." + target):
                return value
        return None

    def _apply_degrade(self, fault: Fault):
        target = fault.param("resource")
        factor = fault.param("factor")
        resource = self._find_degradable(target)
        if resource is None:
            return False, f"no degradable resource matching {target!r}", None
        try:
            resource.degrade(factor)
        except NotImplementedError:
            return False, f"{resource.name} has no degrade() hook", None
        return (
            True,
            f"{resource.name} degraded to {factor:g}x nominal",
            resource.restore,
        )

    # ------------------------------------------------------------------
    # Signal corruption
    # ------------------------------------------------------------------
    def _apply_detector_noise(self, fault: Fault):
        detector = getattr(self._controller, "detector", None)
        if detector is None or not hasattr(detector, "fault_tap"):
            return False, "controller has no detector tap", None
        tap = SignalTap(
            self.rng.fork("detector-tap"),
            noise=fault.param("noise", 0.0),
            lag=fault.param("lag", 0.0),
            bias=fault.param("bias", 1.0),
        )
        detector.fault_tap = tap

        def revert(detector=detector):
            detector.fault_tap = None

        return (
            True,
            f"detector tail-latency tap (noise={fault.param('noise', 0.0):g}, "
            f"lag={fault.param('lag', 0.0):g}, bias={fault.param('bias', 1.0):g})",
            revert,
        )

    def _apply_estimator_noise(self, fault: Fault):
        estimator = getattr(self._controller, "estimator", None)
        if estimator is None or not hasattr(estimator, "gain_tap"):
            return False, "controller has no estimator tap", None
        tap = SignalTap(
            self.rng.fork("estimator-tap"),
            noise=fault.param("noise", 0.0),
            bias=fault.param("bias", 1.0),
        )
        estimator.gain_tap = tap

        def revert(estimator=estimator):
            estimator.gain_tap = None

        return (
            True,
            f"estimator gain tap (noise={fault.param('noise', 0.0):g}, "
            f"bias={fault.param('bias', 1.0):g})",
            revert,
        )

    # ------------------------------------------------------------------
    # Cancellation failures
    # ------------------------------------------------------------------
    def _cancellation(self):
        return getattr(self._controller, "cancellation", None)

    def _apply_cancel_delay(self, fault: Fault):
        manager = self._cancellation()
        if manager is None:
            return False, "controller has no cancellation manager", None
        delay = fault.param("delay")
        manager.initiator_delay = delay

        def revert(manager=manager):
            manager.initiator_delay = 0.0

        return True, f"initiator delayed by {delay:g}s", revert

    def _apply_cancel_drop(self, fault: Fault):
        manager = self._cancellation()
        if manager is None:
            return False, "controller has no cancellation manager", None
        probability = fault.param("probability")
        manager.drop_probability = probability
        manager.fault_rng = self.rng.fork("cancel-drop")

        def revert(manager=manager):
            manager.drop_probability = 0.0

        return True, f"signals dropped with p={probability:g}", revert

    def _apply_uncancellable(self, fault: Fault):
        manager = self._cancellation()
        if manager is None:
            return False, "controller has no cancellation manager", None
        manager.suspended = True

        def revert(manager=manager):
            manager.suspended = False

        return True, "all tasks un-cancellable", revert

    # ------------------------------------------------------------------
    # Workload bursts
    # ------------------------------------------------------------------
    def _burstable_sources(self) -> List[Any]:
        workload = getattr(self._driver, "workload", None)
        if workload is None:
            return []
        return [
            source
            for source in getattr(workload, "sources", [])
            if hasattr(source, "burst_factor")
        ]

    def _apply_burst(self, fault: Fault):
        factor = fault.param("factor")
        sources = self._burstable_sources()
        if not sources:
            return False, "no open-loop sources to burst", None
        for source in sources:
            source.burst_factor *= factor

        def revert(sources=sources, factor=factor):
            for source in sources:
                source.burst_factor /= factor

        return (
            True,
            f"{len(sources)} source(s) burst to {factor:g}x rate",
            revert,
        )

    # ------------------------------------------------------------------
    # Partition / crash
    # ------------------------------------------------------------------
    def _apply_partition(self, fault: Fault):
        return self._node_fault(fault, crash=False)

    def _apply_crash(self, fault: Fault):
        return self._node_fault(fault, crash=True)

    def _node_fault(self, fault: Fault, crash: bool):
        """Partition or crash registered nodes; in runs without a task
        tree, the initiator itself becomes unreachable instead (cancel
        deliveries fail for the window)."""
        verb = "crash" if crash else "partition"
        nodes = list(self._nodes)
        reverts: List[Callable[[], None]] = []
        detail_parts: List[str] = []
        if nodes:
            for node in nodes:
                if crash:
                    node.crash()
                    reverts.append(node.restart)
                else:
                    node.partition()
                    reverts.append(node.heal)
            detail_parts.append(f"{len(nodes)} node(s) {verb}ed")
        manager = self._cancellation()
        if manager is not None and not nodes:
            # Single-node harness mapping: the cancellation path crosses
            # the failed link, so every signal is lost for the window.
            manager.drop_probability = 1.0
            manager.fault_rng = manager.fault_rng or self.rng.fork(verb)

            def revert_manager(manager=manager):
                manager.drop_probability = 0.0

            reverts.append(revert_manager)
            detail_parts.append("cancel deliveries fail")
        if not reverts:
            return False, f"nothing to {verb} (no nodes, no initiator)", None

        def revert(reverts=reverts):
            for undo in reverts:
                undo()

        return True, "; ".join(detail_parts), revert
