"""Parallel, cache-aware experiment campaign runner.

Turns simulation runs into declarative, picklable :class:`RunSpec`
objects and executes campaigns of them through a ``multiprocessing``
worker pool backed by a content-addressed on-disk result store
(``.repro-cache/``).  Guarantees:

* **Bit-identical to serial** -- per-seed determinism is preserved and
  outcomes are merged in spec order, never completion order, so
  ``repro all --jobs 8`` produces byte-identical reports to ``--jobs 1``.
* **Warm cache is near-free** -- a repeat invocation resolves every spec
  from the store; cache keys cover the spec, the repro version, and a
  source fingerprint, so results can never outlive the code that
  produced them.

Typical use (inside an experiment module)::

    from ..campaign import RunSpec, execute

    specs = [RunSpec("fig2", "fig2.point", {"load": l, "dump_weight": w},
                     seed=seed, duration=10.0, warmup=2.0)
             for l in loads for w in weights]
    outcomes = execute(specs)          # spec order, cached, parallel

See :mod:`repro.campaign.spec` for cache identity, \
:mod:`repro.campaign.store` for the on-disk layout, and \
:mod:`repro.campaign.runner` for execution semantics.
"""

from .runner import (
    CampaignStats,
    ResolvedSettings,
    current_settings,
    execute,
    reset_session_stats,
    session_stats,
    settings,
)
from .spec import (
    CACHE_SCHEMA,
    RunOutcome,
    RunSpec,
    code_fingerprint,
    load_all_families,
)
from .store import ResultStore, StoreStats, default_cache_dir

__all__ = [
    "CACHE_SCHEMA",
    "CampaignStats",
    "ResolvedSettings",
    "ResultStore",
    "RunOutcome",
    "RunSpec",
    "StoreStats",
    "code_fingerprint",
    "current_settings",
    "default_cache_dir",
    "execute",
    "load_all_families",
    "reset_session_stats",
    "session_stats",
    "settings",
]
