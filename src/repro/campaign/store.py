"""Content-addressed on-disk result store for campaign runs.

Layout (under the cache root, default ``.repro-cache/``)::

    .repro-cache/
      v1/
        ab/abcdef....json      # one JSON payload per cache key
      index.jsonl              # append-only log of stored entries

Keys are :meth:`repro.campaign.spec.RunSpec.cache_key` digests, which
already encode the repro version and a source fingerprint, so the store
itself never has to reason about invalidation: stale entries simply stop
being addressed and ``repro cache clear`` reclaims the space.

Writes are single-writer (the campaign parent process) and atomic
(temp file + ``os.replace``), so a crashed run can never leave a
half-written payload behind a valid key.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment override for the cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root: $REPRO_CACHE_DIR or ./.repro-cache."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


@dataclass
class StoreStats:
    """Summary of what's on disk under a cache root."""

    root: Path
    entries: int
    total_bytes: int
    index_records: int

    def format(self) -> str:
        size = self.total_bytes
        for unit in ("B", "KiB", "MiB", "GiB"):
            if size < 1024 or unit == "GiB":
                break
            size /= 1024.0
        pretty = f"{size:.1f} {unit}" if unit != "B" else f"{size} B"
        return (
            f"cache dir:     {self.root}\n"
            f"entries:       {self.entries}\n"
            f"size:          {pretty}\n"
            f"index records: {self.index_records}"
        )


class ResultStore:
    """Filesystem-backed map from cache key to run payload."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def _data_dir(self) -> Path:
        return self.root / f"v{_schema()}"

    @property
    def _index_path(self) -> Path:
        return self.root / "index.jsonl"

    def _path(self, key: str) -> Path:
        return self._data_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a payload; None on miss or any unreadable entry."""
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != _schema():
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a payload atomically and append an index record."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
        spec = payload.get("spec", {})
        record = {
            "key": key,
            "experiment": spec.get("experiment", ""),
            "family": spec.get("family", ""),
            "seed": spec.get("seed", 0),
            "walltime": payload.get("walltime", 0.0),
        }
        with open(self._index_path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        if self._data_dir.is_dir():
            for path in self._data_dir.rglob("*.json"):
                entries += 1
                total += path.stat().st_size
        index_records = 0
        if self._index_path.is_file():
            with open(self._index_path) as handle:
                index_records = sum(1 for line in handle if line.strip())
        return StoreStats(
            root=self.root,
            entries=entries,
            total_bytes=total,
            index_records=index_records,
        )

    def clear(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        removed = self.stats().entries
        if self._data_dir.is_dir():
            shutil.rmtree(self._data_dir)
        if self._index_path.is_file():
            self._index_path.unlink()
        return removed


def _schema() -> int:
    from .spec import CACHE_SCHEMA

    return CACHE_SCHEMA
