"""Content-addressed on-disk result store for campaign runs.

Layout (under the cache root, default ``.repro-cache/``)::

    .repro-cache/
      v1/
        ab/abcdef....json      # one JSON payload per cache key
      index.jsonl              # append-only log of stored entries

Keys are :meth:`repro.campaign.spec.RunSpec.cache_key` digests, which
already encode the repro version and a source fingerprint, so the store
itself never has to reason about invalidation: stale entries simply stop
being addressed and ``repro cache clear`` reclaims the space.

Writes are single-writer (the campaign parent process) and atomic
(temp file + ``os.replace``), so a crashed run can never leave a
half-written payload behind a valid key.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment override for the cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root: $REPRO_CACHE_DIR or ./.repro-cache."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


@dataclass
class StoreStats:
    """Summary of what's on disk under a cache root.

    ``entries``/``total_bytes`` cover the *current* CACHE_SCHEMA only
    (the entries a run can actually hit); older schema versions are
    counted separately as stale.
    """

    root: Path
    entries: int
    total_bytes: int
    index_records: int
    #: Addressable entries per experiment family (current schema).
    by_family: Dict[str, int] = field(default_factory=dict)
    #: Entry count per on-disk schema version (current one included).
    by_schema: Dict[int, int] = field(default_factory=dict)
    #: Entries under older ``v<n>`` dirs; never addressed again.
    stale_entries: int = 0
    stale_bytes: int = 0

    def format(self) -> str:
        size = self.total_bytes
        for unit in ("B", "KiB", "MiB", "GiB"):
            if size < 1024 or unit == "GiB":
                break
            size /= 1024.0
        pretty = f"{size:.1f} {unit}" if unit != "B" else f"{size} B"
        lines = [
            f"cache dir:     {self.root}",
            f"entries:       {self.entries}",
            f"size:          {pretty}",
            f"index records: {self.index_records}",
            f"schema:        v{_schema()}",
        ]
        if self.by_family:
            lines.append("by family:")
            for family, count in sorted(self.by_family.items()):
                lines.append(f"  {family or '?':<12} {count}")
        if len(self.by_schema) > 1 or self.stale_entries:
            lines.append("by schema:")
            for schema, count in sorted(self.by_schema.items()):
                marker = "" if schema == _schema() else "  (stale)"
                lines.append(f"  v{schema:<11} {count}{marker}")
        if self.stale_entries:
            lines.append(
                f"warning: {self.stale_entries} stale entr"
                f"{'y' if self.stale_entries == 1 else 'ies'} from "
                "older schema versions will never be served again; "
                "run `repro cache clear` to reclaim the space"
            )
        return "\n".join(lines)


class ResultStore:
    """Filesystem-backed map from cache key to run payload."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def _data_dir(self) -> Path:
        return self.root / f"v{_schema()}"

    @property
    def _index_path(self) -> Path:
        return self.root / "index.jsonl"

    def _path(self, key: str) -> Path:
        return self._data_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a payload; None on miss or any unreadable entry."""
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != _schema():
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a payload atomically and append an index record."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
        spec = payload.get("spec", {})
        record = {
            "key": key,
            "experiment": spec.get("experiment", ""),
            "family": spec.get("family", ""),
            "seed": spec.get("seed", 0),
            "walltime": payload.get("walltime", 0.0),
        }
        with open(self._index_path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        by_family: Dict[str, int] = {}
        by_schema: Dict[int, int] = {}
        stale_entries = 0
        stale_bytes = 0
        current = _schema()
        for data_dir in self._schema_dirs():
            schema = int(data_dir.name[1:])
            for path in sorted(data_dir.rglob("*.json")):
                size = path.stat().st_size
                by_schema[schema] = by_schema.get(schema, 0) + 1
                if schema != current:
                    stale_entries += 1
                    stale_bytes += size
                    continue
                entries += 1
                total += size
                family = "?"
                try:
                    with open(path, "r") as handle:
                        payload = json.load(handle)
                    family = payload.get("spec", {}).get("family", "?")
                except (OSError, ValueError):
                    pass
                by_family[family] = by_family.get(family, 0) + 1
        index_records = 0
        if self._index_path.is_file():
            with open(self._index_path) as handle:
                index_records = sum(1 for line in handle if line.strip())
        return StoreStats(
            root=self.root,
            entries=entries,
            total_bytes=total,
            index_records=index_records,
            by_family=by_family,
            by_schema=by_schema,
            stale_entries=stale_entries,
            stale_bytes=stale_bytes,
        )

    def _schema_dirs(self):
        """Every on-disk ``v<n>`` data dir, any schema version."""
        if not self.root.is_dir():
            return []
        return sorted(
            (
                path
                for path in self.root.iterdir()
                if path.is_dir() and re.fullmatch(r"v\d+", path.name)
            ),
            key=lambda path: int(path.name[1:]),
        )

    def clear(self) -> int:
        """Delete every stored entry (all schema versions); returns how
        many were removed."""
        stats = self.stats()
        removed = stats.entries + stats.stale_entries
        for data_dir in self._schema_dirs():
            shutil.rmtree(data_dir)
        if self._index_path.is_file():
            self._index_path.unlink()
        return removed


def _schema() -> int:
    from .spec import CACHE_SCHEMA

    return CACHE_SCHEMA
