"""Declarative run specifications and their cache identity.

A :class:`RunSpec` is the picklable, JSON-able description of one
simulation run: which registered simulation *family* to build
(:func:`repro.experiments.harness.register_sim`), the parameter dict the
builder receives, the seed, and optional duration/warm-up overrides.
Experiments enumerate their sweeps as RunSpecs and hand them to
:func:`repro.campaign.execute`, which runs them through a worker pool
and a content-addressed result store.

Cache identity is the SHA-256 of the *physical* run description (family
+ params + seed + duration + warmup + fault plan) plus the repro version and a
fingerprint of the package source -- so two experiments sharing a run
(e.g. the per-case baselines of fig9/fig10/fig12/fig13) share one cache
entry, and any code change invalidates the whole cache rather than
serving stale results.  The ``experiment`` field is bookkeeping only and
deliberately excluded from the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from importlib import import_module
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from ..sim.metrics import Summary

#: Bump when the payload layout or extras schema changes incompatibly.
#: 2: RunSpec grew the ``faults`` identity field (repro.faults) and
#: extras gained cancelled_ops / cancel_signals_dropped / fault fields.
#: 3: extras may gain health_events / telemetry fields
#: (repro.telemetry), and the windowing convention behind the cached
#: fault timeline moved to the shared ceil-based helper.
#: 4: RunSpec grew the ``adaptive`` identity field (health-driven
#: adaptive thresholds) and extras may gain adaptations / adapt_events.
#: 5: SimBuild grew custom ``runner`` callables; the new ``dag`` family
#: (microservice-DAG mesh runs) stores DagResult payloads in extras.
#: 6: extras gained the always-present ``series`` window payload plus
#: ``decision_mix`` / ``audit_mix`` digests (the ``repro regress``
#: observability surface), and the ``cluster`` family joined the
#: registry (FleetResult payloads in extras).
#: 7: RunSpec grew the ``lever`` identity field (mitigation levers,
#: :mod:`repro.core.levers`); audits carry a ``lever`` tag and the
#: ``mongodb`` app family joined the case registry (c17/c18).
CACHE_SCHEMA = 7

#: Modules whose import populates the sim-builder registry.  Worker
#: processes (and cold parents) import these before resolving families;
#: the list is the campaign analogue of experiments._EXPERIMENT_RUNNERS.
FAMILY_MODULES = (
    "repro.experiments.case_family",
    "repro.experiments.fig2_buffer_pool",
    "repro.experiments.fig3_lock_contention",
    "repro.experiments.fig13_policies",
    "repro.experiments.fig14_overhead",
    "repro.experiments.dag_overload",
    "repro.experiments.cluster_attribution",
)

_families_loaded = False


def load_all_families() -> None:
    """Import every module that registers simulation families.

    Idempotent and cheap after the first call; invoked by the runner in
    the parent and by spawn-started workers (fork-started workers
    inherit the populated registry).
    """
    global _families_loaded
    if _families_loaded:
        return
    for module in FAMILY_MODULES:
        import_module(module)
    _families_loaded = True


_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over the repro package source (path + content pairs).

    Part of every cache key: editing any ``repro`` source file yields a
    different fingerprint, so cached results can never silently outlive
    the code that produced them.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def _canonical_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize params to plain JSON types (tuples -> lists, etc.)."""
    return json.loads(json.dumps(params, sort_keys=True))


@dataclass(frozen=True)
class RunSpec:
    """One declarative, picklable simulation run.

    Attributes:
        experiment: owning experiment id (``fig2``); bookkeeping only,
            excluded from cache identity.
        family: registered sim-builder name (``fig2.point``, ``case``).
        params: JSON-able parameters handed to the builder.
        seed: RNG seed; runs are deterministic per seed.
        duration: simulated seconds (None = family default).
        warmup: summary warm-up horizon (None = family default).
        faults: optional :meth:`repro.faults.FaultPlan.to_dict` payload
            injected into the run; part of the cache identity (a faulted
            run must never share a cache entry with its clean twin).
        adaptive: run the controller with health-driven adaptive
            thresholds (``AtroposConfig.adaptive_thresholds``).  Part of
            the cache identity: fixed and adaptive twins of the same
            case must never share a cache entry.
        lever: mitigation lever for the controller
            (``AtroposConfig.lever``; :mod:`repro.core.levers`).  None
            means the family default (targeted cancellation).  Part of
            the cache identity: cancel / lock-reshape / composite twins
            of the same case must never share a cache entry.
    """

    experiment: str
    family: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    duration: Optional[float] = None
    warmup: Optional[float] = None
    faults: Optional[Dict[str, Any]] = None
    adaptive: bool = False
    lever: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _canonical_params(self.params))
        if self.faults is not None:
            object.__setattr__(
                self, "faults", _canonical_params(self.faults)
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def identity(self) -> Dict[str, Any]:
        """The physical run description hashed into the cache key."""
        return {
            "family": self.family,
            "params": self.params,
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "faults": self.faults,
            "adaptive": self.adaptive,
            "lever": self.lever,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {"experiment": self.experiment, **self.identity()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        return cls(
            experiment=data.get("experiment", ""),
            family=data["family"],
            params=data.get("params", {}),
            seed=data.get("seed", 0),
            duration=data.get("duration"),
            warmup=data.get("warmup"),
            faults=data.get("faults"),
            adaptive=data.get("adaptive", False),
            lever=data.get("lever"),
        )

    def cache_key(self) -> str:
        """Content address of this run under the current code version."""
        from .. import __version__

        blob = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "version": __version__,
                "code": code_fingerprint(),
                "spec": self.identity(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def label(self) -> str:
        """Deterministic display label (trace runs, progress lines)."""
        prefix = self.experiment or self.family
        return f"{prefix}:{self.family}:seed={self.seed}"


@dataclass
class RunOutcome:
    """What one executed (or cache-loaded) RunSpec produced."""

    spec: RunSpec
    summary: Summary
    extras: Dict[str, Any]
    #: In-worker wall-clock seconds spent building + simulating.
    walltime: float = 0.0
    cache_hit: bool = False
    #: Worker identity ("inline" or "pid-<n>"); diagnostic only.
    worker: str = "inline"

    # Convenience accessors mirroring RunResult ------------------------
    @property
    def throughput(self) -> float:
        return self.summary.throughput

    @property
    def p99_latency(self) -> float:
        return self.summary.p99_latency

    @property
    def drop_rate(self) -> float:
        return self.summary.drop_rate

    @property
    def cancels(self) -> int:
        return int(self.extras.get("cancels_issued", 0))

    @property
    def adaptations(self) -> int:
        """Threshold moves made by the adaptive policy (0 when fixed)."""
        return int(self.extras.get("adaptations", 0))

    @property
    def first_cancelled_op(self) -> Optional[str]:
        return self.extras.get("first_cancelled_op")

    def completed_ops(self) -> List[str]:
        """Names of operations with completed requests, sorted."""
        return sorted(self.extras.get("ops", {}))

    def mean_latency_over(self, op_names: Iterable[str]) -> float:
        """Mean completed latency over the named operations."""
        ops = self.extras.get("ops", {})
        total = 0.0
        count = 0
        for name in op_names:
            entry = ops.get(name)
            if entry:
                total += entry["latency_sum"]
                count += entry["n"]
        return total / count if count else float("nan")

    # Payload round trip ------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The JSON payload stored in the result cache."""
        from .. import __version__
        from dataclasses import asdict

        return {
            "schema": CACHE_SCHEMA,
            "repro_version": __version__,
            "spec": self.spec.to_dict(),
            "summary": asdict(self.summary),
            "extras": self.extras,
            "walltime": self.walltime,
            "worker": self.worker,
        }

    @classmethod
    def from_payload(
        cls, spec: RunSpec, payload: Dict[str, Any], cache_hit: bool
    ) -> "RunOutcome":
        return cls(
            spec=spec,
            summary=Summary(**payload["summary"]),
            extras=payload["extras"],
            walltime=payload.get("walltime", 0.0),
            cache_hit=cache_hit,
            worker=payload.get("worker", "inline"),
        )
