"""Campaign execution: cache lookup, worker pool, spec-order merge.

:func:`execute` is the single entry point experiments use.  Given an
ordered list of :class:`~repro.campaign.spec.RunSpec`, it

1. resolves the ambient :func:`settings` (CLI flags > context overlays >
   ``REPRO_JOBS`` / ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` env > defaults),
2. satisfies what it can from the content-addressed
   :class:`~repro.campaign.store.ResultStore`,
3. runs the remaining specs -- inline, or through a ``multiprocessing``
   pool when ``jobs > 1`` -- deduplicating identical specs within the
   batch, and
4. returns outcomes **in spec order** (never completion order), so a
   parallel campaign is bit-identical to a serial one.

When a tracing session is active (:func:`repro.obs.tracing`), execution
is forced serial + uncached-read so every run actually happens in-process
and lands in the trace; per-run worker timing is emitted as ``campaign``
instants visible to the existing exporters.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..experiments.harness import extract_extras, resolve_sim, run_simulation
from ..obs.tracer import get_active_tracer
from ..telemetry import get_active_telemetry
from .spec import RunOutcome, RunSpec, load_all_families
from .store import ResultStore, default_cache_dir

#: Environment overrides (the nightly CI job sets REPRO_JOBS=2).
JOBS_ENV = "REPRO_JOBS"
CACHE_ENV = "REPRO_CACHE"

_FALSEY = {"0", "false", "no", "off"}


# ----------------------------------------------------------------------
# Ambient settings
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ResolvedSettings:
    """Fully-resolved execution settings for one campaign batch."""

    jobs: int = 1
    cache: bool = True
    cache_dir: Path = Path(".repro-cache")
    #: Force every spec in the batch to run with health-driven adaptive
    #: thresholds (the CLI ``--adaptive`` flag).  Specs are rewritten
    #: before cache lookup, so fixed and adaptive runs never share an
    #: entry.
    adaptive: bool = False


_OVERLAYS: List[Dict[str, Any]] = []


@contextlib.contextmanager
def settings(
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[os.PathLike] = None,
    adaptive: Optional[bool] = None,
):
    """Scope campaign settings; None leaves the outer value in place::

        with campaign.settings(jobs=4, cache_dir=tmp):
            run_experiments(["fig2"])
    """
    _OVERLAYS.append(
        {"jobs": jobs, "cache": cache, "cache_dir": cache_dir,
         "adaptive": adaptive}
    )
    try:
        yield
    finally:
        _OVERLAYS.pop()


def current_settings(
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[os.PathLike] = None,
    adaptive: Optional[bool] = None,
) -> ResolvedSettings:
    """Resolve settings: explicit args > overlays > environment > defaults."""

    def pick(name, explicit):
        if explicit is not None:
            return explicit
        for overlay in reversed(_OVERLAYS):
            if overlay[name] is not None:
                return overlay[name]
        return None

    jobs = pick("jobs", jobs)
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        jobs = int(env) if env else 1
    cache = pick("cache", cache)
    if cache is None:
        env = os.environ.get(CACHE_ENV)
        cache = env.strip().lower() not in _FALSEY if env else True
    cache_dir = pick("cache_dir", cache_dir)
    if cache_dir is None:
        cache_dir = default_cache_dir()
    adaptive = pick("adaptive", adaptive)
    return ResolvedSettings(
        jobs=max(1, int(jobs)), cache=bool(cache), cache_dir=Path(cache_dir),
        adaptive=bool(adaptive),
    )


# ----------------------------------------------------------------------
# Session statistics
# ----------------------------------------------------------------------

@dataclass
class CampaignStats:
    """Cumulative counters across execute() batches (one CLI command)."""

    runs: int = 0
    hits: int = 0
    misses: int = 0
    #: In-worker wall-clock spent building + simulating (fresh runs).
    walltime: float = 0.0
    #: Parent wall-clock spent inside execute().
    elapsed: float = 0.0
    jobs: int = 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.runs if self.runs else 0.0

    def format(self) -> str:
        return (
            f"[campaign] runs={self.runs} hits={self.hits} "
            f"misses={self.misses} jobs={self.jobs} "
            f"sim={self.walltime:.1f}s elapsed={self.elapsed:.1f}s"
        )


_SESSION = CampaignStats()


def session_stats() -> CampaignStats:
    """Counters accumulated since the last reset (CLI command start)."""
    return replace(_SESSION)


def reset_session_stats() -> None:
    global _SESSION
    _SESSION = CampaignStats()


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def _execute_one(spec: RunSpec, label: Optional[str] = None) -> Dict[str, Any]:
    """Build and run one spec in this process; returns its payload."""
    load_all_families()
    started = time.perf_counter()
    params = dict(spec.params)
    if spec.adaptive:
        # The adaptive flag lives on the spec (cache identity), not in
        # the stored params; builders see it as a transient param.
        params["adaptive"] = True
    if spec.lever:
        # Same transient-param pattern for the mitigation lever.
        params["lever"] = spec.lever
    build = resolve_sim(spec.family)(params)
    duration = spec.duration if spec.duration is not None else build.duration
    warmup = spec.warmup if spec.warmup is not None else build.warmup
    fault_plan = None
    if spec.faults:
        from ..faults import FaultPlan

        fault_plan = FaultPlan.from_dict(spec.faults)
    if build.runner is not None:
        if fault_plan is not None:
            raise ValueError(
                f"family {spec.family!r} runs a custom runner and does "
                "not support fault plans"
            )
        summary, extras = build.runner(
            seed=spec.seed, duration=duration, warmup=warmup, label=label
        )
        walltime = time.perf_counter() - started
        outcome = RunOutcome(
            spec=spec, summary=summary, extras=extras, walltime=walltime
        )
        payload = outcome.to_payload()
        payload["sim_duration"] = duration
        return payload
    result = run_simulation(
        build.app_factory,
        build.workload_factory,
        build.controller_factory,
        duration=duration,
        seed=spec.seed,
        warmup=warmup,
        label=label,
        fault_plan=fault_plan,
    )
    walltime = time.perf_counter() - started
    outcome = RunOutcome(
        spec=spec,
        summary=result.summary,
        extras=extract_extras(result),
        walltime=walltime,
    )
    payload = outcome.to_payload()
    payload["sim_duration"] = duration
    return payload


def _worker_run(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point: rebuild the spec, run it, tag the worker."""
    payload = _execute_one(RunSpec.from_dict(spec_dict))
    payload["worker"] = f"pid-{os.getpid()}"
    return payload


def _run_pool(
    specs: Sequence[RunSpec], jobs: int
) -> List[Dict[str, Any]]:
    """Run specs through a worker pool; results in input order."""
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(
            _worker_run, [spec.to_dict() for spec in specs], chunksize=1
        )


def execute(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[os.PathLike] = None,
) -> List[RunOutcome]:
    """Run a campaign of specs; outcomes returned in spec order.

    Identical specs within the batch execute once and fan out to every
    position.  With an active tracer, execution is serial and cache
    reads are skipped (a cache hit would yield an empty trace); cache
    *writes* still happen so a traced cold run warms the cache.  With an
    active telemetry session, execution is serial and the cache is
    bypassed entirely -- reads (a hit would yield no scrape windows)
    *and* writes (telemetered payloads would otherwise differ from the
    uniform cached schema only by happenstance of session settings).
    """
    specs = list(specs)
    if not specs:
        return []
    cfg = current_settings(jobs=jobs, cache=cache, cache_dir=cache_dir)
    if cfg.adaptive:
        # --adaptive rewrites the whole batch before key computation:
        # the flag is part of each spec's cache identity.
        specs = [replace(spec, adaptive=True) for spec in specs]
    load_all_families()
    tracer = get_active_tracer()
    traced = bool(getattr(tracer, "enabled", False))
    telemetered = bool(getattr(get_active_telemetry(), "enabled", False))
    store = ResultStore(cfg.cache_dir) if cfg.cache else None

    started = time.perf_counter()
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    pending: Dict[str, List[int]] = {}
    keys = [spec.cache_key() for spec in specs]
    for i, (spec, key) in enumerate(zip(specs, keys)):
        if store is not None and not traced and not telemetered:
            payload = store.get(key)
            if payload is not None:
                outcomes[i] = RunOutcome.from_payload(
                    spec, payload, cache_hit=True
                )
                continue
        pending.setdefault(key, []).append(i)

    miss_keys = list(pending)
    miss_specs = [specs[pending[key][0]] for key in miss_keys]
    if miss_specs:
        serial = traced or telemetered
        effective_jobs = 1 if serial else min(cfg.jobs, len(miss_specs))
        if effective_jobs > 1:
            payloads = _run_pool(miss_specs, effective_jobs)
        else:
            payloads = []
            for spec in miss_specs:
                payload = _execute_one(
                    spec, label=spec.label() if serial else None
                )
                if traced:
                    _emit_run_instant(tracer, spec, payload)
                payloads.append(payload)
        for key, payload in zip(miss_keys, payloads):
            if store is not None and not telemetered:
                store.put(key, payload)
            for idx in pending[key]:
                outcomes[idx] = RunOutcome.from_payload(
                    specs[idx], payload, cache_hit=False
                )

    elapsed = time.perf_counter() - started
    # A "miss" is a simulation that actually executed; in-batch
    # duplicates fan out from one execution and count as hits.
    _SESSION.runs += len(specs)
    _SESSION.hits += len(specs) - len(miss_keys)
    _SESSION.misses += len(miss_keys)
    _SESSION.walltime += sum(p["walltime"] for p in (payloads if miss_specs else []))
    _SESSION.elapsed += elapsed
    _SESSION.jobs = cfg.jobs
    return outcomes  # type: ignore[return-value]


def _emit_run_instant(tracer, spec: RunSpec, payload: Dict[str, Any]) -> None:
    """Surface per-run campaign timing in the active trace.

    Lands on a ``campaign`` track of the run that just executed, so the
    Chrome-trace/Perfetto view (and the category counters in the trace
    summary) show what the campaign machinery spent around each run.
    """
    tracer.instant(
        payload.get("sim_duration", 0.0),
        "campaign",
        "campaign.run",
        "campaign",
        family=spec.family,
        seed=spec.seed,
        walltime_s=round(payload["walltime"], 6),
    )
