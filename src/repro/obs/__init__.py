"""Observability layer: structured tracing, exporters, decision audits.

``repro.obs`` is the telemetry backbone of the reproduction:

* :class:`Tracer` collects span/instant/counter events emitted by the
  DES kernel (:mod:`repro.sim`), the resource primitives
  (:mod:`repro.sim.resources`), the workload driver, and the ATROPOS
  controller.  Untraced runs use the :data:`NULL_TRACER` fast path.
* :mod:`repro.obs.export` turns the event stream into Chrome-trace JSON
  (``chrome://tracing`` / Perfetto), a per-resource utilization CSV, and
  a decision-audit JSON.
* The cancellation decision-audit trail itself lives in
  :mod:`repro.core.decision_log` (it is controller state); the tracer
  carries a copy of each audit payload so exports are self-contained.

This package deliberately imports nothing from ``repro.sim`` or
``repro.core`` so the kernel can import it without cycles.
"""

from .export import (
    chrome_trace_payload,
    dumps_chrome_trace,
    render_trace_summary,
    utilization_rows,
    write_audit_json,
    write_chrome_trace,
    write_utilization_csv,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_active_tracer,
    owner_label,
    set_active_tracer,
    tracing,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace_payload",
    "dumps_chrome_trace",
    "get_active_tracer",
    "owner_label",
    "render_trace_summary",
    "set_active_tracer",
    "tracing",
    "utilization_rows",
    "write_audit_json",
    "write_chrome_trace",
    "write_utilization_csv",
]
