"""Trace exporters: Chrome-trace JSON, utilization CSV, audit JSON.

All writers are deterministic: output depends only on the event stream
(simulated time, names derived from simulation state), so traces from
two runs with the same seed are byte-identical.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from .tracer import Tracer

__all__ = [
    "chrome_trace_payload",
    "render_trace_summary",
    "utilization_rows",
    "write_audit_json",
    "write_chrome_trace",
    "write_utilization_csv",
]


def chrome_trace_payload(tracer: Tracer) -> Dict[str, Any]:
    """Build the Chrome-trace JSON object for ``tracer``'s events.

    Loadable in ``chrome://tracing`` and Perfetto (legacy JSON format).
    """
    return {
        "traceEvents": tracer.events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "runs": tracer.runs,
        },
    }


def dumps_chrome_trace(tracer: Tracer) -> str:
    """Serialize deterministically (sorted keys, fixed separators)."""
    return json.dumps(
        chrome_trace_payload(tracer),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Chrome-trace JSON to ``path``; returns the event count."""
    payload = dumps_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(payload)
        handle.write("\n")
    return len(tracer.events)


# ----------------------------------------------------------------------
# Utilization timeline CSV
# ----------------------------------------------------------------------
def utilization_rows(tracer: Tracer) -> List[List[Any]]:
    """Flatten counter events into (run, time_s, track, series, value) rows.

    One row per counter series sample, in emission (simulated-time) order;
    the per-resource utilization timeline of a run.
    """
    run_labels = tracer.runs
    rows: List[List[Any]] = []
    track_names: Dict[tuple, str] = {}
    for event in tracer.events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            track_names[(event["pid"], event["tid"])] = event["args"]["name"]
            continue
        if event.get("ph") != "C":
            continue
        pid = event["pid"]
        run = run_labels[pid - 1] if 0 < pid <= len(run_labels) else str(pid)
        track = track_names.get((pid, event["tid"]), str(event["tid"]))
        time_s = event["ts"] / 1e6
        for series, value in sorted(event["args"].items()):
            rows.append([run, f"{time_s:.6f}", track, series, value])
    return rows


def write_utilization_csv(tracer: Tracer, path: str) -> int:
    """Write the per-resource utilization timeline CSV; returns row count."""
    rows = utilization_rows(tracer)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(["run", "time_s", "resource", "series", "value"])
        writer.writerows(rows)
    return len(rows)


# ----------------------------------------------------------------------
# Decision-audit JSON
# ----------------------------------------------------------------------
def write_audit_json(audits: List[Dict[str, Any]], path: str) -> int:
    """Write decision-audit payloads (see core.decision_log) as JSON."""
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(
            {"audits": audits},
            handle,
            sort_keys=True,
            indent=2,
            allow_nan=False,
        )
        handle.write("\n")
    return len(audits)


# ----------------------------------------------------------------------
# Human-readable summary (surfaced by reporting / the trace CLI)
# ----------------------------------------------------------------------
def render_trace_summary(tracer: Tracer) -> str:
    """Counter table: runs traced and events per category."""
    out = io.StringIO()
    out.write(f"runs traced:       {len(tracer.runs)}\n")
    out.write(f"trace events:      {len(tracer.events)}\n")
    out.write(f"decision audits:   {len(tracer.audits)}\n")
    if tracer.counts:
        out.write("events by category:\n")
        for cat, count in sorted(tracer.counts.items()):
            out.write(f"  {cat:<12} {count}\n")
    return out.getvalue().rstrip("\n")
