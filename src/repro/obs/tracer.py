"""Structured simulation tracer: spans, instants, and counters.

The tracer is the telemetry backbone of the reproduction: the DES kernel,
the resource primitives, the workload driver, and the ATROPOS controller
all emit events through it, and the exporters in :mod:`repro.obs.export`
turn the event stream into Chrome-trace JSON (loadable in
``chrome://tracing`` / Perfetto) or per-resource utilization CSVs.

Design constraints:

* **Determinism** -- events carry only simulated time and names derived
  from simulation state (task keys, resource names), never wall-clock
  time or ``id()`` addresses, so two runs with the same seed produce
  byte-identical traces.
* **Null fast path** -- untraced runs go through :class:`NullTracer`,
  whose ``enabled`` flag is a class attribute checked before any event is
  built; the hot paths pay one attribute load and one branch.

Event vocabulary (mirrors the Trace Event Format):

* *complete* spans (``ph="X"``): an interval on one named track, e.g. a
  simulated process's lifetime.
* *async* spans (``ph="b"``/``ph="e"``): overlapping intervals that share
  a track, e.g. many tasks waiting on one lock at once.  Paired by id.
* *instants* (``ph="i"``): point events -- evictions, cancellations,
  detector triggers.
* *counters* (``ph="C"``): numeric series -- queue depths, pool
  occupancy, busy workers.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_active_tracer",
    "owner_label",
    "set_active_tracer",
    "tracing",
]


def owner_label(owner: Any) -> str:
    """Deterministic display label for a grant/span owner.

    Never includes memory addresses: labels are built from task keys,
    operation names, resource names, or type names only.
    """
    if owner is None:
        return "anon"
    if isinstance(owner, str):
        return owner
    op_name = getattr(owner, "op_name", None)
    key = getattr(owner, "key", None)
    if op_name is not None and key is not None:
        return f"{op_name}#{key}"
    name = getattr(owner, "name", None)
    if isinstance(name, str):
        return name
    return type(owner).__name__


class Span:
    """Handle for an open complete-span; finish it with :meth:`end`."""

    __slots__ = ("_tracer", "cat", "name", "track", "start", "args")

    def __init__(
        self,
        tracer: "Tracer",
        cat: str,
        name: str,
        track: str,
        start: float,
        args: Optional[Dict[str, Any]],
    ) -> None:
        self._tracer = tracer
        self.cat = cat
        self.name = name
        self.track = track
        self.start = start
        self.args = args

    def end(self, ts: float, **extra: Any) -> None:
        """Close the span at simulated time ``ts``."""
        tracer = self._tracer
        if tracer is None:
            return
        self._tracer = None
        tracer._open.discard(self)
        args = dict(self.args) if self.args else {}
        args.update(extra)
        tracer._emit(
            {
                "ph": "X",
                "cat": self.cat,
                "name": self.name,
                "ts": tracer._us(self.start),
                "dur": tracer._us(ts - self.start),
                **tracer._track(self.track),
                **({"args": args} if args else {}),
            },
            self.cat,
        )


class Tracer:
    """Collects structured trace events from one or more simulation runs.

    One tracer may span several :func:`run_simulation` calls (an
    experiment sweep); each run is a separate Chrome-trace *process*
    (``pid``), named via :meth:`new_run`, and tracks within a run are
    *threads* (``tid``) allocated on first use.
    """

    enabled = True

    def __init__(self, max_runs: Optional[int] = None) -> None:
        """
        Args:
            max_runs: cap on the number of runs this tracer accepts; once
                reached, further harness runs execute untraced.  ``None``
                = unlimited.  The trace CLI defaults to tracing only the
                first run of an experiment sweep to keep files loadable.
        """
        #: Chrome-trace-ready event dicts, in emission order.
        self.events: List[Dict[str, Any]] = []
        #: Per-category event counts (surfaced by reporting).
        self.counts: Dict[str, int] = {}
        #: Decision-audit payloads appended by the ATROPOS controller.
        self.audits: List[Dict[str, Any]] = []
        self.max_runs = max_runs
        self._pid = 0
        self._run_labels: List[str] = []
        self._track_ids: Dict[Tuple[int, str], int] = {}
        self._next_async_id = 1
        self._open: set = set()

    # ------------------------------------------------------------------
    # Runs and tracks
    # ------------------------------------------------------------------
    @property
    def runs(self) -> List[str]:
        """Labels of the runs recorded so far."""
        return list(self._run_labels)

    @property
    def accepting_runs(self) -> bool:
        """Whether a new harness run should attach to this tracer."""
        return self.max_runs is None or len(self._run_labels) < self.max_runs

    def new_run(self, label: str) -> int:
        """Start a new run (Chrome-trace process); returns its pid."""
        self._pid += 1
        self._run_labels.append(label)
        self.events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": self._pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        return self._pid

    def _track(self, track: str) -> Dict[str, int]:
        if self._pid == 0:
            # Events emitted before any run was declared: implicit run.
            self.new_run("run")
        key = (self._pid, track)
        tid = self._track_ids.get(key)
        if tid is None:
            tid = len([k for k in self._track_ids if k[0] == self._pid]) + 1
            self._track_ids[key] = tid
            self.events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": self._pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return {"pid": self._pid, "tid": tid}

    @staticmethod
    def _us(seconds: float) -> float:
        """Simulated seconds -> trace microseconds (3-decimal fixed)."""
        return round(seconds * 1e6, 3)

    def _emit(self, event: Dict[str, Any], cat: str) -> None:
        self.events.append(event)
        self.counts[cat] = self.counts.get(cat, 0) + 1

    # ------------------------------------------------------------------
    # Event API (ts is always simulated seconds)
    # ------------------------------------------------------------------
    def begin(
        self, ts: float, cat: str, name: str, track: str, **args: Any
    ) -> Span:
        """Open a complete-span; close it with ``span.end(ts)``."""
        span = Span(self, cat, name, track, ts, args or None)
        self._open.add(span)
        return span

    def instant(
        self, ts: float, cat: str, name: str, track: str, **args: Any
    ) -> None:
        """Record a point event."""
        self._emit(
            {
                "ph": "i",
                "s": "t",
                "cat": cat,
                "name": name,
                "ts": self._us(ts),
                **self._track(track),
                **({"args": args} if args else {}),
            },
            cat,
        )

    def async_begin(
        self, ts: float, cat: str, name: str, track: str, **args: Any
    ) -> int:
        """Open an overlapping (async) span; returns the pairing id."""
        aid = self._next_async_id
        self._next_async_id += 1
        self._emit(
            {
                "ph": "b",
                "cat": cat,
                "name": name,
                "id": aid,
                "ts": self._us(ts),
                **self._track(track),
                **({"args": args} if args else {}),
            },
            cat,
        )
        return aid

    def async_end(
        self, ts: float, cat: str, name: str, track: str, aid: int, **args: Any
    ) -> None:
        """Close the async span opened with id ``aid``."""
        self._emit(
            {
                "ph": "e",
                "cat": cat,
                "name": name,
                "id": aid,
                "ts": self._us(ts),
                **self._track(track),
                **({"args": args} if args else {}),
            },
            cat,
        )

    def counter(self, ts: float, name: str, track: str, **values: float) -> None:
        """Record a counter sample (one or more named series)."""
        self._emit(
            {
                "ph": "C",
                "cat": "counter",
                "name": name,
                "ts": self._us(ts),
                **self._track(track),
                "args": values,
            },
            "counter",
        )

    def audit(self, payload: Dict[str, Any]) -> None:
        """Attach one decision-audit payload (see core.decision_log)."""
        self.audits.append(payload)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def close_open_spans(self, ts: float) -> None:
        """Close spans still open at end of simulation (time ``ts``)."""
        for span in sorted(
            self._open, key=lambda s: (s.start, s.track, s.name)
        ):
            span.end(ts, unfinished=True)
        self._open.clear()

    def __len__(self) -> int:
        return len(self.events)


class NullTracer:
    """Disabled tracer: every call is a no-op.

    Hook sites check ``tracer.enabled`` (a class attribute, so the check
    is one LOAD_ATTR + jump) before building event arguments; the methods
    below exist so that unconditional calls are still safe.
    """

    enabled = False
    accepting_runs = False
    events: List[Dict[str, Any]] = []
    counts: Dict[str, int] = {}
    audits: List[Dict[str, Any]] = []

    def new_run(self, label: str) -> int:
        return 0

    def begin(self, ts, cat, name, track, **args) -> Span:
        return _NULL_SPAN

    def instant(self, ts, cat, name, track, **args) -> None:
        pass

    def async_begin(self, ts, cat, name, track, **args) -> int:
        return 0

    def async_end(self, ts, cat, name, track, aid, **args) -> None:
        pass

    def counter(self, ts, name, track, **values) -> None:
        pass

    def audit(self, payload) -> None:
        pass

    def close_open_spans(self, ts: float) -> None:
        pass

    def __len__(self) -> int:
        return 0


class _NullSpan(Span):
    """Shared inert span returned by :class:`NullTracer`."""

    def __init__(self) -> None:  # noqa: D107 - trivially inert
        super().__init__(None, "", "", "", 0.0, None)  # type: ignore[arg-type]

    def end(self, ts: float, **extra: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: Process-wide disabled tracer; the default for every Environment.
NULL_TRACER = NullTracer()

#: The tracer new simulation harness runs attach to (see
#: experiments.harness.run_simulation).  NULL_TRACER unless a tracing
#: session is active.
_ACTIVE: Any = NULL_TRACER


def get_active_tracer():
    """The tracer harness-created environments should use."""
    return _ACTIVE


def set_active_tracer(tracer) -> None:
    """Install ``tracer`` as the active tracer (None resets to null)."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER


@contextlib.contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Context manager scoping an active tracing session::

        tracer = Tracer()
        with tracing(tracer):
            run_experiments(["fig3"])
        write_chrome_trace(tracer, "trace.json")
    """
    previous = get_active_tracer()
    set_active_tracer(tracer)
    try:
        yield tracer
    finally:
        set_active_tracer(previous)
