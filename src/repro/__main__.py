"""Command-line interface.

Usage::

    python -m repro list
    python -m repro run fig10 [--full] [--seed N]
    python -m repro all [--full] [--output FILE]
    python -m repro case c5 [--system atropos] [--seed N]
"""

from __future__ import annotations

import argparse
import sys

from .experiments import ALL_EXPERIMENTS
from .reporting import DEFAULT_ORDER, render_report, run_experiments


def cmd_list(args) -> int:
    print("Available experiments (paper artifact -> runner):")
    for exp_id in DEFAULT_ORDER:
        print(f"  {exp_id}")
    print("\nAvailable cases: c1..c16 (see `python -m repro case <id>`)")
    return 0


def cmd_run(args) -> int:
    if args.experiment not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    results = run_experiments(
        [args.experiment],
        quick=not args.full,
        seed=args.seed,
        progress=lambda i, dt: print(f"[{i} done in {dt:.1f}s]\n"),
    )
    print(results[args.experiment].format())
    return 0


def cmd_all(args) -> int:
    def progress(exp_id, elapsed):
        print(f"  {exp_id:<8} done in {elapsed:6.1f}s", flush=True)

    print("Running all experiments "
          f"({'full' if args.full else 'quick'} mode)...")
    results = run_experiments(
        quick=not args.full, seed=args.seed, progress=progress
    )
    report = render_report(results)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"\nreport written to {args.output}")
    else:
        print()
        print(report)
    return 0


def cmd_case(args) -> int:
    from .baselines import controller_factory
    from .cases import all_case_ids, get_case

    if args.case not in all_case_ids():
        print(
            f"unknown case {args.case!r}; known: {all_case_ids()}",
            file=sys.stderr,
        )
        return 2
    case = get_case(args.case)
    print(f"{case.case_id} ({case.app_name}): {case.trigger}")
    baseline = case.run_baseline(seed=args.seed)
    result = case.run(
        controller_factory=controller_factory(
            args.system,
            case.slo_latency,
            atropos_overrides=case.atropos_overrides,
        ),
        seed=args.seed,
    )
    s = result.summary
    print(
        f"system={args.system}  "
        f"norm_tput={s.throughput / baseline.throughput:.3f}  "
        f"norm_p99={s.p99_latency / baseline.p99_latency:.2f}  "
        f"drop_rate={s.drop_rate:.4f}  "
        f"cancels={result.controller.cancels_issued}"
    )
    if args.explain and hasattr(result.controller, "explain"):
        print("\nDecision timeline:")
        print(result.controller.explain(limit=args.explain))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ATROPOS (SOSP 2025) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments and cases")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", help="e.g. fig10, table1")
    p_run.add_argument("--full", action="store_true",
                       help="full sweeps instead of quick mode")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=cmd_run)

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--full", action="store_true")
    p_all.add_argument("--seed", type=int, default=0)
    p_all.add_argument("--output", help="write the report to a file")
    p_all.set_defaults(func=cmd_all)

    p_case = sub.add_parser("case", help="run one overload case")
    p_case.add_argument("case", help="c1..c16")
    p_case.add_argument(
        "--system",
        default="atropos",
        choices=["overload", "atropos", "protego", "pbox", "darc",
                 "parties", "seda", "breakwater"],
    )
    p_case.add_argument("--seed", type=int, default=0)
    p_case.add_argument(
        "--explain",
        type=int,
        nargs="?",
        const=40,
        default=0,
        metavar="N",
        help="print the last N decision-timeline events (atropos only)",
    )
    p_case.set_defaults(func=cmd_case)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
