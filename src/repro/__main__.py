"""Command-line interface.

Usage::

    python -m repro list
    python -m repro run fig10 [--full] [--seed N] [--jobs N] [--no-cache]
    python -m repro run fig2 --telemetry out/ [--live] [--scrape-interval S]
    python -m repro run fig9 --adaptive
    python -m repro all [--full] [--output FILE] [--jobs N] [--telemetry DIR]
    python -m repro ablate-adaptive [--full] [--seed N] [--cases c1 c2]
    python -m repro ablate --levers [--full] [--seed N] [--cases c1 c17]
    python -m repro sweep fig10 --seeds 0 1 2 [--jobs N]
    python -m repro case c5 [--system atropos] [--seed N]
    python -m repro trace fig3 --out trace.json [--util util.csv]
    python -m repro report fig2 [--out report.html] [--live]
    python -m repro bench [--quick] [--out FILE] [--case NAME]
    python -m repro bench --quick --baseline BENCH_7.json [--max-regression R]
    python -m repro cluster [--mode compare|none|local|coordinated]
    python -m repro cluster --nodes 3 --mode coordinated --digest [--jobs N]
    python -m repro dag [--controller compare|none|atropos|dagor|autothrottle]
    python -m repro dag --leaves 3 --controller atropos --digest [--jobs N]
    python -m repro faults list
    python -m repro faults run --plan lossy-initiator [--case c1] [--system atropos]
    python -m repro faults matrix [--full] [--jobs N]
    python -m repro regress baseline [--out FILE] [--targets case dag cluster lever]
    python -m repro regress baseline --telemetry [--scrape-interval S]
    python -m repro regress check [--baseline FILE] [--perturb K=V] [--report FILE]
    python -m repro regress report [--baseline FILE]
    python -m repro regress schedule [--case case:c1]
    python -m repro cache stats
    python -m repro cache clear

Experiment output goes to **stdout**; progress and campaign statistics
go to **stderr**, so stdout can be diffed across invocations.  The
``--live`` dashboard and telemetry file notices also go to stderr.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from . import campaign
from .experiments import ALL_EXPERIMENTS, resolve_experiment_id
from .reporting import DEFAULT_ORDER, render_report, run_experiments


def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for simulation runs "
        "(default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="reuse cached run results (default: $REPRO_CACHE or on)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store location (default: $REPRO_CACHE_DIR "
        "or .repro-cache)",
    )


def _campaign_settings(args):
    campaign.reset_session_stats()
    return campaign.settings(
        jobs=getattr(args, "jobs", None),
        cache=getattr(args, "cache", None),
        cache_dir=getattr(args, "cache_dir", None),
        adaptive=getattr(args, "adaptive", None) or None,
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="scrape the runs and write metrics.prom / series.jsonl / "
        "report.html into DIR (forces serial, uncached execution)",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="print a live telemetry dashboard line per scrape to stderr",
    )
    parser.add_argument(
        "--scrape-interval", type=float, default=0.25, metavar="S",
        help="simulated seconds between telemetry scrapes (default 0.25)",
    )


def _telemetry_session(args):
    """Build a TelemetrySession from CLI flags; None when not requested."""
    if not getattr(args, "telemetry", None) and not getattr(
        args, "live", False
    ):
        return None
    from .telemetry import TelemetrySession, live_line

    sink = None
    if args.live:
        def sink(run, window):
            print(live_line(run, window), file=sys.stderr)

    return TelemetrySession(
        interval=getattr(args, "scrape_interval", 0.25), live_sink=sink
    )


@contextlib.contextmanager
def _maybe_telemetry(session):
    if session is None:
        yield None
        return
    from .telemetry import telemetry_session

    with telemetry_session(session):
        yield session


def _write_telemetry(session, out_dir) -> None:
    import os

    from .telemetry import write_html_report, write_jsonl, write_prometheus

    os.makedirs(out_dir, exist_ok=True)
    write_prometheus(session.runs, os.path.join(out_dir, "metrics.prom"))
    write_jsonl(session.runs, os.path.join(out_dir, "series.jsonl"))
    write_html_report(session.runs, os.path.join(out_dir, "report.html"))
    print(
        f"telemetry for {len(session.runs)} run(s) written to {out_dir} "
        "(metrics.prom, series.jsonl, report.html)",
        file=sys.stderr,
    )


def _print_campaign_stats() -> None:
    stats = campaign.session_stats()
    if stats.runs:
        print(stats.format(), file=sys.stderr)


def cmd_list(args) -> int:
    print("Available experiments (paper artifact -> runner):")
    for exp_id in DEFAULT_ORDER:
        print(f"  {exp_id}")
    print("\nAvailable cases: c1..c16 (see `python -m repro case <id>`)")
    return 0


def cmd_run(args) -> int:
    if args.experiment not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    session = _telemetry_session(args)
    with _campaign_settings(args):
        with _maybe_telemetry(session):
            results = run_experiments(
                [args.experiment],
                quick=not args.full,
                seed=args.seed,
                progress=lambda i, dt: print(
                    f"[{i} done in {dt:.1f}s]", file=sys.stderr
                ),
            )
    print(results[args.experiment].format())
    if session is not None and args.telemetry:
        _write_telemetry(session, args.telemetry)
    _print_campaign_stats()
    return 0


def cmd_all(args) -> int:
    def progress(exp_id, elapsed):
        print(f"  {exp_id:<8} done in {elapsed:6.1f}s",
              file=sys.stderr, flush=True)

    print("Running all experiments "
          f"({'full' if args.full else 'quick'} mode)...",
          file=sys.stderr)
    session = _telemetry_session(args)
    with _campaign_settings(args):
        with _maybe_telemetry(session):
            results = run_experiments(
                quick=not args.full, seed=args.seed, progress=progress
            )
    report = render_report(results)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(report)
    if session is not None and args.telemetry:
        _write_telemetry(session, args.telemetry)
    _print_campaign_stats()
    return 0


def cmd_sweep(args) -> int:
    exp_id = resolve_experiment_id(args.experiment)
    if exp_id is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    seeds = args.seeds if args.seeds else [0]
    sections = []
    with _campaign_settings(args):
        for seed in seeds:
            print(f"[sweep {exp_id} seed={seed}]", file=sys.stderr)
            results = run_experiments(
                [exp_id], quick=not args.full, seed=seed
            )
            sections.append(
                f"## seed={seed}\n\n{results[exp_id].format()}"
            )
    report = f"# Sweep: {exp_id} (seeds={seeds})\n\n" + "\n\n".join(sections)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"sweep written to {args.output}", file=sys.stderr)
    else:
        print(report)
    _print_campaign_stats()
    return 0


def cmd_case(args) -> int:
    from .baselines import controller_factory
    from .cases import all_case_ids, get_case

    if args.case not in all_case_ids():
        print(
            f"unknown case {args.case!r}; known: {all_case_ids()}",
            file=sys.stderr,
        )
        return 2
    case = get_case(args.case)
    print(f"{case.case_id} ({case.app_name}): {case.trigger}")
    baseline = case.run_baseline(seed=args.seed)
    result = case.run(
        controller_factory=controller_factory(
            args.system,
            case.slo_latency,
            atropos_overrides=case.atropos_overrides,
        ),
        seed=args.seed,
    )
    s = result.summary
    print(
        f"system={args.system}  "
        f"norm_tput={s.throughput / baseline.throughput:.3f}  "
        f"norm_p99={s.p99_latency / baseline.p99_latency:.2f}  "
        f"drop_rate={s.drop_rate:.4f}  "
        f"cancels={result.controller.cancels_issued}"
    )
    if args.explain and hasattr(result.controller, "explain"):
        print("\nDecision timeline:")
        print(result.controller.explain(limit=args.explain))
    return 0


def cmd_trace(args) -> int:
    from .obs import (
        Tracer,
        render_trace_summary,
        tracing,
        write_audit_json,
        write_chrome_trace,
        write_utilization_csv,
    )

    exp_id = resolve_experiment_id(args.experiment)
    if exp_id is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    out = args.out or f"{exp_id}-trace.json"
    tracer = Tracer(max_runs=None if args.all_runs else 1)
    # Tracing needs in-process serial runs: cached or worker-pool runs
    # would leave the trace empty.
    with campaign.settings(jobs=1, cache=False):
        with tracing(tracer):
            results = run_experiments(
                [exp_id], quick=not args.full, seed=args.seed
            )
    print(results[exp_id].format())
    print()
    write_chrome_trace(tracer, out)
    print(f"chrome trace written to {out} "
          "(load in chrome://tracing or ui.perfetto.dev)")
    if args.util:
        write_utilization_csv(tracer, args.util)
        print(f"utilization CSV written to {args.util}")
    if args.audit:
        write_audit_json(tracer.audits, args.audit)
        print(f"decision audits written to {args.audit}")
    print()
    print(render_trace_summary(tracer))
    return 0


def cmd_report(args) -> int:
    from .telemetry import (
        TelemetrySession,
        live_line,
        telemetry_session,
        write_html_report,
    )

    exp_id = resolve_experiment_id(args.experiment)
    if exp_id is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    out = args.out or f"{exp_id}-report.html"
    sink = None
    if args.live:
        def sink(run, window):
            print(live_line(run, window), file=sys.stderr)

    session = TelemetrySession(
        interval=args.scrape_interval, live_sink=sink
    )
    # Telemetry needs in-process serial runs, like tracing: cached or
    # worker-pool runs would leave the scrape series empty.
    with campaign.settings(jobs=1, cache=False):
        with telemetry_session(session):
            results = run_experiments(
                [exp_id], quick=not args.full, seed=args.seed
            )
    print(results[exp_id].format())
    write_html_report(session.runs, out, title=f"repro telemetry: {exp_id}")
    print(
        f"telemetry report for {len(session.runs)} run(s) written to {out}",
        file=sys.stderr,
    )
    return 0


def cmd_faults(args) -> int:
    from .faults import FAULT_KINDS, named_plans, resolve_plan

    if args.faults_command == "list":
        print("Fault kinds (see docs/RESILIENCE.md for the schema):")
        for kind, (required, optional, description) in sorted(
            FAULT_KINDS.items()
        ):
            params = list(required) + [
                f"{name}={default!r}" for name, default in sorted(
                    optional.items()
                )
            ]
            rendered = ", ".join(params) if params else "-"
            print(f"  {kind:<16} params: {rendered}")
            print(f"  {'':<16} {description}")
        print("\nNamed plans (use with `repro faults run --plan <name>`):")
        for name, plan in sorted(named_plans().items()):
            print(f"  {name:<20} {plan.describe()}")
        return 0

    if args.faults_command == "run":
        from .experiments.case_family import case_spec

        try:
            plan = resolve_plan(args.plan)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        spec = case_spec(
            "faults-cli", args.case, seed=args.seed,
            system=args.system, faults=plan,
        )
        with _campaign_settings(args):
            outcome = campaign.execute([spec])[0]
        s = outcome.summary
        print(
            f"case={args.case} system={args.system} seed={args.seed} "
            f"plan={args.plan}"
        )
        print(f"plan: {plan.describe()}")
        print(
            f"tput={s.throughput:.1f}/s  p99={s.p99_latency * 1000:.1f}ms  "
            f"drop_rate={s.drop_rate:.4f}  cancels={outcome.cancels}  "
            f"signals_dropped={outcome.extras['cancel_signals_dropped']}"
        )
        print("\nFault log:")
        for event in outcome.extras.get("fault_events", []):
            marker = "applied" if event["applied"] else "no-op"
            print(
                f"  t={event['time']:7.3f}s  {event['phase']:<7} "
                f"{event['kind']:<16} [{marker}] {event['detail']}"
            )
        cancelled = outcome.extras.get("cancelled_ops", [])
        if cancelled:
            print(f"\nCancelled operations: {', '.join(cancelled)}")
        _print_campaign_stats()
        return 0

    # matrix
    from .experiments.resilience import run as run_resilience

    with _campaign_settings(args):
        result = run_resilience(
            quick=not args.full,
            case_ids=args.cases,
            kinds=args.kinds,
            seed=args.seed,
        )
    print(result.format())
    _print_campaign_stats()
    return 0


def cmd_ablate_adaptive(args) -> int:
    from .experiments.ablate_adaptive import run as run_ablation

    with _campaign_settings(args):
        result = run_ablation(
            quick=not args.full, seed=args.seed, case_ids=args.cases
        )
    print(result.format())
    _print_campaign_stats()
    return 0


def cmd_ablate(args) -> int:
    if args.levers:
        from .experiments.ablate_levers import run as run_ablation
    else:
        # Default dimension: the threshold-policy ablation.
        from .experiments.ablate_adaptive import run as run_ablation

    with _campaign_settings(args):
        result = run_ablation(
            quick=not args.full, seed=args.seed, case_ids=args.cases
        )
    print(result.format())
    _print_campaign_stats()
    return 0


def cmd_bench(args) -> int:
    import json

    from .bench import (
        check_regression,
        get_bench_case,
        run_bench,
        write_report,
    )

    cases = None
    if args.case:
        try:
            cases = [get_bench_case(name) for name in args.case]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    def progress(result):
        print(
            f"  {result.name:<18} {result.events_per_sec:>12,.0f} ev/s "
            f"({result.events:,} events in {result.wall_s:.3f}s)",
            file=sys.stderr, flush=True,
        )

    mode = "quick" if args.quick else "full"
    print(f"repro bench: running {mode} mix...", file=sys.stderr)
    report = run_bench(
        quick=args.quick, repeats=args.repeats, cases=cases, progress=progress
    )
    print(report.format())

    if args.out:
        baseline = None
        if args.embed_baseline:
            with open(args.embed_baseline) as handle:
                baseline = json.load(handle)
        write_report(report, args.out, baseline=baseline)
        print(f"bench report written to {args.out}", file=sys.stderr)

    if args.baseline:
        failures = check_regression(
            report, args.baseline, max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"regression check vs {args.baseline} passed "
            f"(tolerance {args.max_regression:.0%})",
            file=sys.stderr,
        )
    return 0


def cmd_cluster(args) -> int:
    from .cluster import demo_fleet, run_fleet

    if args.mode == "compare":
        from .experiments.cluster_attribution import run as run_comparison

        result = run_comparison(
            quick=not args.full,
            seed=args.seed,
            jobs=args.jobs,
            n_nodes=args.nodes,
            policy=args.policy,
        )
        print(result.format())
        return 0

    overrides = {}
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    if args.epoch is not None:
        overrides["epoch"] = args.epoch
    spec = demo_fleet(
        n_nodes=args.nodes,
        backends=tuple(args.backends),
        policy=args.policy,
        mode=args.mode,
        seed=args.seed,
        **overrides,
    )
    result = run_fleet(spec, jobs=args.jobs)
    print(result.render())
    if args.digest:
        print(f"digest {result.digest()}")
    return 0


def cmd_dag(args) -> int:
    from .cluster import run_dag
    from .workloads.dag import dag_storm

    overrides = {}
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    if args.epoch is not None:
        overrides["epoch"] = args.epoch

    if args.controller == "compare":
        from .experiments.dag_overload import run as run_comparison

        with _campaign_settings(args):
            result = run_comparison(
                quick=not args.full,
                seed=args.seed,
                jobs=args.jobs,
                n_leaves=args.leaves,
            )
        print(result.format())
        _print_campaign_stats()
        return 0

    spec = dag_storm(n_leaves=args.leaves, seed=args.seed, **overrides)
    result = run_dag(spec, controller=args.controller, jobs=args.jobs)
    print(result.render())
    if args.digest:
        print(f"digest {result.digest()}")
    return 0


def cmd_regress(args) -> int:
    from .regress import (
        RegressBaseline,
        capture,
        compare,
        recapture,
        write_diff_report,
    )
    from .regress.capture import parse_perturbations

    if args.action == "baseline":
        from . import __version__
        from .experiments.regressable import (
            REGRESS_CASES,
            REGRESS_TARGETS,
            regress_entries,
        )

        unknown = [t for t in args.targets if t not in REGRESS_TARGETS]
        if unknown:
            print(
                "unknown regress target(s): {}; known targets: {}".format(
                    ", ".join(sorted(unknown)), ", ".join(REGRESS_TARGETS)
                ),
                file=sys.stderr,
            )
            return 2
        cases = list(args.cases or REGRESS_CASES)
        entries = regress_entries(
            targets=args.targets, cases=cases, seed=args.seed
        )
        meta = {
            "seed": args.seed,
            "targets": list(args.targets),
            "cases": cases,
            "repro_version": __version__,
        }
        if args.telemetry:
            meta["telemetry_interval"] = args.scrape_interval
        with _campaign_settings(args):
            baseline = capture(
                args.name,
                entries,
                jobs=args.jobs,
                meta=meta,
                telemetry=args.telemetry,
                scrape_interval=args.scrape_interval,
            )
        baseline.write(args.out)
        _print_campaign_stats()
        print(
            f"baseline {args.name!r}: {len(baseline.cases)} capture(s) "
            f"written to {args.out}"
        )
        for case in baseline.cases:
            print(
                f"  {case.name:<24} p99={case.summary['p99_latency']} "
                f"cancelled={case.summary['cancelled']}"
            )
        return 0

    def read_baseline():
        try:
            return RegressBaseline.read(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return None

    if args.action == "schedule":
        import json as _json

        from .regress.schedule import derive_schedules

        baseline = read_baseline()
        if baseline is None:
            return 2
        schedules = derive_schedules(baseline)
        if args.case is not None:
            schedules = {
                name: schedule
                for name, schedule in schedules.items()
                if name == args.case
            }
        print(_json.dumps(schedules, indent=2, sort_keys=True))
        if not schedules:
            print(
                "no sustained p99-ceiling phases in the baseline "
                "history (nothing to schedule)",
                file=sys.stderr,
            )
        return 0

    # check / report share the capture-and-compare path.
    baseline = read_baseline()
    if baseline is None:
        return 2
    try:
        perturb = parse_perturbations(args.perturb or ())
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    with _campaign_settings(args):
        current = recapture(baseline, jobs=args.jobs, perturb=perturb)
    result = compare(baseline, current, rel_tol=args.rel_tol)
    _print_campaign_stats()
    print(result.format())
    report_path = args.report
    if args.action == "report" and report_path is None:
        report_path = "regress-report.html"
    if report_path is not None:
        write_diff_report(result, baseline, current, report_path)
        print(f"HTML diff written to {report_path}", file=sys.stderr)
    if args.action == "check":
        return 1 if result.drifted else 0
    return 0


def cmd_cache(args) -> int:
    from .campaign.store import ResultStore, default_cache_dir

    root = args.cache_dir or default_cache_dir()
    store = ResultStore(root)
    if args.action == "stats":
        print(store.stats().format())
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached results from {root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ATROPOS (SOSP 2025) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments and cases")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", help="e.g. fig10, table1")
    p_run.add_argument("--full", action="store_true",
                       help="full sweeps instead of quick mode")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--adaptive", action="store_true",
        help="run ATROPOS with health-driven adaptive thresholds "
        "(separate cache entries from fixed-threshold runs)",
    )
    _add_campaign_flags(p_run)
    _add_telemetry_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--full", action="store_true")
    p_all.add_argument("--seed", type=int, default=0)
    p_all.add_argument(
        "--adaptive", action="store_true",
        help="run ATROPOS with health-driven adaptive thresholds",
    )
    p_all.add_argument("--output", help="write the report to a file")
    _add_campaign_flags(p_all)
    _add_telemetry_flags(p_all)
    p_all.set_defaults(func=cmd_all)

    p_adapt = sub.add_parser(
        "ablate-adaptive",
        help="fixed vs health-driven adaptive thresholds across the cases",
    )
    p_adapt.add_argument("--full", action="store_true",
                         help="all 16 cases instead of the quick subset")
    p_adapt.add_argument("--seed", type=int, default=0)
    p_adapt.add_argument(
        "--cases", nargs="+", default=None, metavar="CID",
        help="restrict to these case ids",
    )
    _add_campaign_flags(p_adapt)
    p_adapt.set_defaults(func=cmd_ablate_adaptive)

    p_ablate = sub.add_parser(
        "ablate",
        help="ablation sweeps (--levers: cancel vs lock-reshape vs "
        "composite; default: fixed vs adaptive thresholds)",
    )
    p_ablate.add_argument(
        "--levers", action="store_true",
        help="contrast mitigation levers (cancel / lock_reshape / "
        "composite) across the case families",
    )
    p_ablate.add_argument("--full", action="store_true",
                          help="all cases instead of the quick subset")
    p_ablate.add_argument("--seed", type=int, default=0)
    p_ablate.add_argument(
        "--cases", nargs="+", default=None, metavar="CID",
        help="restrict to these case ids",
    )
    _add_campaign_flags(p_ablate)
    p_ablate.set_defaults(func=cmd_ablate)

    p_sweep = sub.add_parser(
        "sweep", help="run one experiment across several seeds"
    )
    p_sweep.add_argument("experiment", help="e.g. fig10")
    p_sweep.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="N",
        help="seeds to sweep (default: 0)",
    )
    p_sweep.add_argument("--full", action="store_true",
                         help="full sweeps instead of quick mode")
    p_sweep.add_argument("--output", help="write the sweep to a file")
    _add_campaign_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_case = sub.add_parser("case", help="run one overload case")
    p_case.add_argument("case", help="c1..c16")
    p_case.add_argument(
        "--system",
        default="atropos",
        choices=["overload", "atropos", "protego", "pbox", "darc",
                 "parties", "seda", "breakwater", "dagor", "autothrottle"],
    )
    p_case.add_argument("--seed", type=int, default=0)
    p_case.add_argument(
        "--explain",
        type=int,
        nargs="?",
        const=40,
        default=0,
        metavar="N",
        help="print the last N decision-timeline events (atropos only)",
    )
    p_case.set_defaults(func=cmd_case)

    p_trace = sub.add_parser(
        "trace", help="run one experiment with tracing enabled"
    )
    p_trace.add_argument(
        "experiment", help="e.g. fig3 or fig3_lock_contention"
    )
    p_trace.add_argument(
        "--out", help="chrome-trace output path "
        "(default: <experiment>-trace.json)"
    )
    p_trace.add_argument(
        "--util", metavar="FILE",
        help="also write per-resource utilization counters as CSV",
    )
    p_trace.add_argument(
        "--audit", metavar="FILE",
        help="also write the cancellation decision audits as JSON",
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--full", action="store_true",
                         help="full sweeps instead of quick mode")
    p_trace.add_argument(
        "--all-runs", action="store_true",
        help="trace every run of the sweep (default: first run only)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_report = sub.add_parser(
        "report",
        help="run one experiment with telemetry and render an HTML report",
    )
    p_report.add_argument(
        "experiment", help="e.g. fig2 or fig2_throughput"
    )
    p_report.add_argument(
        "--out", help="HTML output path (default: <experiment>-report.html)"
    )
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--full", action="store_true",
                          help="full sweeps instead of quick mode")
    p_report.add_argument(
        "--live", action="store_true",
        help="print a live telemetry dashboard line per scrape to stderr",
    )
    p_report.add_argument(
        "--scrape-interval", type=float, default=0.25, metavar="S",
        help="simulated seconds between telemetry scrapes (default 0.25)",
    )
    p_report.set_defaults(func=cmd_report)

    p_faults = sub.add_parser(
        "faults", help="fault injection: list kinds, run a plan, chaos matrix"
    )
    f_sub = p_faults.add_subparsers(dest="faults_command", required=True)

    f_list = f_sub.add_parser(
        "list", help="list fault kinds and named plans"
    )
    f_list.set_defaults(func=cmd_faults)

    f_run = f_sub.add_parser(
        "run", help="run one case with a fault plan injected"
    )
    f_run.add_argument(
        "--plan", required=True, metavar="NAME|FILE",
        help="named plan (see `faults list`) or a FaultPlan JSON file",
    )
    f_run.add_argument("--case", default="c1", help="case id (default c1)")
    f_run.add_argument(
        "--system", default="atropos",
        choices=["overload", "atropos", "protego", "pbox", "darc",
                 "parties", "seda", "breakwater", "dagor", "autothrottle"],
    )
    f_run.add_argument("--seed", type=int, default=0)
    _add_campaign_flags(f_run)
    f_run.set_defaults(func=cmd_faults)

    f_matrix = f_sub.add_parser(
        "matrix", help="fault kind x intensity chaos matrix (resilience)"
    )
    f_matrix.add_argument("--full", action="store_true",
                          help="more cases and both intensity tiers")
    f_matrix.add_argument("--quick", action="store_true",
                          help="one case, high intensity only (the default)")
    f_matrix.add_argument("--seed", type=int, default=0)
    f_matrix.add_argument(
        "--cases", nargs="+", default=None, metavar="CID",
        help="restrict to these case ids",
    )
    f_matrix.add_argument(
        "--kinds", nargs="+", default=None, metavar="KIND",
        help="restrict to these fault kinds",
    )
    _add_campaign_flags(f_matrix)
    f_matrix.set_defaults(func=cmd_faults)

    p_bench = sub.add_parser(
        "bench", help="kernel microbenchmark: events/sec on the standard mix"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="reduced scales (CI smoke); default is the full mix",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="timing repeats per case; best wall time wins (default 3)",
    )
    p_bench.add_argument(
        "--case", nargs="+", default=None, metavar="NAME",
        help="run only these cases (default: the whole standard mix)",
    )
    p_bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report JSON here (e.g. BENCH_7.json)",
    )
    p_bench.add_argument(
        "--embed-baseline", default=None, metavar="FILE",
        help="embed this prior report as the baseline (adds speedup "
        "ratios) when writing --out",
    )
    p_bench.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="fail if calibration-normalized mix events/sec regresses "
        "vs this checked-in report",
    )
    p_bench.add_argument(
        "--max-regression", type=float, default=0.2, metavar="R",
        help="allowed fractional regression for --baseline (default 0.2)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_cluster = sub.add_parser(
        "cluster",
        help="fleet simulation: LB routing + cross-node culprit attribution",
    )
    from .cluster.routing import policy_names
    from .cluster.spec import BACKENDS, MODES

    p_cluster.add_argument(
        "--nodes", type=int, default=3, metavar="N",
        help="number of app nodes in the fleet (default 3)",
    )
    p_cluster.add_argument(
        "--backends", nargs="+", default=list(BACKENDS), choices=BACKENDS,
        help="backend cycle assigned to nodes (default: mysql postgres)",
    )
    p_cluster.add_argument(
        "--policy", default="least-outstanding", choices=policy_names(),
        help="load-balancer routing policy (default least-outstanding)",
    )
    p_cluster.add_argument(
        "--mode", default="compare", choices=list(MODES) + ["compare"],
        help="control mode, or 'compare' to run all three (default)",
    )
    p_cluster.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="simulated seconds (default 30)",
    )
    p_cluster.add_argument(
        "--warmup", type=float, default=None, metavar="S",
        help="seconds excluded from the report (default 5)",
    )
    p_cluster.add_argument(
        "--epoch", type=float, default=None, metavar="S",
        help="coordinator scrape / LB sync interval (default 0.5)",
    )
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument(
        "--full", action="store_true",
        help="longer runs for --mode compare (30s instead of 16s)",
    )
    p_cluster.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shard node simulations across N workers "
        "(default: $REPRO_JOBS or 1; serial and sharded runs are "
        "byte-identical)",
    )
    p_cluster.add_argument(
        "--digest", action="store_true",
        help="print the run's canonical sha256 (determinism checks)",
    )
    p_cluster.set_defaults(func=cmd_cluster)

    p_dag = sub.add_parser(
        "dag",
        help="microservice-DAG mesh: cancel vs shed vs throttle on a "
        "cross-service storm",
    )
    from .workloads.dag import DAG_CONTROLLERS

    p_dag.add_argument(
        "--controller", default="compare",
        choices=list(DAG_CONTROLLERS) + ["compare"],
        help="per-service controller, or 'compare' to contrast all four "
        "via the campaign runner (default)",
    )
    p_dag.add_argument(
        "--leaves", type=int, default=2, metavar="N",
        help="fan-out leaf services behind the gateway (default 2)",
    )
    p_dag.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="simulated seconds (default 24)",
    )
    p_dag.add_argument(
        "--warmup", type=float, default=None, metavar="S",
        help="seconds excluded from the report (default 4)",
    )
    p_dag.add_argument(
        "--epoch", type=float, default=None, metavar="S",
        help="mesh RPC / feedback sync interval (default 0.25)",
    )
    p_dag.add_argument("--seed", type=int, default=0)
    p_dag.add_argument(
        "--full", action="store_true",
        help="longer runs for --controller compare (24s instead of 16s)",
    )
    p_dag.add_argument(
        "--digest", action="store_true",
        help="print the run's canonical sha256 (determinism checks)",
    )
    # --jobs doubles as mesh shard count for single-controller runs;
    # serial and sharded runs are byte-identical.
    _add_campaign_flags(p_dag)
    p_dag.set_defaults(func=cmd_dag)

    p_regress = sub.add_parser(
        "regress",
        help="longitudinal regression observatory (baseline/check)",
    )
    r_sub = p_regress.add_subparsers(dest="action", required=True)

    r_base = r_sub.add_parser(
        "baseline", help="capture a named baseline snapshot"
    )
    r_base.add_argument(
        "--out", default="REGRESS_BASELINE.json", metavar="FILE",
        help="snapshot path (default REGRESS_BASELINE.json)",
    )
    r_base.add_argument(
        "--name", default="standard", help="baseline name (default "
        "'standard')",
    )
    r_base.add_argument(
        "--targets", nargs="+", default=["case"], metavar="TARGET",
        help="regressable families to capture (default: case; known "
        "targets come from repro.experiments.regressable)",
    )
    r_base.add_argument(
        "--cases", nargs="+", default=None, metavar="ID",
        help="case ids for the case target (default: the standard six)",
    )
    r_base.add_argument("--seed", type=int, default=1)
    r_base.add_argument(
        "--telemetry", action="store_true",
        help="scrape each capture and snapshot condensed window "
        "summaries into the baseline (serial, cache reads bypassed)",
    )
    r_base.add_argument(
        "--scrape-interval", type=float, default=0.25, metavar="S",
        help="simulated seconds between scrapes for --telemetry "
        "(default 0.25)",
    )
    _add_campaign_flags(r_base)
    r_base.set_defaults(func=cmd_regress)

    for action, helptext in (
        ("check", "re-run a baseline's specs and gate on drift "
         "(exit 1 when anything drifted)"),
        ("report", "like check but always writes the HTML diff; "
         "exit 0"),
    ):
        r_action = r_sub.add_parser(action, help=helptext)
        r_action.add_argument(
            "--baseline", default="REGRESS_BASELINE.json",
            metavar="FILE",
            help="baseline snapshot (default REGRESS_BASELINE.json)",
        )
        r_action.add_argument(
            "--perturb", nargs="+", default=None, metavar="KEY=VALUE",
            help="AtroposConfig overrides merged into case-family "
            "specs (seeded drift, e.g. slo_slack=0.8)",
        )
        r_action.add_argument(
            "--report", default=None, metavar="FILE",
            help="write the HTML diff here (default for `report`: "
            "regress-report.html)",
        )
        r_action.add_argument(
            "--rel-tol", type=float, default=0.05, metavar="R",
            help="relative drift tolerance (default 0.05)",
        )
        _add_campaign_flags(r_action)
        r_action.set_defaults(func=cmd_regress)

    r_sched = r_sub.add_parser(
        "schedule",
        help="derive per-case threshold schedules from baseline history",
    )
    r_sched.add_argument(
        "--baseline", default="REGRESS_BASELINE.json", metavar="FILE",
        help="baseline snapshot (default REGRESS_BASELINE.json)",
    )
    r_sched.add_argument(
        "--case", default=None, metavar="NAME",
        help="only the named capture (e.g. case:c1)",
    )
    r_sched.set_defaults(func=cmd_regress)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the result store"
    )
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store location (default: $REPRO_CACHE_DIR "
        "or .repro-cache)",
    )
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
