"""The 151-application cancellation-support survey (Table 1)."""

from .dataset import (
    SurveyedApp,
    Table1Row,
    TABLE1_TARGETS,
    build_dataset,
    table1,
    table1_totals,
)

__all__ = [
    "SurveyedApp",
    "TABLE1_TARGETS",
    "Table1Row",
    "build_dataset",
    "table1",
    "table1_totals",
]
