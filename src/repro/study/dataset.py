"""The 151-application cancellation-support survey (paper Table 1, §2.4).

The paper surveys 151 popular open-source projects for task-cancellation
support and built-in cancellation initiators; it reports per-language
counts but does not publish the project list.  This module ships a
curated stand-in dataset with the same structure and aggregate counts:
well-known projects are categorized from their public documentation, and
the remainder of each language bucket is filled with anonymized survey
entries so the totals match the paper exactly (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class SurveyedApp:
    """One surveyed application."""

    name: str
    language: str  # "C/C++", "Java", "Go", "Python"
    category: str
    supports_cancel: bool
    has_initiator: bool
    #: Public cancellation API / mechanism, when known.
    mechanism: str = ""

    def __post_init__(self) -> None:
        if self.has_initiator and not self.supports_cancel:
            raise ValueError(
                f"{self.name}: an initiator implies cancellation support"
            )


def _named(entries) -> List[SurveyedApp]:
    return [SurveyedApp(*e) for e in entries]


#: Well-known projects categorized from public docs (name, language,
#: category, supports_cancel, has_initiator, mechanism).
_NAMED_APPS = _named(
    [
        ("mysql", "C/C++", "database", True, True, "KILL QUERY / sql_kill"),
        ("postgresql", "C/C++", "database", True, True,
         "pg_cancel_backend / pg_terminate_backend"),
        ("mariadb", "C/C++", "database", True, True, "KILL QUERY"),
        ("sqlite", "C/C++", "database", True, True, "sqlite3_interrupt"),
        ("redis", "C/C++", "key-value store", True, True,
         "CLIENT KILL / script kill"),
        ("memcached", "C/C++", "key-value store", False, False, ""),
        ("nginx", "C/C++", "web server", True, True,
         "connection close / worker shutdown"),
        ("apache-httpd", "C/C++", "web server", True, True,
         "graceful-stop / mod_reqtimeout"),
        ("haproxy", "C/C++", "proxy", True, True, "shutdown session"),
        ("mongodb", "C/C++", "database", True, True, "killOp"),
        ("rocksdb", "C/C++", "storage engine", True, False,
         "manual compaction abort only"),
        ("leveldb", "C/C++", "storage engine", False, False, ""),
        ("ceph", "C/C++", "distributed storage", True, True, "op abort"),
        ("envoy", "C/C++", "proxy", True, True, "stream reset"),
        ("clickhouse", "C/C++", "database", True, True, "KILL QUERY"),
        ("elasticsearch", "Java", "search engine", True, True,
         "_tasks/_cancel API"),
        ("solr", "Java", "search engine", True, True, "query timeAllowed / cancel"),
        ("cassandra", "Java", "database", True, True, "nodetool stop"),
        ("kafka", "Java", "message broker", True, True,
         "AdminClient request abort"),
        ("hadoop", "Java", "data processing", True, True, "kill task"),
        ("spark", "Java", "data processing", True, True, "cancelJobGroup"),
        ("zookeeper", "Java", "coordination", False, False, ""),
        ("tomcat", "Java", "web server", True, True, "async timeout/abort"),
        ("neo4j", "Java", "database", True, True,
         "dbms.listQueries / killQuery"),
        ("lucene", "Java", "library", False, False, ""),
        ("etcd", "Go", "key-value store", True, True, "context cancellation"),
        ("kubernetes", "Go", "orchestration", True, True,
         "context cancellation"),
        ("docker", "Go", "container runtime", True, True, "context / kill"),
        ("prometheus", "Go", "monitoring", True, True, "query cancel API"),
        ("cockroachdb", "Go", "database", True, True, "CANCEL QUERY"),
        ("consul", "Go", "coordination", True, True, "context cancellation"),
        ("influxdb", "Go", "database", True, True, "KILL QUERY"),
        ("traefik", "Go", "proxy", True, True, "context cancellation"),
        ("minio", "Go", "object storage", True, True, "context cancellation"),
        ("caddy", "Go", "web server", True, True, "context cancellation"),
        ("django", "Python", "web framework", False, False, ""),
        ("celery", "Python", "task queue", True, True, "revoke(terminate)"),
        ("gunicorn", "Python", "web server", True, True, "worker abort"),
        ("airflow", "Python", "workflow engine", True, True, "task kill"),
        ("jupyter", "Python", "notebook", True, True, "interrupt kernel"),
    ]
)

#: Table 1 row targets: language -> (total, supporting, with_initiator).
TABLE1_TARGETS: Dict[str, tuple] = {
    "C/C++": (60, 49, 46),
    "Java": (34, 25, 25),
    "Go": (44, 32, 29),
    "Python": (13, 9, 9),
}


def _fill_language(language: str) -> List[SurveyedApp]:
    """Anonymized entries filling a language bucket to the paper's counts."""
    total, supporting, initiator = TABLE1_TARGETS[language]
    named = [a for a in _NAMED_APPS if a.language == language]
    named_total = len(named)
    named_support = sum(1 for a in named if a.supports_cancel)
    named_init = sum(1 for a in named if a.has_initiator)
    fill_total = total - named_total
    fill_support = supporting - named_support
    fill_init = initiator - named_init
    if min(fill_total, fill_support, fill_init) < 0:
        raise AssertionError(f"named apps overflow Table 1 for {language}")
    if fill_support > fill_total or fill_init > fill_support:
        raise AssertionError(f"inconsistent fill for {language}")
    tag = language.lower().replace("/", "").replace("+", "p")
    apps = []
    for i in range(fill_total):
        supports = i < fill_support
        has_init = i < fill_init
        apps.append(
            SurveyedApp(
                name=f"surveyed-{tag}-{i + 1:02d}",
                language=language,
                category="surveyed",
                supports_cancel=supports,
                has_initiator=has_init,
                mechanism="(anonymized survey entry)",
            )
        )
    return apps


def build_dataset() -> List[SurveyedApp]:
    """All 151 surveyed applications."""
    apps = list(_NAMED_APPS)
    for language in TABLE1_TARGETS:
        apps.extend(_fill_language(language))
    return apps


@dataclass
class Table1Row:
    language: str
    applications: int
    supporting_cancel: int
    with_initiator: int


def table1() -> List[Table1Row]:
    """Aggregate the dataset into the rows of Table 1."""
    apps = build_dataset()
    rows = []
    for language in TABLE1_TARGETS:
        bucket = [a for a in apps if a.language == language]
        rows.append(
            Table1Row(
                language=language,
                applications=len(bucket),
                supporting_cancel=sum(
                    1 for a in bucket if a.supports_cancel
                ),
                with_initiator=sum(1 for a in bucket if a.has_initiator),
            )
        )
    return rows


def table1_totals() -> Table1Row:
    rows = table1()
    return Table1Row(
        language="Total",
        applications=sum(r.applications for r in rows),
        supporting_cancel=sum(r.supporting_cancel for r in rows),
        with_initiator=sum(r.with_initiator for r in rows),
    )
