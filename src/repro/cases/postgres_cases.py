"""PostgreSQL overload cases c6-c8 (Table 2)."""

from __future__ import annotations

from ..apps.base import Operation
from ..apps.postgres import PostgreSQL, PostgresConfig
from ..core.types import TaskKind
from ..workloads.spec import MixEntry, OpenLoopSource, PeriodicOp, ScheduledOp, Workload
from .base import CaseSpec, register_case


def _pg_factory(config=None):
    def build(env, controller, rng):
        return PostgreSQL(env, controller, rng, config=config or PostgresConfig())

    return build


def pg_mix(rng, tables=4, select_weight=0.7):
    def make_select():
        return Operation("select", {"table": rng.randint(0, tables - 1)})

    def make_update():
        return Operation("update", {"table": rng.randint(0, tables - 1)})

    return [
        MixEntry(factory=make_select, weight=select_weight),
        MixEntry(factory=make_update, weight=1.0 - select_weight),
    ]


@register_case("c6")
def build_c6() -> CaseSpec:
    """Bulk write bloats a table; readers pay MVCC version-chain costs."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=250.0, mix=pg_mix(rng))]
        if include_culprit:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation(
                        "bulk_update", {"table": 0, "rows": 2e6}
                    ),
                    client_id="batch",
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c6",
        app_name="postgres",
        resource_type="Synchronization",
        resource_detail="Table lock",
        trigger="The write operation slows down the other query due to MVCC",
        culprit_ops={"bulk_update"},
        app_factory=_pg_factory(),
        workload_factory=workload,
    )


@register_case("c7")
def build_c7() -> CaseSpec:
    """Background WAL flush group-inserts and blocks other queries."""

    def workload(app, rng, include_culprit):
        sources = [
            OpenLoopSource(rate=250.0, mix=pg_mix(rng, select_weight=0.3)),
            PeriodicOp(
                period=0.5,
                factory=lambda: Operation(
                    "wal_flush", {}, kind=TaskKind.BACKGROUND
                ),
                start_time=0.5,
            ),
        ]
        if include_culprit:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation(
                        "bulk_update", {"table": 1, "rows": 1.5e6}
                    ),
                    client_id="batch",
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c7",
        app_name="postgres",
        resource_type="Synchronization",
        resource_detail="Write ahead log",
        trigger=(
            "The background WAL task causes group insertion and blocks "
            "other queries"
        ),
        culprit_ops={"wal_flush", "bulk_update"},
        app_factory=_pg_factory(),
        workload_factory=workload,
        duration=13.0,
        # Baseline p99 includes routine WAL-flush waits (~19 ms).
        slo_latency=0.04,
    )


@register_case("c8")
def build_c8() -> CaseSpec:
    """Vacuum saturates disk I/O and slows foreground queries."""

    # A single-spindle disk serving half the reads from storage, with the
    # vacuum issuing large sequential chunks that head-of-line block them.
    config = PostgresConfig(
        disk_queue_depth=1,
        read_io_fraction=0.5,
        vacuum_chunk_bytes=8e6,
    )

    def workload(app, rng, include_culprit):
        sources = [
            OpenLoopSource(rate=250.0, mix=pg_mix(rng, select_weight=0.85))
        ]
        if include_culprit:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation(
                        "vacuum",
                        {"total_bytes": 600e6},
                        kind=TaskKind.BACKGROUND,
                    ),
                    client_id="autovacuum",
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c8",
        app_name="postgres",
        resource_type="System",
        resource_detail="System IO",
        trigger=(
            "The vacuum process causes contention on IO and slows down "
            "other queries"
        ),
        culprit_ops={"vacuum"},
        app_factory=_pg_factory(config),
        workload_factory=workload,
    )
