"""The 16 reproduced real-world overload cases of Table 2.

Importing this package registers every case; use :func:`get_case` /
:func:`all_cases` to build them.
"""

from .base import CaseSpec, all_case_ids, all_cases, get_case, register_case

# Importing the modules registers the cases.
from . import mysql_cases  # noqa: F401  (registration side effect)
from . import postgres_cases  # noqa: F401
from . import web_search_cases  # noqa: F401

__all__ = [
    "CaseSpec",
    "all_case_ids",
    "all_cases",
    "get_case",
    "register_case",
]
