"""The 16 reproduced overload cases of Table 2, plus extension cases.

Importing this package registers every case; use :func:`get_case` /
:func:`all_cases` to build them.  :func:`paper_case_ids` is the Table 2
set the paper figures sweep; extension cases (c17+, flagged
``extension=True``) ride the same registry and dynamics gates.
"""

from .base import (
    CaseSpec,
    all_case_ids,
    all_cases,
    get_case,
    paper_case_ids,
    register_case,
)

# Importing the modules registers the cases.
from . import mysql_cases  # noqa: F401  (registration side effect)
from . import postgres_cases  # noqa: F401
from . import web_search_cases  # noqa: F401
from . import mongodb_cases  # noqa: F401

__all__ = [
    "CaseSpec",
    "all_case_ids",
    "all_cases",
    "get_case",
    "paper_case_ids",
    "register_case",
]
