"""MySQL overload cases c1-c5 (Table 2)."""

from __future__ import annotations

from ..apps.base import Operation
from ..apps.mysql import MySQL, MySQLConfig, light_mix
from ..core.types import TaskKind
from ..workloads.spec import MixEntry, OpenLoopSource, PeriodicOp, ScheduledOp, Workload
from .base import CaseSpec, register_case


def _mysql_factory(env, controller, rng):
    return MySQL(env, controller, rng, config=MySQLConfig())


@register_case("c1")
def build_c1() -> CaseSpec:
    """Backup query holds write locks while waiting for scans to drain."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=300.0, mix=light_mix(rng))]
        if include_culprit:
            for at in (2.0, 3.0, 4.0):
                sources.append(
                    ScheduledOp(
                        at=at,
                        factory=lambda: Operation(
                            "scan", {"table": 0, "rows": 1.4e6}
                        ),
                        client_id="analytics",
                    )
                )
            sources.append(
                ScheduledOp(
                    at=5.0,
                    factory=lambda: Operation("backup", {}),
                    client_id="backup",
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c1",
        app_name="mysql",
        resource_type="Synchronization",
        resource_detail="Backup lock",
        trigger=(
            "A subtle interaction causes backup queries to hold write locks "
            "for long time."
        ),
        culprit_ops={"backup", "scan"},
        app_factory=_mysql_factory,
        workload_factory=workload,
        duration=14.0,
    )


@register_case("c2")
def build_c2() -> CaseSpec:
    """Slow queries monopolize the InnoDB admission queue."""

    def workload(app, rng, include_culprit):
        # Light traffic high enough that slow queries stay under 1% of
        # requests while their slot demand still exceeds the pool.
        sources = [OpenLoopSource(rate=400.0, mix=light_mix(rng))]
        if include_culprit:
            sources.append(
                OpenLoopSource(
                    rate=2.5,
                    mix=[
                        MixEntry(
                            factory=lambda: Operation(
                                "slow_query", {"duration": 3.0}
                            ),
                            weight=1.0,
                        )
                    ],
                    client_id="analytics",
                    start_time=2.0,
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c2",
        app_name="mysql",
        resource_type="Thread pool",
        resource_detail="InnoDB queue",
        trigger=(
            "Slow queries monopolize the InnoDB queue, exceeding its "
            "concurrency limit."
        ),
        culprit_ops={"slow_query"},
        app_factory=_mysql_factory,
        workload_factory=workload,
    )


@register_case("c3")
def build_c3() -> CaseSpec:
    """Blocked purge task causes contention on the undo log."""

    def workload(app, rng, include_culprit):
        sources = [
            OpenLoopSource(rate=250.0, mix=light_mix(rng, select_weight=0.2))
        ]
        if include_culprit:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation(
                        "long_transaction", {"duration": 8.0}
                    ),
                    client_id="analytics",
                )
            )
            sources.append(
                PeriodicOp(
                    period=1.0,
                    factory=lambda: Operation(
                        "purge", {}, kind=TaskKind.BACKGROUND
                    ),
                    start_time=2.5,
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c3",
        app_name="mysql",
        resource_type="Synchronization",
        resource_detail="Undo log",
        trigger="Background purge task blocks causes contention on the undo log",
        culprit_ops={"long_transaction"},
        app_factory=_mysql_factory,
        workload_factory=workload,
        duration=13.0,
    )


@register_case("c4")
def build_c4() -> CaseSpec:
    """SELECT FOR UPDATE blocks other clients' insert queries."""

    def workload(app, rng, include_culprit):
        sources = [
            OpenLoopSource(rate=250.0, mix=light_mix(rng, select_weight=0.3))
        ]
        if include_culprit:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation(
                        "select_for_update", {"table": 0, "rows": 1.5e6}
                    ),
                    client_id="batch",
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c4",
        app_name="mysql",
        resource_type="Synchronization",
        resource_detail="Table lock",
        trigger="SELECT FOR UPDATE query blocks other clients' insert query",
        culprit_ops={"select_for_update"},
        app_factory=_mysql_factory,
        workload_factory=workload,
    )


@register_case("c5")
def build_c5() -> CaseSpec:
    """Scan/dump query monopolizes the buffer pool."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=300.0, mix=light_mix(rng))]
        if include_culprit:
            for at in (2.0, 6.5):
                sources.append(
                    ScheduledOp(
                        at=at,
                        factory=lambda: Operation("dump", {}),
                        client_id="dump",
                    )
                )
        return Workload(sources)

    return CaseSpec(
        case_id="c5",
        app_name="mysql",
        resource_type="Memory",
        resource_detail="Buffer pool",
        trigger=(
            "Scan query monopolizes the buffer pool and causes contention "
            "with other queries"
        ),
        culprit_ops={"dump"},
        app_factory=_mysql_factory,
        workload_factory=workload,
    )
