"""Apache, Elasticsearch, Solr, and etcd overload cases c9-c16 (Table 2)."""

from __future__ import annotations

from ..apps.apache import Apache, ApacheConfig
from ..apps.base import Operation
from ..apps.elasticsearch import Elasticsearch, ElasticsearchConfig
from ..apps.etcd import Etcd, EtcdConfig
from ..apps.solr import Solr, SolrConfig
from ..workloads.spec import MixEntry, OpenLoopSource, ScheduledOp, Workload
from .base import CaseSpec, register_case


def _factory(cls, config):
    def build(env, controller, rng):
        return cls(env, controller, rng, config=config)

    return build


def _single_op_mix(name, params=None, cancellable=True):
    return [
        MixEntry(
            factory=lambda: Operation(
                name, dict(params or {}), cancellable=cancellable
            ),
            weight=1.0,
        )
    ]


@register_case("c9")
def build_c9() -> CaseSpec:
    """Slow PHP requests exhaust Apache's worker pool (MaxClients)."""

    def workload(app, rng, include_culprit):
        sources = [
            OpenLoopSource(rate=600.0, mix=_single_op_mix("static"))
        ]
        if include_culprit:
            # PHP scripts are only cancellable via the thread-level flag
            # (§5.2): Apache cannot stop a script once started, so the
            # case enables pthread_cancel-style cancellation.
            sources.append(
                OpenLoopSource(
                    rate=4.5,
                    mix=_single_op_mix(
                        "php_script", {"duration": 4.0}, cancellable=True
                    ),
                    client_id="php",
                    start_time=2.0,
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c9",
        app_name="apache",
        resource_type="Thread pool",
        resource_detail="Thread pool",
        trigger=(
            "Slow request blocks other clients' requests when the max "
            "client limit is reached"
        ),
        culprit_ops={"php_script"},
        app_factory=_factory(Apache, ApacheConfig()),
        workload_factory=workload,
        # Apache cannot stop a PHP script through application logic; the
        # paper enables the system-level cancellation flag for this case.
        atropos_overrides={"allow_thread_level_cancel": True},
    )


@register_case("c10")
def build_c10() -> CaseSpec:
    """A large search floods the Elasticsearch query cache."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=300.0, mix=_single_op_mix("search"))]
        if include_culprit:
            for at in (2.0, 6.5):
                sources.append(
                    ScheduledOp(
                        at=at,
                        factory=lambda: Operation("large_search", {}),
                        client_id="big-search",
                    )
                )
        return Workload(sources)

    return CaseSpec(
        case_id="c10",
        app_name="elasticsearch",
        resource_type="Memory",
        resource_detail="Query cache",
        trigger=(
            "A large search slows down other queries due to cache contention"
        ),
        culprit_ops={"large_search"},
        app_factory=_factory(
            Elasticsearch,
            # Cache-dependent deployment: misses are expensive and each
            # search touches several cached filters.
            ElasticsearchConfig(cache_miss_penalty=0.025, entries_per_search=3),
        ),
        workload_factory=workload,
    )


@register_case("c11")
def build_c11() -> CaseSpec:
    """A nested aggregation exhausts the heap, triggering GC storms."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=250.0, mix=_single_op_mix("search"))]
        if include_culprit:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation(
                        "nested_aggregation", {"blocks": 1300}
                    ),
                    client_id="agg",
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c11",
        app_name="elasticsearch",
        resource_type="Memory",
        resource_detail="Buffer memory",
        trigger=(
            "The nested aggregation exhausts heap memory causing frequent "
            "garbage collection"
        ),
        culprit_ops={"nested_aggregation"},
        app_factory=_factory(Elasticsearch, ElasticsearchConfig()),
        workload_factory=workload,
    )


@register_case("c12")
def build_c12() -> CaseSpec:
    """Long-running queries cause CPU contention."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=450.0, mix=_single_op_mix("search"))]
        if include_culprit:
            sources.append(
                OpenLoopSource(
                    rate=4.0,
                    mix=_single_op_mix("long_query", {"cpu_seconds": 3.0}),
                    client_id="analytics",
                    start_time=2.0,
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c12",
        app_name="elasticsearch",
        resource_type="System",
        resource_detail="CPU",
        trigger=(
            "The long running queries cause CPU contention and slow down "
            "other requests"
        ),
        culprit_ops={"long_query"},
        app_factory=_factory(Elasticsearch, ElasticsearchConfig()),
        workload_factory=workload,
    )


@register_case("c13")
def build_c13() -> CaseSpec:
    """A large update blocks other requests on the document lock."""

    def workload(app, rng, include_culprit):
        def mixed(rng=rng):
            return [
                MixEntry(
                    factory=lambda: Operation("search", {}), weight=0.6
                ),
                MixEntry(
                    factory=lambda: Operation("indexing", {}), weight=0.4
                ),
            ]

        sources = [OpenLoopSource(rate=250.0, mix=mixed())]
        if include_culprit:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation(
                        "update_by_query", {"duration": 5.0}
                    ),
                    client_id="bulk-update",
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c13",
        app_name="elasticsearch",
        resource_type="Synchronization",
        resource_detail="Document lock",
        trigger="A large update blocks other requests",
        culprit_ops={"update_by_query"},
        app_factory=_factory(Elasticsearch, ElasticsearchConfig()),
        workload_factory=workload,
    )


@register_case("c14")
def build_c14() -> CaseSpec:
    """A complex boolean request holds Solr's index lock."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=300.0, mix=_single_op_mix("query"))]
        if include_culprit:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation(
                        "boolean_query", {"duration": 5.0}
                    ),
                    client_id="complex",
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c14",
        app_name="solr",
        resource_type="Synchronization",
        resource_detail="Index lock",
        trigger="Complex boolean request slows down other requests",
        culprit_ops={"boolean_query"},
        app_factory=_factory(Solr, SolrConfig()),
        workload_factory=workload,
    )


@register_case("c15")
def build_c15() -> CaseSpec:
    """Nested range queries occupy Solr's searcher thread pool."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=450.0, mix=_single_op_mix("query"))]
        if include_culprit:
            sources.append(
                OpenLoopSource(
                    rate=3.5,
                    mix=_single_op_mix("range_query", {"duration": 3.0}),
                    client_id="range",
                    start_time=2.0,
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c15",
        app_name="solr",
        resource_type="Thread pool",
        resource_detail="Solr queue",
        trigger="Nested range queries occupy thread pool and block other requests",
        culprit_ops={"range_query"},
        app_factory=_factory(Solr, SolrConfig()),
        workload_factory=workload,
    )


@register_case("c16")
def build_c16() -> CaseSpec:
    """A complex read query blocks other etcd queries."""

    def workload(app, rng, include_culprit):
        def mixed(rng=rng):
            return [
                MixEntry(factory=lambda: Operation("get", {}), weight=0.75),
                MixEntry(factory=lambda: Operation("put", {}), weight=0.25),
            ]

        sources = [OpenLoopSource(rate=250.0, mix=mixed())]
        if include_culprit:
            sources.append(
                ScheduledOp(
                    at=2.0,
                    factory=lambda: Operation("range_read", {"duration": 5.0}),
                    client_id="range",
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c16",
        app_name="etcd",
        resource_type="Synchronization",
        resource_detail="Key-value lock",
        trigger="Complex read query blocks other queries",
        culprit_ops={"range_read"},
        app_factory=_factory(Etcd, EtcdConfig()),
        workload_factory=workload,
        # Baseline p99 includes routine writer-convoy waits (~13 ms).
        slo_latency=0.03,
    )
