"""MongoDB extension cases c17-c18 (post-paper registry additions).

Both cases run through the same dynamics gates as the Table 2 set but
are flagged ``extension=True`` so the paper-figure sweeps stay pinned to
the 16 reproduced cases.  c17 is also the habitat where the lock-reshape
mitigation lever beats cancellation (see ``repro ablate --levers``): the
storm's chunk-wise lock re-acquisitions are parkable, so victims recover
without the scans' work being lost.
"""

from __future__ import annotations

from ..apps.base import Operation
from ..apps.mongodb import MongoDB, MongoDBConfig, doc_mix
from ..workloads.spec import MixEntry, OpenLoopSource, ScheduledOp, Workload
from .base import CaseSpec, register_case


def _mongodb_factory(env, controller, rng):
    return MongoDB(env, controller, rng, config=MongoDBConfig())


@register_case("c17")
def build_c17() -> CaseSpec:
    """Aggregation scan storm convoys point reads on the collection lock."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=300.0, mix=doc_mix(rng))]
        if include_culprit:
            sources.append(
                OpenLoopSource(
                    rate=3.0,
                    mix=[
                        MixEntry(
                            factory=lambda: Operation(
                                "collection_scan",
                                {"collection": 0, "docs": 6e4},
                            ),
                            weight=1.0,
                        )
                    ],
                    client_id="analytics",
                    start_time=2.0,
                )
            )
        return Workload(sources)

    return CaseSpec(
        case_id="c17",
        app_name="mongodb",
        resource_type="Synchronization",
        resource_detail="Collection lock",
        trigger=(
            "Aggregation scans take the collection lock exclusively chunk "
            "by chunk; their queued re-acquisitions convoy point reads."
        ),
        culprit_ops={"collection_scan"},
        app_factory=_mongodb_factory,
        workload_factory=workload,
        extension=True,
    )


@register_case("c18")
def build_c18() -> CaseSpec:
    """Bulk insert of tiny documents makes cache eviction slow."""

    def workload(app, rng, include_culprit):
        sources = [OpenLoopSource(rate=300.0, mix=doc_mix(rng))]
        if include_culprit:
            for at in (2.0, 6.5):
                sources.append(
                    ScheduledOp(
                        at=at,
                        factory=lambda: Operation("bulk_insert", {"docs": 3e5}),
                        client_id="ingest",
                    )
                )
        return Workload(sources)

    return CaseSpec(
        case_id="c18",
        app_name="mongodb",
        resource_type="Memory",
        resource_detail="Document cache",
        trigger=(
            "Bulk-inserted tiny documents flood the document cache; "
            "page-packed eviction walks dozens of entries per page, so "
            "every hot-set re-fault stalls."
        ),
        culprit_ops={"bulk_insert"},
        app_factory=_mongodb_factory,
        workload_factory=workload,
        extension=True,
    )
