"""Case framework: the 16 reproduced overload scenarios of Table 2.

Each case bundles an application factory, a workload factory (with and
without the culprit), metadata matching Table 2, and the tuning knobs the
experiment harness needs (duration, warm-up, SLO).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..core.controller import BaseController
from ..experiments.harness import RunResult, run_simulation
from ..sim.environment import Environment
from ..sim.rng import Rng
from ..workloads.spec import Workload


@dataclass
class CaseSpec:
    """One reproduced real-world overload case."""

    case_id: str
    app_name: str
    #: Table 2 "Resource Type" column label.
    resource_type: str
    #: Table 2 "Resource" column.
    resource_detail: str
    #: Table 2 "Overload Triggering Condition" column.
    trigger: str
    #: Operation names of the culprit(s) (what ATROPOS should cancel).
    culprit_ops: Set[str]

    app_factory: Callable
    #: workload_factory(app, rng, include_culprit) -> Workload
    workload_factory: Callable

    duration: float = 12.0
    warmup: float = 2.0
    #: Latency SLO given to controllers.  Roughly 4x the healthy baseline
    #: p99 (~5 ms) -- the paper's SLOs are similarly tight (§5.3 uses a
    #: 20% tolerance over baseline).
    slo_latency: float = 0.02
    #: Per-case AtroposConfig overrides (e.g. c9 enables the thread-level
    #: cancellation flag for PHP scripts, §5.2).
    atropos_overrides: Dict[str, object] = field(default_factory=dict)
    #: Post-paper extension case (not part of Table 2).  Extension cases
    #: run through the same dynamics gates but are excluded from the
    #: paper-figure sweeps (:func:`paper_case_ids`), which are pinned to
    #: the 16 reproduced cases.
    extension: bool = False

    def run(
        self,
        controller_factory: Optional[Callable[[Environment], BaseController]] = None,
        include_culprit: bool = True,
        seed: int = 0,
        duration: Optional[float] = None,
    ) -> RunResult:
        """Run this case under a controller (default: uncontrolled)."""

        def workload(app, rng):
            return self.workload_factory(app, rng, include_culprit)

        return run_simulation(
            self.app_factory,
            workload,
            controller_factory=controller_factory,
            duration=duration if duration is not None else self.duration,
            warmup=self.warmup,
            seed=seed,
        )

    def run_baseline(self, seed: int = 0) -> RunResult:
        """Run the non-overloaded baseline (no culprit, no controller)."""
        return self.run(include_culprit=False, seed=seed)


#: Global registry: case id ("c1".."c16") -> builder returning a CaseSpec.
_REGISTRY: Dict[str, Callable[[], CaseSpec]] = {}


def register_case(case_id: str):
    """Decorator registering a case builder under ``case_id``."""

    def wrap(builder: Callable[[], CaseSpec]):
        if case_id in _REGISTRY:
            raise ValueError(f"case {case_id} already registered")
        _REGISTRY[case_id] = builder
        return builder

    return wrap


def get_case(case_id: str) -> CaseSpec:
    """Build the CaseSpec for ``case_id`` (fresh instance)."""
    try:
        builder = _REGISTRY[case_id]
    except KeyError:
        raise KeyError(
            f"unknown case {case_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return builder()

def all_case_ids() -> List[str]:
    """All registered case ids in numeric order (paper + extensions)."""
    return sorted(_REGISTRY, key=lambda c: int(c.lstrip("c")))


def paper_case_ids() -> List[str]:
    """The Table 2 case ids (c1..c16), excluding extension cases.

    The paper-figure experiments (fig9/fig10/fig13, table2) sweep this
    set so their outputs stay pinned to the reproduced paper even as
    the registry grows extension cases.
    """
    return [cid for cid in all_case_ids() if not get_case(cid).extension]


def all_cases() -> List[CaseSpec]:
    return [get_case(cid) for cid in all_case_ids()]
