"""Structured decision log: what ATROPOS observed, decided, and did.

Every detector activation, overload classification, cancellation, and
re-execution outcome is recorded as a typed event, giving operators an
explainable timeline ("why did my query get killed at 12:01:03?") --
table stakes for an overload controller anyone would deploy.

Enabled by default (events are tiny); render with
:meth:`DecisionLog.render` or query with :meth:`DecisionLog.events_of`.

Beyond the flat event timeline, the log also keeps a **decision-audit
trail**: one :class:`DecisionAudit` per detector trigger, carrying the
full evidence chain that produced the verdict -- the detector signal
(tail latency, throughput, head-of-line age), the per-resource
contention reports, the candidate ranking with per-resource gains, and
the final verdict (cancelled / blocked / regular overload).  Audits are
what ``repro trace --audit`` exports and what the acceptance invariant
"every cancellation has an audit record" is checked against.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional


class DecisionKind(enum.Enum):
    #: The detector flagged a potential overload (tail or head-of-line).
    DETECTION = "detection"
    #: The estimator classified it: resource overload vs regular demand.
    CLASSIFICATION = "classification"
    #: A cancellation was issued to a culprit task.
    CANCELLATION = "cancellation"
    #: A cancellation was considered but blocked (cooldown, no candidate,
    #: thread-level flag, ...).
    CANCEL_BLOCKED = "cancel-blocked"
    #: A cancelled request's re-execution gate resolved (retry/drop).
    REEXECUTION = "reexecution"
    #: A fault was injected into (or lifted from) the run
    #: (:mod:`repro.faults`); correlates faults with (mis)cancellations.
    FAULT = "fault"
    #: A telemetry health rule fired (:mod:`repro.telemetry.health`);
    #: correlates SLO violations with the decisions around them.
    HEALTH = "health"
    #: An :class:`~repro.core.adaptive.AdaptiveThresholdPolicy` moved a
    #: live detector threshold (window widened on flapping, tail trigger
    #: tightened after sustained p99 violations, or a recovery step).
    ADAPT = "adapt"
    #: A mitigation lever acted (or chose between mitigations): lock
    #: waiters parked/reactivated by the
    #: :class:`~repro.core.levers.LockScheduleLever`, or a
    #: :class:`~repro.core.levers.CompositeLever` per-decision choice.
    LEVER = "lever"


@dataclass
class DecisionEvent:
    """One entry in the decision timeline."""

    time: float
    kind: DecisionKind
    summary: str
    details: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extras = ""
        if self.details:
            pairs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.details.items())
            )
            extras = f"  [{pairs}]"
        return f"t={self.time:8.3f}s  {self.kind.value:<14}  {self.summary}{extras}"


@dataclass
class DetectorSignal:
    """The detector observation that triggered an audit cycle."""

    tail_latency: Optional[float]
    throughput: Optional[float]
    samples: Optional[int]
    oldest_inflight_age: float


@dataclass
class ResourceEvidence:
    """Estimator output for one resource, as recorded in an audit."""

    resource: str
    rtype: str
    contention_raw: float
    contention_norm: float
    threshold: float
    overloaded: bool
    concentrated: bool
    gain_skew: float


@dataclass
class CandidateEvidence:
    """One ranked cancellation candidate with its estimator inputs."""

    task_key: Any
    op_name: str
    client_id: str
    kind: str
    age: float
    progress: float
    cancellable: bool
    #: resource name -> expected gain from cancelling this task.
    gains: Dict[str, float] = field(default_factory=dict)
    #: Contention-weighted scalarized score (None if not scored, e.g.
    #: dominated candidates under Algorithm 1).
    score: Optional[float] = None
    selected: bool = False


@dataclass
class DecisionAudit:
    """Full evidence chain for one detector trigger -> verdict cycle.

    ``verdict`` is one of ``"cancelled"``, ``"cancel-blocked"``,
    ``"no-candidate"``, ``"regular-overload"``, or -- under a
    non-default mitigation lever (:mod:`repro.core.levers`) --
    ``"lock-reshaped"`` / ``"lever-noop"``.
    """

    time: float
    detector: DetectorSignal
    resources: List[ResourceEvidence]
    candidates: List[CandidateEvidence]
    verdict: str
    #: Mitigation lever that produced the verdict (None on the default
    #: cancel path, keeping historical payloads' ``lever`` absent-as-None).
    lever: Optional[str] = None
    #: Name of the contended resource the verdict names (None when the
    #: window was classified as regular overload with no clear culprit).
    culprit_resource: Optional[str] = None
    #: Key of the cancelled task (verdict == "cancelled" only).
    cancelled_task_key: Any = None
    cancelled_op_name: Optional[str] = None
    #: Why a cancel was blocked (cooldown, thread-level flag, ...).
    blocked_reason: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable dict (for exporters and the tracer)."""
        return asdict(self)


class DecisionLog:
    """Bounded in-memory decision timeline plus the audit trail."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: List[DecisionEvent] = []
        #: Events dropped once capacity was reached (oldest first).
        self.dropped = 0
        #: Decision audits, bounded by the same capacity.
        self._audits: List[DecisionAudit] = []
        self.audits_dropped = 0

    def record(
        self,
        time: float,
        kind: DecisionKind,
        summary: str,
        **details: Any,
    ) -> DecisionEvent:
        event = DecisionEvent(
            time=time, kind=kind, summary=summary, details=details
        )
        self._events.append(event)
        if len(self._events) > self.capacity:
            self._events.pop(0)
            self.dropped += 1
        return event

    def record_audit(self, audit: DecisionAudit) -> DecisionAudit:
        """Append one decision audit (bounded like the event timeline)."""
        self._audits.append(audit)
        if len(self._audits) > self.capacity:
            self._audits.pop(0)
            self.audits_dropped += 1
        return audit

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[DecisionEvent]:
        return list(self._events)

    @property
    def audits(self) -> List[DecisionAudit]:
        return list(self._audits)

    def cancellation_audits(self) -> List[DecisionAudit]:
        """Audits whose verdict was an executed cancellation."""
        return [a for a in self._audits if a.verdict == "cancelled"]

    def audit_for_task(self, task_key: Any) -> Optional[DecisionAudit]:
        """The audit that cancelled ``task_key``, if any."""
        for audit in self._audits:
            if audit.verdict == "cancelled" and audit.cancelled_task_key == task_key:
                return audit
        return None

    def events_of(self, kind: DecisionKind) -> List[DecisionEvent]:
        return [e for e in self._events if e.kind is kind]

    def between(self, start: float, end: float) -> List[DecisionEvent]:
        return [e for e in self._events if start <= e.time < end]

    def __len__(self) -> int:
        return len(self._events)

    def render(
        self,
        kinds: Optional[List[DecisionKind]] = None,
        limit: Optional[int] = None,
    ) -> str:
        """Human-readable timeline (optionally filtered / truncated)."""
        events = self._events
        if kinds is not None:
            wanted = set(kinds)
            events = [e for e in events if e.kind in wanted]
        if limit is not None:
            events = events[-limit:]
        lines = [e.render() for e in events]
        if self.dropped:
            lines.insert(0, f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines) if lines else "(no decisions recorded)"
