"""Structured decision log: what ATROPOS observed, decided, and did.

Every detector activation, overload classification, cancellation, and
re-execution outcome is recorded as a typed event, giving operators an
explainable timeline ("why did my query get killed at 12:01:03?") --
table stakes for an overload controller anyone would deploy.

Enabled by default (events are tiny); render with
:meth:`DecisionLog.render` or query with :meth:`DecisionLog.events_of`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class DecisionKind(enum.Enum):
    #: The detector flagged a potential overload (tail or head-of-line).
    DETECTION = "detection"
    #: The estimator classified it: resource overload vs regular demand.
    CLASSIFICATION = "classification"
    #: A cancellation was issued to a culprit task.
    CANCELLATION = "cancellation"
    #: A cancellation was considered but blocked (cooldown, no candidate,
    #: thread-level flag, ...).
    CANCEL_BLOCKED = "cancel-blocked"
    #: A cancelled request's re-execution gate resolved (retry/drop).
    REEXECUTION = "reexecution"


@dataclass
class DecisionEvent:
    """One entry in the decision timeline."""

    time: float
    kind: DecisionKind
    summary: str
    details: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extras = ""
        if self.details:
            pairs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.details.items())
            )
            extras = f"  [{pairs}]"
        return f"t={self.time:8.3f}s  {self.kind.value:<14}  {self.summary}{extras}"


class DecisionLog:
    """Bounded in-memory decision timeline."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: List[DecisionEvent] = []
        #: Events dropped once capacity was reached (oldest first).
        self.dropped = 0

    def record(
        self,
        time: float,
        kind: DecisionKind,
        summary: str,
        **details: Any,
    ) -> DecisionEvent:
        event = DecisionEvent(
            time=time, kind=kind, summary=summary, details=details
        )
        self._events.append(event)
        if len(self._events) > self.capacity:
            self._events.pop(0)
            self.dropped += 1
        return event

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[DecisionEvent]:
        return list(self._events)

    def events_of(self, kind: DecisionKind) -> List[DecisionEvent]:
        return [e for e in self._events if e.kind is kind]

    def between(self, start: float, end: float) -> List[DecisionEvent]:
        return [e for e in self._events if start <= e.time < end]

    def __len__(self) -> int:
        return len(self._events)

    def render(
        self,
        kinds: Optional[List[DecisionKind]] = None,
        limit: Optional[int] = None,
    ) -> str:
        """Human-readable timeline (optionally filtered / truncated)."""
        events = self._events
        if kinds is not None:
            wanted = set(kinds)
            events = [e for e in events if e.kind in wanted]
        if limit is not None:
            events = events[-limit:]
        lines = [e.render() for e in events]
        if self.dropped:
            lines.insert(0, f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines) if lines else "(no decisions recorded)"
