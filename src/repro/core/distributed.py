"""Distributed task trees and cancellation propagation.

The paper scopes ATROPOS to single-node applications but sketches the
extension (§4): "the task manager could associate child tasks with their
root request and propagate cancellation signals", with failure handling
(crashes, timeouts, partitions) left as future work.  This module
implements that sketch on the simulation substrate:

* a :class:`TaskTree` associates child tasks (fan-out work on other
  simulated nodes) with their root request;
* cancelling the root propagates the signal to every live descendant,
  in registration order, with a configurable per-hop delay (network
  latency);
* propagation is *best-effort per the paper's model*: children on
  partitioned/crashed nodes miss the signal, and the tree reports which
  deliveries failed so callers can retry or escalate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from .task import CancellableTask, default_initiator
from .types import CancelSignal

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass
class Delivery:
    """Outcome of one propagated cancellation."""

    task: CancellableTask
    node: str
    delivered: bool
    at: float
    reason: str = ""


class Node:
    """A named remote node that may be partitioned or crashed.

    The two failure modes are distinct, matching their real-world
    recovery paths: a *partition* (:meth:`partition`) is a network
    fault that :meth:`heal` undoes; a *crash* (:meth:`crash`) takes the
    node down until :meth:`restart`.  Healing a partition does not
    revive a crashed node.  :attr:`reachable` is the combined view a
    cancellation delivery sees.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.partitioned = False
        self.crashed = False

    @property
    def reachable(self) -> bool:
        return not self.partitioned and not self.crashed

    def partition(self) -> None:
        self.partitioned = True

    def heal(self) -> None:
        self.partitioned = False

    def crash(self) -> None:
        self.crashed = True

    def restart(self) -> None:
        self.crashed = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.crashed:
            state = "crashed"
        elif self.partitioned:
            state = "partitioned"
        else:
            state = "up"
        return f"<Node {self.name} {state}>"


class TaskTree:
    """Root request with children fanned out across nodes."""

    def __init__(
        self,
        env: "Environment",
        root: CancellableTask,
        propagation_delay: float = 0.002,
    ) -> None:
        self.env = env
        self.root = root
        self.propagation_delay = propagation_delay
        #: child task -> node it runs on.
        self._children: Dict[int, tuple] = {}
        self.deliveries: List[Delivery] = []

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def add_child(self, task: CancellableTask, node: Node) -> None:
        """Associate a child task (running on ``node``) with the root."""
        if task is self.root:
            raise ValueError("the root cannot be its own child")
        self._children[id(task)] = (task, node)
        task.metadata["root_key"] = self.root.key

    def remove_child(self, task: CancellableTask) -> None:
        self._children.pop(id(task), None)

    @property
    def children(self) -> List[CancellableTask]:
        return [task for task, _ in self._children.values()]

    def live_children(self) -> List[CancellableTask]:
        return [t for t in self.children if t.alive]

    # ------------------------------------------------------------------
    # Cancellation propagation
    # ------------------------------------------------------------------
    def cancel_all(self, signal: Optional[CancelSignal] = None):
        """Process generator: cancel the root and propagate to children.

        Returns the list of :class:`Delivery` outcomes.  Children on
        unreachable nodes are recorded as undelivered -- the caller
        decides whether to retry (see :meth:`retry_undelivered`).
        """
        signal = signal or CancelSignal(
            reason="distributed-cancel", decided_at=self.env.now
        )
        if self.root.cancellable:
            self.root.begin_cancel(signal)
            if self.env.active_process is not self.root.process:
                default_initiator(self.root, signal)
            # else: the root itself initiated the abort (client disconnect
            # handled inline); it unwinds on its own after propagation.
        for task, node in list(self._children.values()):
            yield self.env.timeout(self.propagation_delay)
            delivery = self._deliver(task, node, signal)
            self.deliveries.append(delivery)
        return self.deliveries

    def _deliver(
        self, task: CancellableTask, node: Node, signal: CancelSignal
    ) -> Delivery:
        now = self.env.now
        if not node.reachable:
            return Delivery(
                task=task, node=node.name, delivered=False, at=now,
                reason="node-crashed" if node.crashed else "node-unreachable",
            )
        if not task.alive:
            return Delivery(
                task=task, node=node.name, delivered=True, at=now,
                reason="already-finished",
            )
        if task.cancel_count > 0:
            # A previous delivery (or another cancellation path) already
            # reached this task; it is unwinding.  The signal is moot, so
            # the delivery counts as done rather than failed -- otherwise
            # retry passes keep producing spurious failure records until
            # the task finishes unwinding.
            return Delivery(
                task=task, node=node.name, delivered=True, at=now,
                reason="already-cancelling",
            )
        if task.state.value == "running":
            task.begin_cancel(signal)
            default_initiator(task, signal)
            return Delivery(task=task, node=node.name, delivered=True, at=now)
        return Delivery(
            task=task, node=node.name, delivered=False, at=now,
            reason="not-cancellable",
        )

    def undelivered(self) -> List[Delivery]:
        """Deliveries still owed: per child, the *latest* attempt failed.

        Only the most recent delivery per task decides -- earlier failed
        attempts are superseded by a later success (heal -> retry) or a
        later failure (so one task contributes one entry, never one per
        historical attempt).  Tasks that finished or are already
        unwinding a cancellation are excluded.  Order follows child
        registration order, matching :meth:`cancel_all`.
        """
        latest: Dict[int, Delivery] = {}
        for delivery in self.deliveries:
            latest[id(delivery.task)] = delivery
        owed: List[Delivery] = []
        for key, (task, _node) in self._children.items():
            delivery = latest.get(key)
            if delivery is None or delivery.delivered:
                continue
            if not task.alive or task.cancel_count > 0:
                continue
            owed.append(delivery)
        return owed

    def retry_undelivered(self, signal: Optional[CancelSignal] = None):
        """Process generator: re-attempt failed deliveries (healed nodes).

        The snapshot of owed deliveries is taken once per pass (one
        retry per still-unreached child per pass), and each re-attempt
        pays the same per-hop propagation delay as the original
        :meth:`cancel_all` fan-out, in the same registration order.
        """
        signal = signal or CancelSignal(
            reason="distributed-cancel-retry", decided_at=self.env.now
        )
        retried: List[Delivery] = []
        for stale in self.undelivered():
            entry = self._children.get(id(stale.task))
            if entry is None:
                continue
            task, node = entry
            yield self.env.timeout(self.propagation_delay)
            delivery = self._deliver(task, node, signal)
            self.deliveries.append(delivery)
            retried.append(delivery)
        return retried

    def fully_cancelled(self) -> bool:
        """True once the root and every child have unwound."""
        return not self.root.alive and not self.live_children()
