"""Cancellation execution, cooldown, fairness, re-execution (§3.6, §4).

The manager invokes the application's registered cancellation initiator
(or the default process interrupt), enforces a minimum interval between
consecutive cancellations, and implements the fairness rules: each task is
cancelled at most once, cancelled requests are retried after sustained
resource availability (or dropped once they can no longer meet the SLO),
and background tasks are force-retried after a bounded wait.

Fault injection (:mod:`repro.faults` sets these attributes mid-run):

* :attr:`CancellationManager.initiator_delay` -- seconds between the
  cancel decision and initiator invocation (a slow kill path).  The task
  transitions to CANCELLING immediately (so it is not double-targeted)
  but keeps running until the delayed interrupt lands.
* :attr:`CancellationManager.drop_probability` -- each issued signal is
  lost in flight with this probability: :meth:`CancellationManager.cancel`
  still returns True (the controller believes it cancelled, and the
  cooldown applies), the event is logged with ``delivered=False``, and
  the task stays RUNNING and cancellable so a later cycle can re-target
  it.
* :attr:`CancellationManager.suspended` -- while True, no task is
  cancellable at all (``cancel()`` returns False).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from .config import AtroposConfig
from .task import CancelInitiator, CancellableTask, default_initiator
from .types import CancelSignal, ResourceHandle, TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass
class CancellationEvent:
    """Audit record of one executed cancellation.

    ``delivered`` is False when a fault-injected lossy initiator dropped
    the signal in flight (the decision was made but never reached the
    task); clean runs always record True.
    """

    time: float
    task_key: object
    op_name: str
    resource: Optional[ResourceHandle]
    score: float
    delivered: bool = True


class CancellationManager:
    """Executes cancel decisions and gates re-execution."""

    def __init__(
        self,
        env: "Environment",
        config: AtroposConfig,
        calm_check: Callable[[], bool],
    ) -> None:
        """
        Args:
            calm_check: callable returning True when no application
                resource is currently overloaded (sustained availability
                is judged by polling this).
        """
        self.env = env
        self.config = config
        self._calm_check = calm_check
        self._initiator: CancelInitiator = default_initiator
        self._last_cancel_time: Optional[float] = None
        self.log: List[CancellationEvent] = []
        # -- fault-injection state (set by repro.faults) ----------------
        #: Seconds between the cancel decision and initiator invocation.
        self.initiator_delay: float = 0.0
        #: Probability an issued signal is lost in flight (needs fault_rng).
        self.drop_probability: float = 0.0
        #: While True, cancel() refuses every request (un-cancellable
        #: stretch).
        self.suspended: bool = False
        #: Deterministic RNG stream used for signal drops.
        self.fault_rng = None
        #: Count of signals lost to the drop fault.
        self.dropped_signals: int = 0
        #: Count of signals that reached their task's initiator.
        self.delivered_signals: int = 0
        #: Count of signals routed through the slow-initiator path.
        self.delayed_signals: int = 0

    def telemetry_snapshot(self) -> dict:
        """Signal-outcome counters for the telemetry scraper."""
        return {
            "delivered": self.delivered_signals,
            "dropped": self.dropped_signals,
            "delayed": self.delayed_signals,
        }

    # ------------------------------------------------------------------
    # Initiator registration (setCancelAction)
    # ------------------------------------------------------------------
    def set_initiator(self, initiator: CancelInitiator) -> None:
        self._initiator = initiator

    # ------------------------------------------------------------------
    # Cooldown
    # ------------------------------------------------------------------
    @property
    def in_cooldown(self) -> bool:
        if self._last_cancel_time is None:
            return False
        return (
            self.env.now - self._last_cancel_time < self.config.cancel_cooldown
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def cancel(
        self,
        task: CancellableTask,
        resource: Optional[ResourceHandle],
        score: float,
        reason: str = "resource-overload",
    ) -> bool:
        """Cancel ``task``; returns False if blocked by cooldown/state.

        Fault injection can reshape the happy path: during an
        ``uncancellable`` window every call returns False; a lossy
        initiator (:attr:`drop_probability`) may lose the signal after
        the decision (returns True, logs ``delivered=False``, leaves the
        task running); a slow initiator (:attr:`initiator_delay`) defers
        the actual interrupt.
        """
        if not self.config.cancellation_enabled:
            return False
        if self.suspended:
            # Fault-injected un-cancellable stretch.
            return False
        if self.in_cooldown:
            return False
        if not task.cancellable:
            return False
        if task.metadata.get("requires_thread_cancel") and not (
            self.config.allow_thread_level_cancel
        ):
            # The task has no application-level initiator; thread-level
            # cancellation is unsafe and disabled by default (§3.6).
            return False
        signal = CancelSignal(
            reason=reason,
            resource=resource,
            score=score,
            decided_at=self.env.now,
        )
        self._last_cancel_time = self.env.now
        if (
            self.drop_probability > 0.0
            and self.fault_rng is not None
            and self.fault_rng.chance(self.drop_probability)
        ):
            # Signal lost in flight: the decision stands (cooldown
            # stamped, event logged) but the task never hears it and
            # stays cancellable for a later cycle.
            self.dropped_signals += 1
            self.log.append(
                CancellationEvent(
                    time=self.env.now,
                    task_key=task.key,
                    op_name=task.op_name,
                    resource=resource,
                    score=score,
                    delivered=False,
                )
            )
            return True
        task.begin_cancel(signal)
        self.log.append(
            CancellationEvent(
                time=self.env.now,
                task_key=task.key,
                op_name=task.op_name,
                resource=resource,
                score=score,
            )
        )
        self.delivered_signals += 1
        if self.initiator_delay > 0.0:
            self.delayed_signals += 1
            self.env.process(
                self._delayed_initiate(task, signal, self.initiator_delay)
            )
        else:
            self._initiator(task, signal)
        return True

    def _delayed_initiate(self, task: CancellableTask, signal, delay: float):
        """Process generator: invoke the initiator ``delay`` seconds late.

        The task is already CANCELLING (so it is not re-targeted); if it
        finished on its own in the meantime, the late signal is a no-op.
        """
        yield self.env.timeout(delay)
        process = task.process
        if task.alive and process is not None and process.is_alive:
            self._initiator(task, signal)

    # ------------------------------------------------------------------
    # Re-execution gate (generator; driven by the workload driver)
    # ------------------------------------------------------------------
    def reexecution_gate(self, task: CancellableTask, arrival_time: float):
        """Wait for sustained availability; decide retry vs drop.

        Yields simulation events; returns ``"retry"`` or ``"drop"``.
        """
        env = self.env
        cfg = self.config
        if task.kind is TaskKind.BACKGROUND:
            # Minimum deferral first: a cancelled maintenance task must not
            # re-enter the instant its own absence makes the system calm.
            yield env.timeout(cfg.background_reexec_delay)
            deadline = env.now + cfg.background_max_wait
            while env.now < deadline:
                if self._stable_now():
                    stable = yield from self._await_stability(deadline)
                    if stable:
                        return "retry"
                else:
                    yield env.timeout(cfg.reexec_check_period)
            # Bounded wait expired: background tasks are always retried.
            return "retry"

        # User request: bounded by the SLO budget.
        budget_end = arrival_time + cfg.slo_latency * cfg.reexec_slo_multiple
        while env.now < budget_end:
            if self._stable_now():
                stable = yield from self._await_stability(budget_end)
                if stable:
                    return "retry"
            else:
                yield env.timeout(cfg.reexec_check_period)
        return "drop"

    def _stable_now(self) -> bool:
        return self._calm_check()

    def _await_stability(self, deadline: float):
        """Hold calm for the stability window; returns True if it held."""
        env = self.env
        window_end = env.now + self.config.reexec_stability_window
        while env.now < window_end:
            if env.now >= deadline:
                return False
            yield env.timeout(
                min(self.config.reexec_check_period, window_end - env.now)
            )
            if not self._calm_check():
                return False
        return True
