"""Cancellation execution, cooldown, fairness, re-execution (§3.6, §4).

The manager invokes the application's registered cancellation initiator
(or the default process interrupt), enforces a minimum interval between
consecutive cancellations, and implements the fairness rules: each task is
cancelled at most once, cancelled requests are retried after sustained
resource availability (or dropped once they can no longer meet the SLO),
and background tasks are force-retried after a bounded wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from .config import AtroposConfig
from .task import CancelInitiator, CancellableTask, default_initiator
from .types import CancelSignal, ResourceHandle, TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass
class CancellationEvent:
    """Audit record of one executed cancellation."""

    time: float
    task_key: object
    op_name: str
    resource: Optional[ResourceHandle]
    score: float


class CancellationManager:
    """Executes cancel decisions and gates re-execution."""

    def __init__(
        self,
        env: "Environment",
        config: AtroposConfig,
        calm_check: Callable[[], bool],
    ) -> None:
        """
        Args:
            calm_check: callable returning True when no application
                resource is currently overloaded (sustained availability
                is judged by polling this).
        """
        self.env = env
        self.config = config
        self._calm_check = calm_check
        self._initiator: CancelInitiator = default_initiator
        self._last_cancel_time: Optional[float] = None
        self.log: List[CancellationEvent] = []

    # ------------------------------------------------------------------
    # Initiator registration (setCancelAction)
    # ------------------------------------------------------------------
    def set_initiator(self, initiator: CancelInitiator) -> None:
        self._initiator = initiator

    # ------------------------------------------------------------------
    # Cooldown
    # ------------------------------------------------------------------
    @property
    def in_cooldown(self) -> bool:
        if self._last_cancel_time is None:
            return False
        return (
            self.env.now - self._last_cancel_time < self.config.cancel_cooldown
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def cancel(
        self,
        task: CancellableTask,
        resource: Optional[ResourceHandle],
        score: float,
        reason: str = "resource-overload",
    ) -> bool:
        """Cancel ``task``; returns False if blocked by cooldown/state."""
        if not self.config.cancellation_enabled:
            return False
        if self.in_cooldown:
            return False
        if not task.cancellable:
            return False
        if task.metadata.get("requires_thread_cancel") and not (
            self.config.allow_thread_level_cancel
        ):
            # The task has no application-level initiator; thread-level
            # cancellation is unsafe and disabled by default (§3.6).
            return False
        signal = CancelSignal(
            reason=reason,
            resource=resource,
            score=score,
            decided_at=self.env.now,
        )
        task.begin_cancel(signal)
        self._last_cancel_time = self.env.now
        self.log.append(
            CancellationEvent(
                time=self.env.now,
                task_key=task.key,
                op_name=task.op_name,
                resource=resource,
                score=score,
            )
        )
        self._initiator(task, signal)
        return True

    # ------------------------------------------------------------------
    # Re-execution gate (generator; driven by the workload driver)
    # ------------------------------------------------------------------
    def reexecution_gate(self, task: CancellableTask, arrival_time: float):
        """Wait for sustained availability; decide retry vs drop.

        Yields simulation events; returns ``"retry"`` or ``"drop"``.
        """
        env = self.env
        cfg = self.config
        if task.kind is TaskKind.BACKGROUND:
            # Minimum deferral first: a cancelled maintenance task must not
            # re-enter the instant its own absence makes the system calm.
            yield env.timeout(cfg.background_reexec_delay)
            deadline = env.now + cfg.background_max_wait
            while env.now < deadline:
                if self._stable_now():
                    stable = yield from self._await_stability(deadline)
                    if stable:
                        return "retry"
                else:
                    yield env.timeout(cfg.reexec_check_period)
            # Bounded wait expired: background tasks are always retried.
            return "retry"

        # User request: bounded by the SLO budget.
        budget_end = arrival_time + cfg.slo_latency * cfg.reexec_slo_multiple
        while env.now < budget_end:
            if self._stable_now():
                stable = yield from self._await_stability(budget_end)
                if stable:
                    return "retry"
            else:
                yield env.timeout(cfg.reexec_check_period)
        return "drop"

    def _stable_now(self) -> bool:
        return self._calm_check()

    def _await_stability(self, deadline: float):
        """Hold calm for the stability window; returns True if it held."""
        env = self.env
        window_end = env.now + self.config.reexec_stability_window
        while env.now < window_end:
            if env.now >= deadline:
                return False
            yield env.timeout(
                min(self.config.reexec_check_period, window_end - env.now)
            )
            if not self._calm_check():
                return False
        return True
