"""The controller interface shared by ATROPOS and all baseline systems.

Applications are instrumented once against this interface (task lifecycle
+ the three resource-tracing calls + a few checkpoint hooks); each
overload-control system implements the subset it needs.  This mirrors the
paper's methodology of integrating every compared system into the same
applications (§5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .progress import ProgressModel
from .task import CancelInitiator, CancellableTask, default_initiator
from .types import ResourceHandle, ResourceType, TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class BaseController:
    """No-op overload controller; baselines and ATROPOS override hooks.

    Running an application under :class:`BaseController` (alias
    :class:`NullController`) gives the uncontrolled "Overload" line of the
    paper's Figure 10.
    """

    name = "none"

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._task_seq = 1
        self.tasks: Dict[int, CancellableTask] = {}
        self.resources: Dict[str, ResourceHandle] = {}
        self._initiator: CancelInitiator = default_initiator
        #: Count of cancel decisions issued (for experiment reporting).
        self.cancels_issued = 0

    # ------------------------------------------------------------------
    # Resource registration (apps declare their application resources)
    # ------------------------------------------------------------------
    def register_resource(
        self, name: str, rtype: ResourceType
    ) -> ResourceHandle:
        """Declare an application resource; idempotent per name."""
        handle = self.resources.get(name)
        if handle is not None:
            if handle.rtype is not rtype:
                raise ValueError(
                    f"resource {name!r} re-registered with different type"
                )
            return handle
        handle = ResourceHandle(name=name, rtype=rtype)
        self.resources[name] = handle
        return handle

    # ------------------------------------------------------------------
    # Task lifecycle (paper Figure 6a)
    # ------------------------------------------------------------------
    def create_cancel(
        self,
        key: Any = None,
        kind=None,
        client_id: str = "anonymous",
        op_name: str = "op",
        progress: Optional[ProgressModel] = None,
        cancellable: bool = True,
    ) -> CancellableTask:
        """Register the current activity as a cancellable task.

        If ``key`` is omitted a unique key is generated (paper §3.1).  The
        active simulated process is captured as the cancellation target.
        """
        if key is None:
            key = self._task_seq
            self._task_seq += 1
        task = CancellableTask(
            env=self.env,
            key=key,
            kind=kind or TaskKind.REQUEST,
            client_id=client_id,
            op_name=op_name,
            process=self.env.active_process,
            progress=progress,
            cancellable=cancellable,
        )
        self.tasks[id(task)] = task
        return task

    def free_cancel(self, task: CancellableTask) -> None:
        """Unregister a task when its scope ends (idempotent)."""
        task.finish()
        self.tasks.pop(id(task), None)

    def set_cancel_action(self, initiator: CancelInitiator) -> None:
        """Register the application's cancellation initiator callback."""
        self._initiator = initiator

    def live_tasks(self) -> List[CancellableTask]:
        return [t for t in self.tasks.values() if t.alive]

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """Scrape-friendly controller state; subclasses add detector /
        signal / blame sections (see :mod:`repro.telemetry.scrape`)."""
        return {"cancels_issued": self.cancels_issued}

    # ------------------------------------------------------------------
    # Resource tracing (paper Figure 6b); no-ops by default
    # ------------------------------------------------------------------
    def get_resource(
        self, task: CancellableTask, resource: ResourceHandle, amount: float = 1.0
    ) -> None:
        """Record that ``task`` acquired ``amount`` of ``resource``."""

    def free_resource(
        self, task: CancellableTask, resource: ResourceHandle, amount: float = 1.0
    ) -> None:
        """Record that ``task`` released ``amount`` of ``resource``."""

    def slow_by_resource(
        self,
        task: CancellableTask,
        resource: ResourceHandle,
        delay: float,
        events: float = 1.0,
    ) -> None:
        """Record that ``task`` was delayed ``delay`` seconds by ``resource``."""

    def begin_wait(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> None:
        """``task`` started queueing on ``resource`` (wait-event start)."""

    def end_wait(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> float:
        """``task`` stopped queueing (granted or unwound); returns the
        measured wait duration (0 for controllers that do not track it)."""
        return 0.0

    def tracing_cost(self, n_events: int = 1) -> float:
        """Simulated overhead seconds the app adds per traced event."""
        return 0.0

    # ------------------------------------------------------------------
    # Overload-control hooks exercised by the workload driver / app
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch any monitor processes.  Called once per run."""

    def bind(self, app) -> None:
        """Give the controller a chance to configure the application.

        Called once after the application is built (e.g. DARC reserves
        worker-pool slots for short request classes here)."""

    def admit(self, op_name: str, client_id: str) -> bool:
        """Admission-control hook; False rejects the incoming request."""
        return True

    def should_drop(self, task: CancellableTask) -> bool:
        """Mid-execution victim-drop hook (Protego); checked at checkpoints."""
        return False

    def throttle_delay(self, task: CancellableTask) -> float:
        """Penalty-delay hook (pBox); applied at checkpoints, seconds."""
        return 0.0

    def observe_completion(self, record: "RequestRecord") -> None:
        """Feedback: a request reached a terminal state."""

    def reexecution_gate(self, task: CancellableTask, arrival_time: float):
        """Generator deciding what happens to a cancelled request.

        Yields simulation events while waiting; returns ``"retry"`` or
        ``"drop"``.  The default (for controllers that never cancel)
        retries immediately.
        """
        return "retry"
        yield  # pragma: no cover - makes this a generator


class NullController(BaseController):
    """Explicit alias for the uncontrolled baseline."""

    name = "overload"
